//! Offline stand-in for `tokio-macros` (see `vendor/README.md`).
//!
//! Rewrites `async fn` items so they run on the vendored runtime:
//!
//! * `#[tokio::main] async fn main() { .. }` →
//!   `fn main() { ::tokio::runtime::block_on(async move { .. }) }`
//! * `#[tokio::test] async fn t() { .. }` → same, plus `#[test]`.
//!
//! Implemented with raw `proc_macro` token juggling (no syn/quote — the
//! build must work without any registry access).

use proc_macro::{Delimiter, TokenStream, TokenTree};

fn rewrite(item: TokenStream, add_test_attr: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    // The function body is the last brace-delimited group.
    let body_idx = tokens
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace))
        .expect("#[tokio::main]/#[tokio::test] requires a function with a body");
    let body = match &tokens[body_idx] {
        TokenTree::Group(g) => g.stream(),
        _ => unreachable!(),
    };
    // Signature = everything before the body, minus the `async` keyword.
    // Re-collect into a TokenStream before stringifying so compound
    // operators like `->` keep their joint spacing.
    let sig: TokenStream = tokens[..body_idx]
        .iter()
        .filter(|t| !matches!(t, TokenTree::Ident(id) if id.to_string() == "async"))
        .cloned()
        .collect();
    let test_attr = if add_test_attr { "#[test]" } else { "" };
    format!("{test_attr} {sig} {{ ::tokio::runtime::block_on(async move {{ {body} }}) }}")
        .parse()
        .expect("rewritten function parses")
}

/// `#[tokio::main]` — run the async `main` on the vendored runtime.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

/// `#[tokio::test]` — run an async test on the vendored runtime.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}
