//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Two submodules the workspace uses:
//!
//! * [`thread`] — crossbeam-style scoped threads, delegating to
//!   `std::thread::scope` (the closure-takes-`&Scope` signature and the
//!   `Result`-returning `scope` are preserved so call sites compile
//!   unchanged);
//! * [`channel`] — an unbounded MPMC channel (`std::sync::mpsc` receivers
//!   are not `Clone`, so this is a small Mutex+Condvar queue).

/// Scoped threads with the crossbeam calling convention.
pub mod thread {
    use std::any::Any;

    /// Wrapper over [`std::thread::Scope`] so spawn closures can receive
    /// a `&Scope` argument (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope (so
        /// workers could spawn siblings, as in crossbeam).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns `Ok` like crossbeam (std re-raises panics of
    /// unjoined threads, so the error arm is unreachable in practice).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Unbounded MPMC channel.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when all receivers are gone (we keep the queue alive
    /// as long as any handle exists, so sends only fail after poisoning —
    /// the type exists for API compatibility).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` once the channel is empty and all senders
    /// are dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a value, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking pop, `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_and_channel_cooperate() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = super::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(s.spawn(move |_| {
                    let mut sum = 0;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, (0..100).sum());
    }
}
