//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Supports the subset of proptest the workspace's property tests use:
//!
//! * string strategies from a **regex subset**: literals, escapes (`\.`,
//!   `\\`), `\PC` (any non-control char), character classes with ranges and
//!   unicode literals (`[a-zàéöκогž]`), groups with alternation
//!   (`(com|net|org)`), and `{m}` / `{m,n}` repetition — including on
//!   groups (`(\.[a-z]{1,12}){0,3}`);
//! * `any::<T>()` for small ints and `[u8; 4]`;
//! * integer / float range strategies, `proptest::collection::vec`,
//!   and 1–3-element tuple strategies;
//! * the `proptest!` macro with `#![proptest_config(..)]`,
//!   `prop_assert!`, and `prop_assert_eq!`.
//!
//! Failure *persistence* is write-less but read-compatible: a checked-in
//! `<file>.proptest-regressions` sibling of the test source (real-proptest
//! `cc <hex>` format) is parsed at runner start and its seeds are replayed
//! through every property in that file **before** the novel cases, so
//! previously-failing inputs are re-examined first. Shrinking of new
//! failures is still not supported here: a failing case panics with the
//! generated inputs so it can be pinned as a unit test by hand.
//! Generation is deterministic per test name, so failures reproduce.

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator state used by strategies.
pub mod rng {
    /// splitmix64 stream; seeded per test name so runs are reproducible.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ 0x9E3779B97F4A7C15,
            }
        }

        /// Seeds the stream directly from a 64-bit replay seed (regression
        /// file entries; see [`crate::regressions`]).
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[lo, hi]`.
        pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.below(hi - lo + 1)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value generators.
pub mod strategy {
    use crate::regex::RegexStrategy;
    use crate::rng::TestRng;

    /// Produces one value per generated case.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Conversion from the expressions used in `proptest!` argument
    /// position (`"regex"`, ranges, `any::<T>()`, tuples, …) to a
    /// [`Strategy`].
    pub trait IntoStrategy {
        /// The resulting strategy type.
        type Strategy: Strategy;

        /// Performs the conversion (regex patterns are parsed here).
        fn into_strategy(self) -> Self::Strategy;
    }

    impl IntoStrategy for &str {
        type Strategy = RegexStrategy;

        fn into_strategy(self) -> RegexStrategy {
            RegexStrategy::compile(self)
        }
    }

    /// Identity conversions so already-built strategies (`any::<..>()`,
    /// `collection::vec(..)`, compiled regexes) nest inside tuples and
    /// vecs. A blanket `impl<S: Strategy> IntoStrategy for S` would
    /// overlap with the tuple impls below, so each strategy type gets an
    /// explicit identity impl instead.
    macro_rules! impl_identity_into_strategy {
        ($( $name:ident $(<$($param:ident),+>)? ),+ $(,)?) => {$(
            impl $(<$($param),+>)? IntoStrategy for $name $(<$($param),+>)?
            where
                Self: Strategy,
            {
                type Strategy = Self;

                fn into_strategy(self) -> Self {
                    self
                }
            }
        )+};
    }
    impl_identity_into_strategy!(
        RegexStrategy,
        IntRange<T>,
        F64Range,
        Any<T>,
        VecStrategy<S>,
        Tuple1<A>,
        Tuple2<A, B>,
        Tuple3<A, B, C>,
        Tuple4<A, B, C, D>,
        Tuple5<A, B, C, D, E>,
    );

    /// Integer range strategy (`lo..hi`).
    pub struct IntRange<T> {
        lo: i128,
        hi_exclusive: i128,
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl IntoStrategy for std::ops::Range<$t> {
                type Strategy = IntRange<$t>;

                fn into_strategy(self) -> IntRange<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    IntRange {
                        lo: self.start as i128,
                        hi_exclusive: self.end as i128,
                        _marker: std::marker::PhantomData,
                    }
                }
            }

            impl Strategy for IntRange<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.hi_exclusive - self.lo) as u64;
                    (self.lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Float range strategy (`lo..hi`).
    pub struct F64Range {
        lo: f64,
        hi: f64,
    }

    impl IntoStrategy for std::ops::Range<f64> {
        type Strategy = F64Range;

        fn into_strategy(self) -> F64Range {
            assert!(self.start < self.end, "empty range strategy");
            F64Range {
                lo: self.start,
                hi: self.end,
            }
        }
    }

    impl Strategy for F64Range {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.lo + rng.unit_f64() * (self.hi - self.lo)
        }
    }

    /// Types with a canonical "uniform over the whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in out.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// Strategy produced by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Vec strategy (see [`crate::collection::vec`]).
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.range_inclusive(self.len.start as u64, self.len.end as u64 - 1) as usize
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($name:ident: $($idx:tt $elem:ident),+) => {
            /// Tuple strategy (one generated value per element).
            pub struct $name<$($elem),+>($(pub $elem),+);

            impl<$($elem: IntoStrategy),+> IntoStrategy for ($($elem,)+) {
                type Strategy = $name<$($elem::Strategy),+>;

                fn into_strategy(self) -> Self::Strategy {
                    $name($(self.$idx.into_strategy()),+)
                }
            }

            impl<$($elem: Strategy),+> Strategy for $name<$($elem),+> {
                type Value = ($($elem::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(Tuple1: 0 A);
    impl_tuple_strategy!(Tuple2: 0 A, 1 B);
    impl_tuple_strategy!(Tuple3: 0 A, 1 B, 2 C);
    impl_tuple_strategy!(Tuple4: 0 A, 1 B, 2 C, 3 D);
    impl_tuple_strategy!(Tuple5: 0 A, 1 B, 2 C, 3 D, 4 E);
}

/// Uniform strategy over all of `T` (`any::<u16>()`, `any::<[u8; 4]>()`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{IntoStrategy, VecStrategy};

    /// Vec of `elem`-generated values with a length drawn from `len`.
    pub fn vec<S: IntoStrategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S::Strategy> {
        VecStrategy {
            elem: elem.into_strategy(),
            len,
        }
    }
}

/// The regex-subset string generator.
pub mod regex {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Non-control chars drawn for `\PC` beyond printable ASCII; enough
    /// unicode spread to exercise punycode/IDNA/tokenizer paths.
    const NON_ASCII_POOL: &[char] = &['à', 'é', 'ö', 'ß', 'κ', 'о', 'г', 'ž', '中', '✓', '🦀'];

    enum Node {
        Lit(char),
        /// `\PC` — any char that is not a control character.
        AnyNonControl,
        /// Expanded character class.
        Class(Vec<char>),
        /// Alternation group: one alternative (a sequence) is chosen.
        Group(Vec<Vec<Node>>),
        /// `{m}` / `{m,n}` repetition of the preceding node.
        Repeat(Box<Node>, u32, u32),
    }

    /// Compiled pattern strategy.
    pub struct RegexStrategy {
        seq: Vec<Node>,
    }

    impl RegexStrategy {
        /// Parses `pattern`, panicking on syntax outside the supported
        /// subset (so an unsupported test pattern fails loudly, not
        /// silently generating wrong data).
        pub fn compile(pattern: &str) -> Self {
            let chars: Vec<char> = pattern.chars().collect();
            let mut pos = 0;
            let seq = parse_seq(&chars, &mut pos, false, pattern);
            assert!(
                pos == chars.len(),
                "unsupported regex `{pattern}`: trailing input at {pos}"
            );
            RegexStrategy { seq }
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for node in &self.seq {
                gen_node(node, rng, &mut out);
            }
            out
        }
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::AnyNonControl => {
                // Mostly printable ASCII, sometimes wider unicode.
                if rng.below(4) == 0 {
                    out.push(NON_ASCII_POOL[rng.below(NON_ASCII_POOL.len() as u64) as usize]);
                } else {
                    out.push((0x20 + rng.below(0x5F) as u8) as char);
                }
            }
            Node::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            Node::Group(alts) => {
                let alt = &alts[rng.below(alts.len() as u64) as usize];
                for n in alt {
                    gen_node(n, rng, out);
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let n = rng.range_inclusive(*lo as u64, *hi as u64);
                for _ in 0..n {
                    gen_node(inner, rng, out);
                }
            }
        }
    }

    /// Parses a sequence until end of input, `)` or `|` (when in a group).
    fn parse_seq(chars: &[char], pos: &mut usize, in_group: bool, pat: &str) -> Vec<Node> {
        let mut seq: Vec<Node> = Vec::new();
        while *pos < chars.len() {
            let c = chars[*pos];
            match c {
                ')' | '|' if in_group => break,
                '(' => {
                    *pos += 1;
                    let mut alts = Vec::new();
                    loop {
                        alts.push(parse_seq(chars, pos, true, pat));
                        match chars.get(*pos) {
                            Some('|') => *pos += 1,
                            Some(')') => {
                                *pos += 1;
                                break;
                            }
                            _ => panic!("unsupported regex `{pat}`: unclosed group"),
                        }
                    }
                    seq.push(Node::Group(alts));
                }
                '[' => {
                    *pos += 1;
                    seq.push(Node::Class(parse_class(chars, pos, pat)));
                }
                '{' => {
                    *pos += 1;
                    let (lo, hi) = parse_counts(chars, pos, pat);
                    let prev = seq
                        .pop()
                        .unwrap_or_else(|| panic!("unsupported regex `{pat}`: dangling repeat"));
                    seq.push(Node::Repeat(Box::new(prev), lo, hi));
                }
                '\\' => {
                    *pos += 1;
                    match chars.get(*pos) {
                        Some('P') => {
                            // Only \PC ("not control") is supported.
                            assert!(
                                chars.get(*pos + 1) == Some(&'C'),
                                "unsupported regex `{pat}`: only \\PC escape class is supported"
                            );
                            *pos += 2;
                            seq.push(Node::AnyNonControl);
                        }
                        Some(&esc) => {
                            *pos += 1;
                            seq.push(Node::Lit(esc));
                        }
                        None => panic!("unsupported regex `{pat}`: trailing backslash"),
                    }
                }
                '*' | '+' | '?' | '.' | '^' | '$' => {
                    panic!("unsupported regex `{pat}`: metacharacter `{c}` not in subset")
                }
                _ => {
                    *pos += 1;
                    seq.push(Node::Lit(c));
                }
            }
        }
        seq
    }

    /// Parses a character class body (after `[`), expanding ranges.
    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Vec<char> {
        let mut set = Vec::new();
        assert!(
            chars.get(*pos) != Some(&'^'),
            "unsupported regex `{pat}`: negated classes not in subset"
        );
        while let Some(&c) = chars.get(*pos) {
            if c == ']' {
                *pos += 1;
                assert!(!set.is_empty(), "unsupported regex `{pat}`: empty class");
                return set;
            }
            *pos += 1;
            let c = if c == '\\' {
                let esc = *chars.get(*pos).unwrap_or_else(|| {
                    panic!("unsupported regex `{pat}`: trailing backslash in class")
                });
                *pos += 1;
                esc
            } else {
                c
            };
            // Range `c-d` (a trailing `-` before `]` is a literal dash).
            if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&d| d != ']') {
                let hi = chars[*pos + 1];
                *pos += 2;
                assert!(c <= hi, "unsupported regex `{pat}`: inverted range");
                for v in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(v) {
                        set.push(ch);
                    }
                }
            } else {
                set.push(c);
            }
        }
        panic!("unsupported regex `{pat}`: unclosed class")
    }

    /// Parses `{m}` / `{m,n}` after `{`.
    fn parse_counts(chars: &[char], pos: &mut usize, pat: &str) -> (u32, u32) {
        let read_int = |pos: &mut usize| -> u32 {
            let start = *pos;
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                *pos += 1;
            }
            assert!(*pos > start, "unsupported regex `{pat}`: bad repeat count");
            chars[start..*pos]
                .iter()
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let lo = read_int(pos);
        let hi = match chars.get(*pos) {
            Some(',') => {
                *pos += 1;
                read_int(pos)
            }
            _ => lo,
        };
        assert!(
            chars.get(*pos) == Some(&'}') && lo <= hi,
            "unsupported regex `{pat}`: malformed repeat"
        );
        *pos += 1;
        (lo, hi)
    }
}

/// Read-side support for real-proptest `.proptest-regressions` files.
pub mod regressions {
    use std::path::{Path, PathBuf};

    /// Parses regression-file contents: lines of the form
    /// `cc <hex-hash> [# comment]`. The first 16 hex characters of the hash
    /// become the 64-bit replay seed (the real format stores a 256-bit
    /// case hash; a 64-bit prefix is plenty to key a deterministic rng).
    /// Blank lines and `#` comment lines are ignored, as are malformed
    /// entries — a regression file must never break the build.
    pub fn parse(contents: &str) -> Vec<u64> {
        let mut seeds = Vec::new();
        for line in contents.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("cc ") else {
                continue;
            };
            let hex: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .take(16)
                .collect();
            if hex.len() == 16 {
                if let Ok(seed) = u64::from_str_radix(&hex, 16) {
                    seeds.push(seed);
                }
            }
        }
        seeds
    }

    /// Locates the `.proptest-regressions` sibling of `source_file` (the
    /// `file!()` of the test) and parses it. `file!()` paths are relative
    /// to the *workspace* root while the test cwd is the *package* root,
    /// so the path is resolved by trying it as-is, then against
    /// `manifest_dir`, then against `manifest_dir` with leading components
    /// stripped. A missing file yields no seeds — replay is best-effort.
    pub fn load_for_source(source_file: &str, manifest_dir: &str) -> Vec<u64> {
        let reg: PathBuf = Path::new(source_file).with_extension("proptest-regressions");
        let mut candidates = vec![reg.clone(), Path::new(manifest_dir).join(&reg)];
        let mut comps: Vec<_> = reg.components().collect();
        while comps.len() > 1 {
            comps.remove(0);
            candidates.push(Path::new(manifest_dir).join(comps.iter().collect::<PathBuf>()));
        }
        for cand in candidates {
            if let Ok(contents) = std::fs::read_to_string(&cand) {
                return parse(&contents);
            }
        }
        Vec::new()
    }
}

/// Case loop driving a property.
pub mod test_runner {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use crate::{ProptestConfig, TestCaseError};

    /// Runs `cases` generated inputs through a property closure.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
        name: &'static str,
        /// Replay seeds from the test file's `.proptest-regressions`,
        /// exercised before the novel cases.
        replay: Vec<u64>,
    }

    impl TestRunner {
        /// Builds a runner with a per-test deterministic stream and no
        /// regression replay.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner {
                rng: TestRng::for_test(name),
                config,
                name,
                replay: Vec::new(),
            }
        }

        /// Builds a runner that first replays the seeds recorded in the
        /// `.proptest-regressions` file beside `source_file` (pass
        /// `file!()` and `env!("CARGO_MANIFEST_DIR")`; the `proptest!`
        /// macro does this automatically).
        pub fn with_source(
            config: ProptestConfig,
            name: &'static str,
            source_file: &str,
            manifest_dir: &str,
        ) -> Self {
            let mut runner = Self::new(config, name);
            runner.replay = crate::regressions::load_for_source(source_file, manifest_dir);
            runner
        }

        /// Runs the property; panics (failing the `#[test]`) on the first
        /// case whose closure returns `Err`, printing the inputs.
        /// Regression-file seeds run first, then the configured number of
        /// novel cases.
        pub fn run<S, F>(&mut self, strategy: S, test: F)
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            for (i, &seed) in self.replay.iter().enumerate() {
                let mut rng = TestRng::from_seed(seed);
                let value = strategy.generate(&mut rng);
                let described = format!("{value:?}");
                if let Err(e) = test(value) {
                    panic!(
                        "property `{}` failed replaying regression {}/{} \
                         (seed {seed:016x}) with inputs {}: {}",
                        self.name,
                        i + 1,
                        self.replay.len(),
                        described,
                        e
                    );
                }
            }
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let described = format!("{value:?}");
                if let Err(e) = test(value) {
                    panic!(
                        "property `{}` failed at case {}/{} with inputs {}: {}",
                        self.name,
                        case + 1,
                        self.config.cases,
                        described,
                        e
                    );
                }
            }
        }
    }
}

pub use strategy::{Arbitrary, IntoStrategy, Strategy};

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, IntoStrategy, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategy = $crate::IntoStrategy::into_strategy(($($strat,)+));
                let mut __runner = $crate::test_runner::TestRunner::with_source(
                    __config,
                    stringify!($name),
                    file!(),
                    env!("CARGO_MANIFEST_DIR"),
                );
                __runner.run(__strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::rng::TestRng;
    use crate::strategy::{IntoStrategy, Strategy};

    fn sample(pattern: &str, n: usize) -> Vec<String> {
        let strat = pattern.into_strategy();
        let mut rng = TestRng::for_test(pattern);
        (0..n).map(|_| strat.generate(&mut rng)).collect()
    }

    #[test]
    fn class_with_repeat_respects_bounds_and_alphabet() {
        for s in sample("[a-z0-9-]{0,32}", 200) {
            assert!(s.len() <= 32);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn unicode_class_literals_survive() {
        let joined = sample("[a-zàéöκогž]{1,16}", 300).join("");
        assert!(!joined.is_ascii(), "unicode literals never drawn");
        assert!(joined
            .chars()
            .all(|c| "abcdefghijklmnopqrstuvwxyzàéöκогž".contains(c)));
    }

    #[test]
    fn alternation_picks_whole_alternatives() {
        for s in sample("(com|net|org|tk|audi|com\\.ua)", 200) {
            assert!(
                ["com", "net", "org", "tk", "audi", "com.ua"].contains(&s.as_str()),
                "bad alternative {s:?}"
            );
        }
    }

    #[test]
    fn group_repetition_nests() {
        for s in sample("[a-z]{1,12}(\\.[a-z]{1,12}){0,3}", 200) {
            assert!(s.split('.').count() <= 4);
            assert!(s.split('.').all(|l| !l.is_empty() && l.len() <= 12));
        }
    }

    #[test]
    fn non_control_class_excludes_controls() {
        for s in sample("\\PC{0,64}", 200) {
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        assert_eq!(sample("[a-f]{8}", 50), sample("[a-f]{8}", 50));
    }

    #[test]
    fn regression_parser_reads_cc_lines() {
        let contents = "\
# Seeds for failure cases proptest has generated.
cc 1808f50d6958e10fe11963081503d7c1641b000002298d22f32bc6f2696f6559 # shrinks to words = [\"ia\"]

cc deadbeefcafef00d # bare 64-bit entry
not a regression line
cc tooshort
";
        let seeds = crate::regressions::parse(contents);
        assert_eq!(seeds, vec![0x1808f50d6958e10f, 0xdeadbeefcafef00d]);
    }

    #[test]
    fn regression_load_missing_file_is_empty() {
        let seeds = crate::regressions::load_for_source("no/such/file.rs", "/nonexistent");
        assert!(seeds.is_empty());
    }

    #[test]
    fn replay_seeds_drive_the_strategy_deterministically() {
        let strat = "[a-z]{4}".into_strategy();
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(32))]

        #[test]
        fn macro_drives_tuples(v in crate::collection::vec((0usize..32, 0.0f64..8.0), 0..10), n in 1u32..5) {
            crate::prop_assert!(v.len() < 10);
            for (i, f) in &v {
                crate::prop_assert!(*i < 32 && (0.0..8.0).contains(f), "bad pair ({i}, {f})");
            }
            crate::prop_assert_eq!(n.clamp(1, 4), n);
        }
    }
}
