//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! The workspace uses `StdRng::seed_from_u64` plus `gen`, `gen_range`,
//! `gen_bool` and slice `shuffle`. This crate implements that surface on
//! a xoshiro256++ generator seeded through splitmix64 — deterministic
//! across platforms, which is all the synthetic-data layers need. The
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, so seeded
//! expectations are "stable within this workspace", not "identical to
//! crates.io rand".

/// Core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform draw between two bounds. Mirrors rand's
/// `SampleUniform` so the single blanket [`SampleRange`] impl below lets
/// type inference unify integer literals with the target type (e.g.
/// `10u8 + rng.gen_range(0..8)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive: false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + <$t>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable uniformly (the `SampleRange` surface of rand 0.8).
pub trait SampleRange<T> {
    /// Draws one value from the range; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Random helpers on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on empty slices.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

/// The glob-import surface matching `rand::prelude::*`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=223u8);
            assert!((1..=223).contains(&w));
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
