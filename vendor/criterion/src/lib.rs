//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the macro/API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput and sample-size hints,
//! `bench_with_input`, and `black_box` — over a simple measurement core:
//! each sample runs a calibrated batch of iterations and the reported
//! figure is the median per-iteration wall time.
//!
//! Environment:
//! * `BENCH_QUICK=1` — one short sample per bench (CI smoke mode).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time target (calibration chooses the batch size to hit it).
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
const DEFAULT_SAMPLES: usize = 15;

/// Work-amount hint so throughput can be reported alongside latency.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    quick: bool,
    /// Median per-iteration time of the last `iter` call.
    pub(crate) last_median: Duration,
}

impl Bencher {
    /// Measures `f`: calibrates a batch size against [`SAMPLE_TARGET`],
    /// takes `samples` batches, and records the median per-iter time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibration: time a single iteration, then size batches so one
        // batch lands near the sample target.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let samples = if self.quick { 1 } else { self.samples };

        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort_unstable();
        self.last_median = per_iter[per_iter.len() / 2];
    }
}

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let ns = median.as_nanos().max(1);
    let rate = move |per_iter: u64| {
        let per_sec = per_iter as f64 * 1e9 / ns as f64;
        if per_sec >= 1e6 {
            format!("{:.2} M/s", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:.2} K/s", per_sec / 1e3)
        } else {
            format!("{per_sec:.2}/s")
        }
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {} elem", rate(n)),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {} B", rate(n)),
        None => String::new(),
    };
    let time = if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    };
    println!("bench: {name:<48} time: {time}{extra}");
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
            quick: quick_mode(),
        }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            quick: self.quick,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.last_median, None);
        self
    }

    /// Opens a named group sharing throughput/sample-size settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            quick: self.quick,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Group of related benchmarks (`detect/…`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work amount for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            quick: self.quick,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.last_median,
            self.throughput,
        );
        self
    }

    /// Parameterized variant: the closure also receives `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (explicit, to mirror criterion's API).
    pub fn finish(self) {}
}

/// Declares a bench group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin/small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(100));
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).product::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_measures() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut criterion = Criterion::default();
        spin(&mut criterion);
        let mut recorded = Duration::ZERO;
        criterion.bench_function("capture", |b| {
            b.iter(|| std::thread::sleep(Duration::from_micros(50)));
            recorded = b.last_median;
        });
        assert!(recorded >= Duration::from_micros(40), "median {recorded:?}");
    }
}
