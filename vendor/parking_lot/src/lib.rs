//! Offline stand-in for `parking_lot`.
//!
//! The workspace vendors the handful of external crates it uses so the
//! build needs no registry access (see `vendor/README.md`). This crate
//! mirrors the `parking_lot` API surface the workspace actually calls —
//! `Mutex`/`RwLock` with panic-free, poison-free guards — on top of
//! `std::sync`, recovering the inner value on poison.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that hands out guards without a `Result`, like `parking_lot`'s.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Locks the mutex, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock with poison-free guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
