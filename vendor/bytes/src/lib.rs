//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! Provides the `BytesMut` + `BufMut` subset the DNS wire codec uses: an
//! append-only growable byte buffer with big-endian integer writers.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer into its backing vector ("freeze" analogue).
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Append-style writer trait (the `bytes::BufMut` subset used here).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` big-endian.
    fn put_u16(&mut self, v: u16);
    /// Appends a `u32` big-endian.
    fn put_u32(&mut self, v: u32);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_writers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_slice(b"xy");
        assert_eq!(&b[..], &[0xAB, 1, 2, 3, 4, 5, 6, b'x', b'y']);
        assert_eq!(b.len(), 9);
    }
}
