//! Offline stand-in for `tokio` (see `vendor/README.md`).
//!
//! The workspace's async code runs localhost socket servers and probers in
//! tests and examples. This crate reproduces the API surface those call
//! sites use with a deliberately simple model:
//!
//! * **Executor** — [`runtime::block_on`] polls the future in a loop with a
//!   no-op waker, parking ~250µs between polls. Leaf futures never register
//!   wakers; they are re-polled until ready. Latency is bounded by the park
//!   interval, which is plenty for loopback tests.
//! * **Tasks** — [`spawn`] runs each future on its own OS thread (itself
//!   driven by `block_on`), so blocking sections cannot stall siblings.
//! * **I/O** — `net` types wrap nonblocking `std::net` sockets and surface
//!   `WouldBlock` as `Poll::Pending`.
//!
//! `select!` supports the two-arm form used in this workspace.

#![allow(async_fn_in_trait)]

pub use tokio_macros::{main, test};

/// Executor: poll-loop `block_on`.
pub mod runtime {
    use std::future::Future;
    use std::pin::pin;
    use std::task::{Context, Poll, Waker};
    use std::time::Duration;

    /// Runs a future to completion on the current thread, polling with a
    /// no-op waker and parking briefly between polls.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let mut fut = pin!(fut);
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::sleep(Duration::from_micros(250)),
            }
        }
    }

    /// Minimal `Runtime` facade for API parity.
    pub struct Runtime;

    impl Runtime {
        /// Builds the (stateless) runtime.
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime)
        }

        /// Runs a future to completion.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            block_on(fut)
        }
    }
}

/// Task handles.
pub mod task {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll};

    type Slot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

    /// Error from awaiting a task whose future panicked.
    #[derive(Debug)]
    pub struct JoinError {
        panicked: bool,
    }

    impl JoinError {
        /// Whether the task panicked (always true here; tasks are never
        /// cancelled).
        pub fn is_panic(&self) -> bool {
            self.panicked
        }
    }

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("task panicked")
        }
    }

    impl std::error::Error for JoinError {}

    /// Awaitable handle to a spawned task.
    pub struct JoinHandle<T> {
        slot: Slot<T>,
    }

    impl<T> JoinHandle<T> {
        pub(crate) fn new(slot: Slot<T>) -> Self {
            JoinHandle { slot }
        }

        /// Whether the task has finished.
        pub fn is_finished(&self) -> bool {
            self.slot.lock().map(|s| s.is_some()).unwrap_or(true)
        }
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut guard = self.slot.lock().unwrap_or_else(|p| p.into_inner());
            match guard.take() {
                Some(Ok(v)) => Poll::Ready(Ok(v)),
                Some(Err(_)) => Poll::Ready(Err(JoinError { panicked: true })),
                None => Poll::Pending,
            }
        }
    }
}

/// Spawns a future on its own thread, driven by [`runtime::block_on`].
pub fn spawn<F>(fut: F) -> task::JoinHandle<F::Output>
where
    F: std::future::Future + Send + 'static,
    F::Output: Send + 'static,
{
    let slot = std::sync::Arc::new(std::sync::Mutex::new(None));
    let thread_slot = slot.clone();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::runtime::block_on(fut)
        }));
        *thread_slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
    });
    task::JoinHandle::new(slot)
}

/// Nonblocking-socket async I/O helpers.
pub(crate) mod ready {
    use std::task::Poll;

    /// Drives a nonblocking operation: `WouldBlock` becomes `Pending`
    /// (the executor re-polls), everything else resolves.
    pub async fn io<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        std::future::poll_fn(move |_cx| match op() {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Poll::Pending,
            r => Poll::Ready(r),
        })
        .await
    }
}

/// Async wrappers over nonblocking `std::net` sockets.
pub mod net {
    use crate::ready;
    use std::io;
    use std::net::{SocketAddr, ToSocketAddrs};

    fn resolve<A: ToSocketAddrs>(addr: A) -> io::Result<SocketAddr> {
        addr.to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))
    }

    /// Async TCP stream.
    pub struct TcpStream {
        pub(crate) inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects (blocking under the hood — loopback connects resolve
        /// immediately) and switches the socket to nonblocking mode.
        pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
            let inner = std::net::TcpStream::connect(resolve(addr)?)?;
            inner.set_nonblocking(true)?;
            Ok(TcpStream { inner })
        }

        /// Local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Peer address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }
    }

    /// Async TCP listener.
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds a nonblocking listener.
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(resolve(addr)?)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// Bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Accepts one connection.
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, peer) = ready::io(|| self.inner.accept()).await?;
            stream.set_nonblocking(true)?;
            Ok((TcpStream { inner: stream }, peer))
        }
    }

    /// Async UDP socket.
    pub struct UdpSocket {
        inner: std::net::UdpSocket,
    }

    impl UdpSocket {
        /// Binds a nonblocking UDP socket.
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
            let inner = std::net::UdpSocket::bind(resolve(addr)?)?;
            inner.set_nonblocking(true)?;
            Ok(UdpSocket { inner })
        }

        /// Bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Sets the default peer for `send`/`recv`.
        pub async fn connect<A: ToSocketAddrs>(&self, addr: A) -> io::Result<()> {
            self.inner.connect(resolve(addr)?)
        }

        /// Sends to the connected peer.
        pub async fn send(&self, buf: &[u8]) -> io::Result<usize> {
            ready::io(|| self.inner.send(buf)).await
        }

        /// Receives from the connected peer.
        pub async fn recv(&self, buf: &mut [u8]) -> io::Result<usize> {
            ready::io(|| self.inner.recv(buf)).await
        }

        /// Sends one datagram to `target`.
        pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
            let target = resolve(target)?;
            ready::io(|| self.inner.send_to(buf, target)).await
        }

        /// Receives one datagram.
        pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
            ready::io(|| self.inner.recv_from(buf)).await
        }
    }
}

/// Async read/write extension traits (the `io-util` subset used here).
pub mod io {
    use crate::ready;
    use std::io::{Read, Write};

    /// Async reading.
    pub trait AsyncReadExt {
        /// Reads into `buf`, resolving once any bytes (or EOF) arrive.
        async fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;

        /// Reads until EOF, appending to `buf`; returns bytes added.
        async fn read_to_end(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize>;
    }

    /// Async writing.
    pub trait AsyncWriteExt {
        /// Writes the whole buffer.
        async fn write_all(&mut self, src: &[u8]) -> std::io::Result<()>;

        /// Flushes and closes the write half.
        async fn shutdown(&mut self) -> std::io::Result<()>;
    }

    impl AsyncReadExt for crate::net::TcpStream {
        async fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            ready::io(|| self.inner.read(buf)).await
        }

        async fn read_to_end(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize> {
            let mut total = 0;
            let mut chunk = [0u8; 4096];
            loop {
                let n = ready::io(|| self.inner.read(&mut chunk)).await?;
                if n == 0 {
                    return Ok(total);
                }
                buf.extend_from_slice(&chunk[..n]);
                total += n;
            }
        }
    }

    impl AsyncWriteExt for crate::net::TcpStream {
        async fn write_all(&mut self, src: &[u8]) -> std::io::Result<()> {
            let mut written = 0;
            while written < src.len() {
                let n = ready::io(|| self.inner.write(&src[written..])).await?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket closed mid-write",
                    ));
                }
                written += n;
            }
            ready::io(|| self.inner.flush()).await
        }

        async fn shutdown(&mut self) -> std::io::Result<()> {
            ready::io(|| self.inner.flush()).await?;
            self.inner.shutdown(std::net::Shutdown::Write)
        }
    }
}

/// Synchronization primitives (`watch`, `Semaphore`).
pub mod sync {
    /// Single-value broadcast channel with change notification.
    pub mod watch {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::{Arc, Mutex};
        use std::task::Poll;

        /// Error types mirroring tokio's.
        pub mod error {
            /// The sender was dropped.
            #[derive(Debug)]
            pub struct RecvError;

            impl std::fmt::Display for RecvError {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str("watch sender dropped")
                }
            }
            impl std::error::Error for RecvError {}

            /// All receivers were dropped (unused in this workspace but
            /// part of the send signature).
            #[derive(Debug)]
            pub struct SendError<T>(pub T);
        }

        struct Shared<T> {
            value: Mutex<T>,
            version: AtomicU64,
            tx_alive: AtomicBool,
        }

        /// Sending half.
        pub struct Sender<T> {
            shared: Arc<Shared<T>>,
        }

        /// Receiving half; `changed()` resolves when a newer value than the
        /// last seen one has been sent.
        pub struct Receiver<T> {
            shared: Arc<Shared<T>>,
            last_seen: u64,
        }

        /// Creates the channel with an initial (already-seen) value.
        pub fn channel<T>(init: T) -> (Sender<T>, Receiver<T>) {
            let shared = Arc::new(Shared {
                value: Mutex::new(init),
                version: AtomicU64::new(0),
                tx_alive: AtomicBool::new(true),
            });
            (
                Sender {
                    shared: shared.clone(),
                },
                Receiver {
                    shared,
                    last_seen: 0,
                },
            )
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                self.shared.tx_alive.store(false, Ordering::SeqCst);
            }
        }

        impl<T> Sender<T> {
            /// Stores a new value and wakes waiting receivers.
            pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
                *self.shared.value.lock().unwrap_or_else(|p| p.into_inner()) = value;
                self.shared.version.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }

        impl<T> Clone for Receiver<T> {
            fn clone(&self) -> Self {
                Receiver {
                    shared: self.shared.clone(),
                    last_seen: self.last_seen,
                }
            }
        }

        impl<T: Clone> Receiver<T> {
            /// Clones the current value, marking it seen.
            pub fn borrow_and_update(&mut self) -> T {
                self.last_seen = self.shared.version.load(Ordering::SeqCst);
                self.shared
                    .value
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .clone()
            }
        }

        impl<T> Receiver<T> {
            /// Resolves when the value changes relative to the last seen
            /// version; errors if the sender is gone.
            pub async fn changed(&mut self) -> Result<(), error::RecvError> {
                let shared = self.shared.clone();
                let last_seen = &mut self.last_seen;
                std::future::poll_fn(move |_cx| {
                    let version = shared.version.load(Ordering::SeqCst);
                    if version != *last_seen {
                        *last_seen = version;
                        return Poll::Ready(Ok(()));
                    }
                    if !shared.tx_alive.load(Ordering::SeqCst) {
                        return Poll::Ready(Err(error::RecvError));
                    }
                    Poll::Pending
                })
                .await
            }
        }
    }

    use std::sync::Mutex;
    use std::task::Poll;

    /// Error from acquiring on a closed semaphore (never closed here).
    #[derive(Debug)]
    pub struct AcquireError;

    impl std::fmt::Display for AcquireError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("semaphore closed")
        }
    }
    impl std::error::Error for AcquireError {}

    /// Counting semaphore.
    pub struct Semaphore {
        permits: Mutex<usize>,
    }

    /// RAII permit; restores the count on drop.
    pub struct SemaphorePermit<'a> {
        sem: &'a Semaphore,
    }

    impl Semaphore {
        /// Creates a semaphore with `permits` slots.
        pub fn new(permits: usize) -> Self {
            Semaphore {
                permits: Mutex::new(permits),
            }
        }

        /// Waits for a free permit.
        pub async fn acquire(&self) -> Result<SemaphorePermit<'_>, AcquireError> {
            std::future::poll_fn(|_cx| {
                let mut p = self.permits.lock().unwrap_or_else(|e| e.into_inner());
                if *p > 0 {
                    *p -= 1;
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            })
            .await;
            Ok(SemaphorePermit { sem: self })
        }

        /// Currently available permits.
        pub fn available_permits(&self) -> usize {
            *self.permits.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl Drop for SemaphorePermit<'_> {
        fn drop(&mut self) {
            *self.sem.permits.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        }
    }
}

/// Timeouts.
pub mod time {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};
    use std::time::Instant;

    pub use std::time::Duration;

    /// Timeout error types.
    pub mod error {
        /// The deadline passed before the inner future resolved.
        #[derive(Debug, PartialEq, Eq)]
        pub struct Elapsed;

        impl std::fmt::Display for Elapsed {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("deadline has elapsed")
            }
        }
        impl std::error::Error for Elapsed {}
    }

    /// Future returned by [`timeout`].
    pub struct Timeout<F: Future> {
        fut: Pin<Box<F>>,
        deadline: Instant,
    }

    /// Bounds `fut` by `dur`: `Ok(output)` if it resolves in time,
    /// `Err(Elapsed)` otherwise (the inner future is dropped).
    pub fn timeout<F: Future>(dur: Duration, fut: F) -> Timeout<F> {
        Timeout {
            fut: Box::pin(fut),
            deadline: Instant::now() + dur,
        }
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, error::Elapsed>;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            if let Poll::Ready(v) = self.fut.as_mut().poll(cx) {
                return Poll::Ready(Ok(v));
            }
            if Instant::now() >= self.deadline {
                return Poll::Ready(Err(error::Elapsed));
            }
            Poll::Pending
        }
    }

    /// Resolves once `dur` has passed (poll-loop granularity).
    pub async fn sleep(dur: Duration) {
        let deadline = Instant::now() + dur;
        std::future::poll_fn(move |_cx| {
            if Instant::now() >= deadline {
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        })
        .await
    }
}

/// Support types for the `select!` macro expansion.
pub mod macros {
    /// Two-way either for two-arm `select!`.
    pub enum Either2<A, B> {
        /// First arm resolved.
        A(A),
        /// Second arm resolved.
        B(B),
    }
}

/// Two-arm `select!`: polls both futures each executor tick and runs the
/// handler of whichever resolves first (first arm wins ties).
#[macro_export]
macro_rules! select {
    ($p1:pat = $f1:expr => $h1:expr, $p2:pat = $f2:expr => $h2:expr $(,)?) => {{
        // The futures live (and die) in this inner block so any borrows
        // they hold are released before the winning handler runs.
        let __select_out = {
            let mut __select_f1 = ::std::pin::pin!($f1);
            let mut __select_f2 = ::std::pin::pin!($f2);
            ::std::future::poll_fn(|__cx| {
                use ::std::future::Future as _;
                if let ::std::task::Poll::Ready(v) = __select_f1.as_mut().poll(__cx) {
                    return ::std::task::Poll::Ready($crate::macros::Either2::A(v));
                }
                if let ::std::task::Poll::Ready(v) = __select_f2.as_mut().poll(__cx) {
                    return ::std::task::Poll::Ready($crate::macros::Either2::B(v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __select_out {
            $crate::macros::Either2::A($p1) => $h1,
            $crate::macros::Either2::B($p2) => $h2,
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::io::{AsyncReadExt, AsyncWriteExt};

    #[test]
    fn block_on_runs_plain_futures() {
        assert_eq!(crate::runtime::block_on(async { 1 + 1 }), 2);
    }

    #[test]
    fn spawn_and_join() {
        let out = crate::runtime::block_on(async {
            let h = crate::spawn(async { 21 * 2 });
            h.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn join_surfaces_panics() {
        let out = crate::runtime::block_on(async {
            let h = crate::spawn(async { panic!("boom") });
            h.await
        });
        assert!(out.is_err());
    }

    #[test]
    fn tcp_round_trip() {
        crate::runtime::block_on(async {
            let listener = crate::net::TcpListener::bind(("127.0.0.1", 0))
                .await
                .unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut stream, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 5];
                let n = stream.read(&mut buf).await.unwrap();
                stream.write_all(&buf[..n]).await.unwrap();
                stream.shutdown().await.unwrap();
            });
            let mut client = crate::net::TcpStream::connect(addr).await.unwrap();
            client.write_all(b"hello").await.unwrap();
            let mut echoed = Vec::new();
            client.read_to_end(&mut echoed).await.unwrap();
            assert_eq!(echoed, b"hello");
            server.await.unwrap();
        });
    }

    #[test]
    fn udp_round_trip_with_timeout() {
        crate::runtime::block_on(async {
            let a = crate::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
            let b = crate::net::UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
            a.connect(b.local_addr().unwrap()).await.unwrap();
            a.send(b"ping").await.unwrap();
            let mut buf = [0u8; 16];
            let (n, peer) =
                crate::time::timeout(crate::time::Duration::from_secs(1), b.recv_from(&mut buf))
                    .await
                    .expect("datagram within deadline")
                    .unwrap();
            assert_eq!(&buf[..n], b"ping");
            assert_eq!(peer, a.local_addr().unwrap());
            // And a timeout that must fire: nobody sends to `b` again.
            let r = crate::time::timeout(
                crate::time::Duration::from_millis(30),
                b.recv_from(&mut buf),
            )
            .await;
            assert!(r.is_err());
        });
    }

    #[test]
    fn watch_and_select_break_a_loop() {
        crate::runtime::block_on(async {
            let (tx, rx) = crate::sync::watch::channel(false);
            let worker = crate::spawn(async move {
                let mut ticks = 0u32;
                loop {
                    let mut rx = rx.clone();
                    crate::select! {
                        _ = rx.changed() => break,
                        _ = crate::time::sleep(crate::time::Duration::from_millis(1)) => {
                            ticks += 1;
                        }
                    }
                }
                ticks
            });
            crate::time::sleep(crate::time::Duration::from_millis(20)).await;
            tx.send(true).unwrap();
            let ticks = worker.await.unwrap();
            assert!(ticks > 0);
        });
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        crate::runtime::block_on(async {
            let sem = Arc::new(crate::sync::Semaphore::new(2));
            let live = Arc::new(AtomicUsize::new(0));
            let peak = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let sem = sem.clone();
                let live = live.clone();
                let peak = peak.clone();
                handles.push(crate::spawn(async move {
                    let _p = sem.acquire().await.unwrap();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    crate::time::sleep(crate::time::Duration::from_millis(5)).await;
                    live.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
            assert!(peak.load(Ordering::SeqCst) <= 2);
        });
    }
}
