//! Property-based tests over the core substrates.

use proptest::prelude::*;
use squatphi_dnswire::{Message, RData, Rcode, RecordType, ResourceRecord};
use squatphi_domain::{distance, idna, punycode, DomainName};
use squatphi_html::{parse, tokenize};
use squatphi_imghash::{average_hash, difference_hash, perceptual_hash};
use squatphi_nlp::SparseVec;
use squatphi_ocr::{recognize, OcrConfig};
use squatphi_render::{render_page, Bitmap, RenderOptions};

/// The checked-in `tests/properties.proptest-regressions` must actually be
/// found and parsed by the runner — a silently-missing regression file
/// would quietly stop replaying known-bad inputs.
#[test]
fn regression_file_is_loaded() {
    let seeds = proptest::regressions::load_for_source(file!(), env!("CARGO_MANIFEST_DIR"));
    assert!(
        !seeds.is_empty(),
        "tests/properties.proptest-regressions exists but no seeds were loaded"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- punycode / IDNA -------------------------------------------------

    #[test]
    fn punycode_round_trips_unicode_labels(s in "\\PC{1,24}") {
        if let Ok(encoded) = punycode::encode(&s) {
            prop_assert!(encoded.is_ascii());
            if !s.is_ascii() {
                let decoded = punycode::decode(&encoded).expect("decode what we encoded");
                prop_assert_eq!(decoded, s);
            }
        }
    }

    #[test]
    fn punycode_decode_never_panics(s in "[a-z0-9-]{0,32}") {
        let _ = punycode::decode(&s);
    }

    #[test]
    fn idna_round_trips_lowercase_labels(s in "[a-zàéöκогž]{1,16}") {
        let domain = format!("{s}.com");
        if let Ok(ascii) = idna::to_ascii(&domain) {
            prop_assert!(ascii.is_ascii());
            prop_assert_eq!(idna::to_unicode(&ascii), domain);
        }
    }

    // ---- distances --------------------------------------------------------

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        let ab = distance::levenshtein(&a, &b);
        let ba = distance::levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(distance::levenshtein(&a, &a), 0);
        let ac = distance::levenshtein(&a, &c);
        let bc = distance::levenshtein(&b, &c);
        prop_assert!(ac <= ab + bc, "triangle inequality violated");
    }

    #[test]
    fn damerau_never_exceeds_levenshtein(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        prop_assert!(distance::damerau_levenshtein(&a, &b) <= distance::levenshtein(&a, &b));
    }

    #[test]
    fn bit_flip_distance_is_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        prop_assert_eq!(
            distance::bit_flip_distance(&a, &b),
            distance::bit_flip_distance(&b, &a)
        );
        // Self-distance on ASCII input is always "zero flips".
        prop_assert_eq!(distance::bit_flip_distance(&a, &a), Some(0));
    }

    // ---- domain names -----------------------------------------------------

    #[test]
    fn domain_parse_never_panics(s in "\\PC{0,64}") {
        let _ = DomainName::parse(&s);
    }

    #[test]
    fn parsed_domains_are_idempotent(label in "[a-z][a-z0-9]{0,20}", tld in "(com|net|org|tk|audi|com\\.ua)") {
        let d = DomainName::parse(&format!("{label}.{tld}")).expect("valid input");
        let d2 = DomainName::parse(d.as_str()).expect("reparse");
        prop_assert_eq!(d, d2);
    }

    #[test]
    fn domain_display_round_trips(
        sub in "([a-z][a-z0-9]{0,8}\\.){0,2}",
        label in "[a-z][a-z0-9-]{0,14}[a-z0-9]",
        tld in "(com|net|org|pw|top|com\\.ua)",
    ) {
        // parse → Display → parse is the identity for every valid name,
        // including subdomain chains and multi-label public suffixes.
        if let Ok(d) = DomainName::parse(&format!("{sub}{label}.{tld}")) {
            let shown = d.to_string();
            let reparsed = DomainName::parse(&shown).expect("display output reparses");
            prop_assert_eq!(&reparsed, &d);
            prop_assert_eq!(shown, d.as_str());
        }
    }

    // ---- DNS wire ----------------------------------------------------------

    #[test]
    fn dns_query_round_trips(name in "[a-z]{1,12}(\\.[a-z]{1,12}){0,3}", id in any::<u16>()) {
        let q = Message::query(id, &name, RecordType::A);
        let decoded = Message::decode(&q.encode().expect("encode")).expect("decode");
        prop_assert_eq!(decoded, q);
    }

    #[test]
    fn dns_response_round_trips(
        name in "[a-z]{1,12}\\.[a-z]{2,4}",
        ip in any::<[u8; 4]>(),
        ttl in 0u32..1_000_000,
    ) {
        let q = Message::query(1, &name, RecordType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(ResourceRecord {
            name: name.clone(),
            ttl,
            rdata: RData::A(ip.into()),
        });
        let decoded = Message::decode(&r.encode().expect("encode")).expect("decode");
        prop_assert_eq!(decoded, r);
    }

    #[test]
    fn dns_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    // ---- HTML ---------------------------------------------------------------

    #[test]
    fn html_tokenizer_never_panics(s in "\\PC{0,300}") {
        let _ = tokenize(&s);
        let _ = parse(&s);
    }

    #[test]
    fn html_serialize_reparse_preserves_text(words in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
        let text = words.join(" ");
        let html = format!("<body><p>{text}</p></body>");
        let doc = parse(&html);
        let round = parse(&doc.serialize(squatphi_html::Document::ROOT));
        prop_assert_eq!(
            round.subtree_text(squatphi_html::Document::ROOT),
            doc.subtree_text(squatphi_html::Document::ROOT)
        );
    }

    // ---- HTTP codec ------------------------------------------------------------

    #[test]
    fn http_request_round_trips(
        host in "[a-z][a-z0-9-]{0,20}\\.(com|net|org|pw)",
        path in "(/[a-z0-9]{0,6}){0,3}",
    ) {
        use squatphi_http::codec::{find_head_end, Request};
        let req = Request::get(&host, if path.is_empty() { "/" } else { &path }, squatphi_http::ua::WEB);
        let wire = req.encode();
        let head_end = find_head_end(&wire).expect("request has a head");
        let parsed = Request::parse(std::str::from_utf8(&wire[..head_end]).expect("ascii"))
            .expect("parse own request");
        prop_assert_eq!(parsed, req);
    }

    #[test]
    fn http_response_round_trips(body in "\\PC{0,300}") {
        use squatphi_http::codec::Response;
        let resp = Response::ok(body);
        let parsed = Response::parse(&resp.encode()).expect("parse own response");
        prop_assert_eq!(parsed, resp);
    }

    #[test]
    fn http_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        use squatphi_http::codec::{Request, Response};
        let _ = Response::parse(&bytes);
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = Request::parse(s);
        }
    }

    // ---- image hashing -------------------------------------------------------

    #[test]
    fn image_hashes_are_deterministic_and_self_zero(seed in any::<u8>()) {
        let mut bmp = Bitmap::new(48, 48);
        for y in 0..48 {
            for x in 0..48 {
                bmp.put(x, y, ((x * 3 + y * 7 + seed as usize) % 256) as u8);
            }
        }
        for h in [average_hash(&bmp), difference_hash(&bmp), perceptual_hash(&bmp)] {
            prop_assert_eq!(h.distance(&h), 0);
        }
    }

    // ---- OCR -------------------------------------------------------------------

    #[test]
    fn ocr_reads_back_rendered_words(words in proptest::collection::vec("[a-z]{2,9}", 1..4)) {
        let text = words.join(" ");
        let html = format!("<body><p>{text}</p></body>");
        let bmp = render_page(&parse(&html), &RenderOptions::default());
        let cfg = OcrConfig { char_error_rate: 0.0, ..OcrConfig::default() };
        let out = recognize(&bmp, &cfg).joined();
        // Wrapping may split lines, but every word must be recovered.
        for w in &words {
            prop_assert!(out.contains(w.as_str()), "OCR lost {w:?} in {out:?}");
        }
    }

    // ---- URLs -------------------------------------------------------------------

    #[test]
    fn url_parse_never_panics(s in "\\PC{0,64}") {
        let _ = squatphi_domain::url::Url::parse(&s);
    }

    #[test]
    fn url_round_trips(
        host in "[a-z][a-z0-9-]{0,15}\\.(com|net|org)",
        path in "(/[a-z0-9]{0,8}){0,3}",
    ) {
        let input = format!("https://{host}{path}");
        let u = squatphi_domain::url::Url::parse(&input).expect("constructed URL valid");
        prop_assert_eq!(&u.host, &host);
        let round = squatphi_domain::url::Url::parse(&u.to_string_full()).expect("reparse");
        prop_assert_eq!(round, u);
    }

    // ---- zone files ----------------------------------------------------------------

    #[test]
    fn zone_round_trips_a_records(
        entries in proptest::collection::vec(
            ("[a-z][a-z0-9-]{0,12}\\.(com|net|org)", any::<[u8; 4]>(), 1u32..1_000_000),
            0..20,
        )
    ) {
        use squatphi_dnswire::zone::{format_zone, parse_zone};
        let records: Vec<squatphi_dnswire::ResourceRecord> = entries
            .iter()
            .map(|(name, ip, ttl)| squatphi_dnswire::ResourceRecord {
                name: name.clone(),
                ttl: *ttl,
                rdata: squatphi_dnswire::RData::A((*ip).into()),
            })
            .collect();
        let text = format_zone(&records);
        let parsed = parse_zone(&text).expect("parse own output");
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn zone_parse_never_panics(s in "\\PC{0,200}") {
        let _ = squatphi_dnswire::zone::parse_zone(&s);
    }

    // ---- sparse vectors ----------------------------------------------------------

    #[test]
    fn sparse_distance_matches_dense(
        a in proptest::collection::vec((0usize..32, 0.0f64..8.0), 0..10),
        b in proptest::collection::vec((0usize..32, 0.0f64..8.0), 0..10),
    ) {
        let mut va = SparseVec::new();
        for (i, v) in &a {
            va.add(*i, *v);
        }
        let mut vb = SparseVec::new();
        for (i, v) in &b {
            vb.add(*i, *v);
        }
        let da = va.to_dense(32);
        let db = vb.to_dense(32);
        let expect: f64 = da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum();
        prop_assert!((va.sq_distance(&vb) - expect).abs() < 1e-9);
    }

    #[test]
    fn sparse_cosine_bounded_and_symmetric(
        a in proptest::collection::vec((0usize..32, 0.0f64..8.0), 0..10),
        b in proptest::collection::vec((0usize..32, 0.0f64..8.0), 0..10),
    ) {
        let mut va = SparseVec::new();
        for (i, v) in &a {
            va.add(*i, *v);
        }
        let mut vb = SparseVec::new();
        for (i, v) in &b {
            vb.add(*i, *v);
        }
        let c = va.cosine(&vb);
        prop_assert!((-1.0..=1.0).contains(&c), "cosine {c} out of [-1, 1]");
        prop_assert!((c - vb.cosine(&va)).abs() < 1e-12, "cosine not symmetric");
        if va.entries().iter().any(|&(_, v)| v != 0.0) {
            prop_assert!((va.cosine(&va) - 1.0).abs() < 1e-9, "self-cosine must be 1");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- squat generation/detection round trip --------------------------------

    #[test]
    fn detector_recognizes_generated_candidates(brand_idx in 0usize..20) {
        use squatphi_squat::gen::{generate_all, GenBudget};
        use squatphi_squat::{BrandRegistry, SquatDetector};
        let registry = BrandRegistry::with_size(20);
        let detector = SquatDetector::new(&registry);
        let brand = registry.get(brand_idx).expect("brand in range");
        let budget = GenBudget { homograph: 10, bits: 10, typo: 10, combo: 10, wrong_tld: 5 };
        let candidates = generate_all(brand, budget);
        let detected = candidates
            .iter()
            .filter(|c| detector.classify(&c.domain).is_some())
            .count();
        prop_assert!(
            detected * 100 >= candidates.len() * 90,
            "recall {detected}/{} for {}",
            candidates.len(),
            brand.label
        );
    }
}
