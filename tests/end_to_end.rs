//! Cross-crate integration tests: the full SquatPhi pipeline at test
//! scale, checked for internal consistency across every stage boundary.

use squatphi::analysis;
use squatphi::pipeline::PipelineResult;
use squatphi::{RunOptions, SimConfig, SquatPhi};
use squatphi_web::{Device, SiteBehavior};
use std::sync::OnceLock;

fn result() -> &'static PipelineResult {
    static R: OnceLock<PipelineResult> = OnceLock::new();
    R.get_or_init(|| {
        SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
            .expect("tiny pipeline runs clean")
    })
}

#[test]
fn scan_crawl_and_world_agree_on_domains() {
    let r = result();
    assert_eq!(r.crawl.len(), r.scan.total_matches());
    for m in &r.scan.matches {
        assert!(
            r.world.site(&m.domain.registrable()).is_some(),
            "{} scanned but missing from the world",
            m.domain
        );
    }
}

#[test]
fn every_confirmed_detection_is_ground_truth_phishing() {
    let r = result();
    for d in r
        .confirmed(Device::Web)
        .iter()
        .chain(&r.confirmed(Device::Mobile))
    {
        let site = r.world.site(&d.domain).expect("site exists");
        assert!(
            site.behavior.is_phishing(),
            "{} confirmed but benign",
            d.domain
        );
    }
}

#[test]
fn unconfirmed_detections_are_ground_truth_benign_or_cloaked() {
    let r = result();
    for d in r.web_detections.iter().filter(|d| !d.confirmed) {
        let site = r.world.site(&d.domain).expect("site exists");
        // Non-phishing behaviors are classifier false positives — expected.
        if let SiteBehavior::Phishing(p) = &site.behavior {
            // Only acceptable reason: cloaked away from this device or
            // down at snapshot 0.
            let cloaked = p.cloaking == squatphi_web::Cloaking::MobileOnly;
            let down = !p.lifetime.phishing_live(0);
            assert!(
                cloaked || down,
                "{} unconfirmed yet live uncloaked phishing",
                d.domain
            );
        }
    }
}

#[test]
fn evaluation_models_are_ordered_sanely() {
    let r = result();
    let auc = |name: &str| {
        r.eval
            .models
            .iter()
            .find(|m| m.name == name)
            .expect("model present")
            .metrics
            .auc
    };
    // The paper's ordering: RF best, NB worst.
    assert!(auc("RandomForest") >= auc("NaiveBayes"));
    assert!(auc("RandomForest") > 0.85);
}

#[test]
fn feed_statistics_survive_the_pipeline() {
    let r = result();
    assert!(!r.feed.entries.is_empty());
    let squatting = r
        .feed
        .entries
        .iter()
        .filter(|e| e.squat_type.is_some())
        .count();
    let frac = squatting as f64 / r.feed.entries.len() as f64;
    assert!(
        frac < 0.2,
        "feed squatting fraction {frac} too high (paper: 9%)"
    );
}

#[test]
fn analyses_are_consistent_with_detections() {
    let r = result();
    let per_brand = analysis::confirmed_per_brand(r);
    let per_type = analysis::confirmed_per_type(r);
    let web_total: usize = per_type.iter().map(|(w, _)| w).sum();
    assert_eq!(
        web_total,
        r.confirmed(Device::Web)
            .iter()
            .map(|d| d.domain.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
    let brand_web: usize = per_brand.iter().map(|(_, w, _)| w).sum();
    assert_eq!(brand_web, web_total);
}

#[test]
fn blacklist_coverage_shape() {
    let r = result();
    let (pt, _vt, _ecx, none) = analysis::blacklist_coverage(r);
    let total = r.confirmed_domains().len();
    assert_eq!(pt, 0, "PhishTank never lists squatting phishing (Table 12)");
    assert!(
        none as f64 >= total as f64 * 0.8,
        "undetected {none}/{total}"
    );
}

#[test]
fn snapshot_liveness_is_monotone_enough() {
    let r = result();
    let live = analysis::snapshot_liveness(r);
    // Snapshot 0 must have the most live pages; after a month at least
    // half survive (paper: ~80%).
    let first = live[0].0 + live[0].1;
    let last = live[3].0 + live[3].1;
    assert!(first > 0);
    assert!(last * 2 >= first, "survival collapsed: {first} -> {last}");
}

#[test]
fn analysis_counters_reconcile_and_split_matches_training() {
    let r = result();
    let a = &r.analysis;
    assert!(a.pages > 0);
    assert_eq!(a.pages, a.cache_hits + a.cache_misses);
    assert!(a.cache_hits > 0, "web+mobile passes never shared a page");
    assert!(a.stage_nanos() > 0);
    // The carried training split is exactly what the evaluator reported.
    assert_eq!(r.train_split, r.eval.train_shape);
}

#[test]
fn pipeline_is_deterministic() {
    // A second tiny run must agree with the shared one on headline counts.
    let again = SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
        .expect("tiny pipeline runs clean");
    let r = result();
    assert_eq!(again.scan.total_matches(), r.scan.total_matches());
    assert_eq!(again.confirmed_domains().len(), r.confirmed_domains().len());
    assert_eq!(again.web_detections.len(), r.web_detections.len());
}
