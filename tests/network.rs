//! Socket-level integration: the UDP active prober and the TCP crawl path
//! working together over a real network stack (localhost).

use squatphi_dnsdb::probe::{probe_all, AuthServer, ProbeResult, ProberConfig};
use squatphi_http::{fetch, ua, FetchOutcome, WorldServer};
use squatphi_squat::{BrandRegistry, SquatType};
use squatphi_web::{WebWorld, WorldConfig};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn build_world(registry: &BrandRegistry, domains: &[String]) -> Arc<WebWorld> {
    let squats: Vec<_> = domains
        .iter()
        .enumerate()
        .map(|(i, d)| {
            (
                d.clone(),
                i % registry.len(),
                SquatType::Combo,
                Ipv4Addr::new(198, 51, 100, i as u8),
            )
        })
        .collect();
    Arc::new(WebWorld::build(
        &squats,
        registry,
        &WorldConfig {
            phishing_domains: domains.len() / 2,
            seed: 21,
            ..WorldConfig::default()
        },
    ))
}

#[tokio::test]
async fn dns_probe_then_http_fetch() {
    let registry = BrandRegistry::with_size(8);
    let domains: Vec<String> = (0..12).map(|i| format!("paypal-net{i}.com")).collect();

    // DNS: half the candidates exist.
    let mut zone = HashMap::new();
    for (i, d) in domains.iter().enumerate() {
        if i % 2 == 0 {
            zone.insert(d.clone(), Ipv4Addr::new(203, 0, 113, i as u8));
        }
    }
    let dns = AuthServer::spawn(zone).await.expect("dns server");
    let results = probe_all(dns.addr(), &domains, &ProberConfig::default())
        .await
        .expect("probe");
    let resolved: Vec<String> = domains
        .iter()
        .zip(&results)
        .filter(|(_, r)| matches!(r, ProbeResult::Resolved(_)))
        .map(|(d, _)| d.clone())
        .collect();
    assert_eq!(resolved.len(), 6);
    dns.shutdown().await;

    // HTTP: fetch the resolving candidates from the world server.
    let world = build_world(&registry, &resolved);
    let server = WorldServer::spawn(world.clone(), 0)
        .await
        .expect("http server");
    let mut pages = 0;
    for d in &resolved {
        match fetch(server.addr(), d, ua::WEB, 5).await.expect("fetch") {
            FetchOutcome::Page { .. } => pages += 1,
            FetchOutcome::Unreachable | FetchOutcome::TooManyRedirects => {}
        }
    }
    assert!(pages > 0, "no pages served over TCP");
    server.shutdown().await;
}

#[tokio::test]
async fn mobile_and_web_profiles_can_differ_over_tcp() {
    let registry = BrandRegistry::with_size(8);
    let domains: Vec<String> = (0..30).map(|i| format!("google-svc{i}.com")).collect();
    let world = build_world(&registry, &domains);
    let server = WorldServer::spawn(world.clone(), 0)
        .await
        .expect("http server");
    let mut differing = 0;
    for d in &domains {
        let web = fetch(server.addr(), d, ua::WEB, 5)
            .await
            .expect("web fetch");
        let mobile = fetch(server.addr(), d, ua::MOBILE, 5)
            .await
            .expect("mobile fetch");
        if web != mobile {
            differing += 1;
        }
    }
    // Half the domains are phishing and ~half of those cloak by device.
    assert!(
        differing > 0,
        "no cloaking observed across {} domains",
        domains.len()
    );
    server.shutdown().await;
}

#[tokio::test]
async fn snapshots_are_observable_over_tcp() {
    let registry = BrandRegistry::with_size(8);
    let domains: Vec<String> = (0..40).map(|i| format!("citi-alerts{i}.com")).collect();
    let world = build_world(&registry, &domains);

    let s0 = WorldServer::spawn(world.clone(), 0)
        .await
        .expect("server s0");
    let s3 = WorldServer::spawn(world.clone(), 3)
        .await
        .expect("server s3");
    let mut changed = 0;
    for d in &domains {
        let early = fetch(s0.addr(), d, ua::MOBILE, 5).await.expect("fetch s0");
        let late = fetch(s3.addr(), d, ua::MOBILE, 5).await.expect("fetch s3");
        if early != late {
            changed += 1;
        }
    }
    assert!(changed > 0, "no takedowns visible between snapshots");
    s0.shutdown().await;
    s3.shutdown().await;
}
