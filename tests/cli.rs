//! Integration tests for the `squatphi` CLI: parse → run round trips on
//! temp fixtures, exercising the same code paths as the binary.

use squatphi_cli::{commands, parse_args};

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn run_line(line: &str) -> Result<String, String> {
    let cmd = parse_args(&args(line)).map_err(|e| e.to_string())?;
    commands::run(&cmd)
}

#[test]
fn classify_round_trip() {
    let out = run_line("classify xn--fcebook-8va.com paypal-cash.com example.com").expect("runs");
    assert!(
        out.contains("xn--fcebook-8va.com: SQUATTING (Homograph) on facebook"),
        "{out}"
    );
    assert!(
        out.contains("paypal-cash.com: SQUATTING (Combo) on paypal"),
        "{out}"
    );
    assert!(out.contains("example.com: clean"), "{out}");
}

#[test]
fn gen_respects_limit() {
    let out = run_line("gen santander --limit 1").expect("runs");
    // One candidate per type, five types.
    let candidate_lines = out.lines().filter(|l| l.starts_with("  ")).count();
    assert_eq!(candidate_lines, 5, "{out}");
}

#[test]
fn scan_zone_fixture_end_to_end() {
    let dir = std::env::temp_dir().join("squatphi-cli-integration");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let zone = dir.join("fixture.zone");

    // Build the fixture through the library path: generate, store, export.
    let registry = squatphi_squat::BrandRegistry::with_size(10);
    let cfg = squatphi_dnsdb::SnapshotConfig {
        benign_records: 200,
        squatting_records: 40,
        subdomain_fraction: 0.0,
        seed: 31,
    };
    let (store, stats) = squatphi_dnsdb::synth::generate(&cfg, &registry);
    std::fs::write(&zone, store.to_zone()).expect("write zone");

    let out = run_line(&format!("scan {} --threads 2", zone.display())).expect("runs");
    let planted: usize = stats.planted_by_type.iter().sum();
    // The CLI scans against the full 702-brand registry, so it must find
    // at least everything planted against the 10-brand subset.
    let found: usize = out
        .lines()
        .find(|l| l.contains("squatting domains"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    assert!(found >= planted, "found {found} < planted {planted}\n{out}");
}

#[test]
fn render_page_fixture() {
    let dir = std::env::temp_dir().join("squatphi-cli-integration");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let page = dir.join("page.html");
    std::fs::write(
        &page,
        "<html><head><title>citi login</title></head><body><h1>citi</h1>\
         <form><input type='password' placeholder='password'></form></body></html>",
    )
    .expect("write page");
    let out = run_line(&format!("render {} --width 48", page.display())).expect("runs");
    assert!(out.lines().count() > 10);
    assert!(
        out.contains('#') || out.contains('*'),
        "no ink in render:\n{out}"
    );
}

#[test]
fn errors_are_reported_not_panicked() {
    assert!(run_line("scan /definitely/not/here.zone").is_err());
    assert!(run_line("gen notabrandatall").is_err());
    assert!(run_line("bogus-subcommand").is_err());
}
