//! Workspace façade. See README.md.
//!
//! The service surface lives in the `squatphi` core crate; the façade
//! re-exports its entry points so downstream code can depend on the
//! workspace root alone:
//!
//! * batch pipeline — [`SquatPhi::try_run`] over a [`SimConfig`] with
//!   [`RunOptions`], failing with a structured [`PipelineError`];
//! * streaming daemon — [`SquatPhi::try_watch`] over a validated
//!   [`WatchConfig`] with [`WatchOptions`], failing with [`WatchError`].

pub use squatphi as core;

pub use squatphi::{
    CheckpointError, PipelineError, PipelineErrorKind, PipelineResult, RunOptions, SimConfig,
    SquatPhi, SupervisionReport, WatchConfig, WatchConfigBuilder, WatchConfigError, WatchCounters,
    WatchError, WatchMetrics, WatchOptions, WatchSummary,
};
