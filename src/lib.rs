//! Workspace façade. See README.md.
pub use squatphi as core;
