#!/usr/bin/env bash
# Crash-point recovery matrix across real process boundaries.
#
# For each durable-write index K, runs the release binary under a seeded
# `crash-at-write-K` disk-fault plan (the process aborts with exit code
# 86 at the K-th checkpoint write — before it, mid-write with a torn
# temp file, or after the commit rename, drawn from the seed), restarts
# with --resume against whatever the crash left on disk, and asserts the
# recovered --json summary is byte-identical to an uninterrupted run's.
# Both durable-state consumers are swept: `squatphi watch` (watermark
# checkpoints) and `repro` (stage checkpoints).
#
# The in-process half of the matrix (panicking crash hook, every K,
# 1/4/8 threads) lives in crates/core/tests/durable_state.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

CRASH_EXIT=86
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cargo build --release -p squatphi-cli -p squatphi-experiments
SQUATPHI=target/release/squatphi
REPRO=target/release/repro

# -- watch: watermark checkpoints ------------------------------------------

"$SQUATPHI" watch --seed 7 --events 1000 --json > "$WORK/watch-baseline.json"

for k in 1 2 3 4 5; do
    dir="$WORK/watch-ckpt-$k"
    set +e
    "$SQUATPHI" watch --seed 7 --events 1000 --checkpoint "$dir" \
        --disk-faults "crash-at-write-$k" --disk-fault-seed "$k" \
        > /dev/null 2> "$WORK/watch-crash-$k.log"
    status=$?
    set -e
    if [ "$status" -ne "$CRASH_EXIT" ]; then
        echo "crash_matrix: watch K=$k exited $status, expected $CRASH_EXIT" >&2
        cat "$WORK/watch-crash-$k.log" >&2
        exit 1
    fi
    "$SQUATPHI" watch --seed 7 --events 1000 --checkpoint "$dir" --resume --json \
        > "$WORK/watch-resumed-$k.json"
    if ! cmp "$WORK/watch-baseline.json" "$WORK/watch-resumed-$k.json"; then
        echo "crash_matrix: watch K=$k resumed summary diverged" >&2
        exit 1
    fi
    echo "crash_matrix: watch K=$k crashed and recovered byte-identically"
done

# -- repro: stage checkpoints (scan, crawl, train) -------------------------

"$REPRO" --scale 2000 --threads 1 --json "$WORK/repro-baseline.json" table7 \
    > /dev/null 2> "$WORK/repro-baseline.log"

for k in 1 2 3; do
    dir="$WORK/repro-ckpt-$k"
    set +e
    "$REPRO" --scale 2000 --threads 1 --checkpoint-dir "$dir" \
        --disk-faults "crash-at-write-$k" --disk-fault-seed "$k" \
        --json "$WORK/repro-crashed-$k.json" table7 \
        > /dev/null 2> "$WORK/repro-crash-$k.log"
    status=$?
    set -e
    if [ "$status" -ne "$CRASH_EXIT" ]; then
        echo "crash_matrix: repro K=$k exited $status, expected $CRASH_EXIT" >&2
        cat "$WORK/repro-crash-$k.log" >&2
        exit 1
    fi
    "$REPRO" --scale 2000 --threads 1 --checkpoint-dir "$dir" --resume \
        --json "$WORK/repro-resumed-$k.json" table7 \
        > /dev/null 2> "$WORK/repro-resume-$k.log"
    if ! cmp "$WORK/repro-baseline.json" "$WORK/repro-resumed-$k.json"; then
        echo "crash_matrix: repro K=$k resumed summary diverged" >&2
        exit 1
    fi
    echo "crash_matrix: repro K=$k crashed and recovered byte-identically"
done

echo "crash_matrix: OK (all crash points recovered byte-identically)"
