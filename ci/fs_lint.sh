#!/usr/bin/env bash
# Fails when a new direct `fs::write` / `fs::rename` call appears outside
# crates/durability. Durable state goes through the DurableStore /
# Vfs seam (header + CRC + generations + fsync — DESIGN.md §16); a raw
# std::fs write is exactly the missing-fsync, torn-on-crash path the
# store exists to retire. Add to the allowlist only for one-shot *report
# output* files (whose loss on crash is harmless) or test fixtures —
# never for state a later run reads back.
set -euo pipefail
cd "$(dirname "$0")/.."

# Files grandfathered for report/fixture writes.
ALLOWED='
crates/cli/src/commands.rs
crates/experiments/src/main.rs
crates/bench/src/bin/scan_baseline.rs
crates/bench/src/bin/crawl_baseline.rs
crates/bench/src/bin/features_baseline.rs
crates/bench/src/bin/phash_baseline.rs
'

fail=0
while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    file=${hit%%:*}
    if ! printf '%s' "$ALLOWED" | grep -qx "${file}"; then
        echo "fs_lint: direct filesystem write in ${hit}" >&2
        echo "  durable state belongs behind squatphi-durability's DurableStore/Vfs" >&2
        echo "  (fsynced atomic generations); see DESIGN.md §16 before bypassing it." >&2
        fail=1
    fi
done <<EOF
$(grep -rn --include='*.rs' -E 'fs::(write|rename)\(' crates | grep -v '^crates/durability/' || true)
EOF

if [ "$fail" -eq 0 ]; then
    echo "fs_lint: OK (no new fs::write/fs::rename outside crates/durability)"
fi
exit "$fail"
