#!/usr/bin/env bash
# Fails when a new ad-hoc `*Metrics` struct appears outside
# crates/telemetry. All metrics belong in the telemetry registry; the
# structs below predate it and survive only as typed views over registry
# exports (DESIGN.md §14). Add to the allowlist only if the new struct is
# such a view — never for a struct that owns its own counters and JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

# path:struct pairs that are grandfathered telemetry views.
ALLOWED='
crates/crawler/src/metrics.rs:TransportMetrics
crates/ml/src/metrics.rs:Metrics
crates/dnsdb/src/scan.rs:WorkerMetrics
crates/dnsdb/src/scan.rs:ScanMetrics
crates/core/src/artifact.rs:AnalysisMetrics
crates/core/src/stream.rs:WatchMetrics
'

fail=0
while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    file=${hit%%:*}
    name=$(printf '%s' "$hit" | sed -E 's/.*struct ([A-Za-z0-9_]*Metrics).*/\1/')
    if ! printf '%s' "$ALLOWED" | grep -qx "${file}:${name}"; then
        echo "metrics_lint: new metrics struct ${name} in ${file}" >&2
        echo "  metrics belong in squatphi-telemetry (registry + invariants);" >&2
        echo "  see DESIGN.md §14 before adding a parallel surface." >&2
        fail=1
    fi
done <<EOF
$(grep -rn --include='*.rs' -E 'struct [A-Za-z0-9_]*Metrics( |\{|<)' crates | grep -v '^crates/telemetry/')
EOF

if [ "$fail" -eq 0 ]; then
    echo "metrics_lint: OK (no new *Metrics structs outside crates/telemetry)"
fi
exit "$fail"
