//! Evasion audit: reproduce the paper's §4.2 measurement on a handful of
//! generated phishing pages — layout obfuscation via perceptual hashing,
//! string obfuscation via HTML text extraction, code obfuscation via the
//! JavaScript indicator scan — and render one page as ASCII art.
//!
//! ```sh
//! cargo run --example evasion_audit
//! ```

use squatphi::artifact::PageAnalyzer;
use squatphi::evasion::{measure, EvasionSummary};
use squatphi_render::ascii;
use squatphi_squat::BrandRegistry;
use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
use squatphi_web::pages;

fn main() {
    let registry = BrandRegistry::with_size(30);
    let brand = registry.by_label("paypal").expect("paypal in registry");
    let brand_page = pages::brand_login_page(brand);
    // All measurements share one analyzer, so the brand page is rendered
    // and hashed exactly once across the whole audit.
    let analyzer = PageAnalyzer::new();

    println!("evasion audit for {} phishing variants\n", brand.label);
    println!(
        "{:<10} {:<8} {:<8} {:>8} {:>8} {:>6}",
        "scam", "stringO", "codeO", "layout", "distance", "string"
    );

    let mut measurements = Vec::new();
    for (i, scam) in ScamKind::ALL.iter().enumerate() {
        for layout in 0..4u8 {
            let profile = PhishingProfile {
                brand: brand.id,
                scam: *scam,
                layout_obfuscation: layout,
                string_obfuscation: i % 2 == 0,
                code_obfuscation: i % 3 == 0,
                cloaking: Cloaking::None,
                lifetime: LifetimePattern::Stable,
            };
            let html = pages::phishing_page(brand, &profile, "paypal-cash.com", i as u64);
            let m = measure(&analyzer, &html, &brand_page, &brand.label);
            println!(
                "{:<10} {:<8} {:<8} {:>8} {:>8} {:>6}",
                format!("{scam:?}"),
                profile.string_obfuscation,
                profile.code_obfuscation,
                layout,
                m.layout_distance,
                m.string_obfuscated,
            );
            measurements.push(m);
        }
    }

    let summary = EvasionSummary::from_measurements(&measurements);
    println!(
        "\nsummary over {} pages: layout {:.1} ± {:.1}, string obf {:.0}%, code obf {:.0}%",
        summary.count,
        summary.layout_mean,
        summary.layout_std,
        summary.string_rate * 100.0,
        summary.code_rate * 100.0
    );

    // Render one heavily-obfuscated page the way Figure 14 shows
    // screenshots.
    let profile = PhishingProfile {
        brand: brand.id,
        scam: ScamKind::FakeLogin,
        layout_obfuscation: 2,
        string_obfuscation: true,
        code_obfuscation: false,
        cloaking: Cloaking::None,
        lifetime: LifetimePattern::Stable,
    };
    let html = pages::phishing_page(brand, &profile, "paypal-cash.com", 3);
    let bmp = analyzer.screenshot(&html);
    println!("\nscreenshot of paypal-cash.com (string-obfuscated variant):\n");
    println!("{}", ascii::to_ascii(&bmp, 76));
    println!("\nanalysis: {}", analyzer.metrics().report_line());
}
