//! Active probing over real sockets: the ActiveDNS-style pipeline.
//!
//! ```sh
//! cargo run --release --example active_probe
//! ```
//!
//! 1. spawns an authoritative UDP DNS server serving a synthetic zone,
//! 2. probes squatting candidates for a brand concurrently over UDP,
//! 3. spawns the virtual-host HTTP server fronting the web world,
//! 4. fetches the resolving domains over TCP with the web and mobile
//!    user-agent profiles, reporting what each host served.

use squatphi_dnsdb::probe::{probe_all, AuthServer, ProbeResult, ProberConfig};
use squatphi_http::{fetch, ua, FetchOutcome, WorldServer};
use squatphi_squat::gen::{generate_all, GenBudget};
use squatphi_squat::BrandRegistry;
use squatphi_web::{WebWorld, WorldConfig};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let registry = BrandRegistry::with_size(30);
    let brand = registry.by_label("uber").expect("uber in registry");

    // Candidate squatting domains for the brand.
    let budget = GenBudget {
        homograph: 10,
        bits: 10,
        typo: 15,
        combo: 15,
        wrong_tld: 5,
    };
    let candidates: Vec<String> = generate_all(brand, budget)
        .into_iter()
        .map(|c| c.domain.as_str().to_string())
        .collect();
    println!(
        "probing {} candidates for {}",
        candidates.len(),
        brand.label
    );

    // A zone where roughly a third of the candidates are registered.
    let mut zone: HashMap<String, Ipv4Addr> = HashMap::new();
    let mut registered = Vec::new();
    for (i, d) in candidates.iter().enumerate() {
        if i % 3 == 0 {
            zone.insert(d.clone(), Ipv4Addr::new(198, 51, 100, (i % 250) as u8));
            registered.push(d.clone());
        }
    }
    let dns = AuthServer::spawn(zone).await?;

    let results = probe_all(dns.addr(), &candidates, &ProberConfig::default()).await?;
    let resolved: Vec<&String> = candidates
        .iter()
        .zip(&results)
        .filter(|(_, r)| matches!(r, ProbeResult::Resolved(_)))
        .map(|(d, _)| d)
        .collect();
    let nx = results
        .iter()
        .filter(|r| matches!(r, ProbeResult::NxDomain))
        .count();
    println!("DNS: {} resolved, {} NXDOMAIN", resolved.len(), nx);
    dns.shutdown().await;

    // Build a tiny web world over the registered candidates and serve it
    // over real TCP.
    let squats: Vec<_> = registered
        .iter()
        .enumerate()
        .map(|(i, d)| {
            (
                d.clone(),
                brand.id,
                squatphi_squat::SquatType::Combo,
                Ipv4Addr::new(198, 51, 100, i as u8),
            )
        })
        .collect();
    let world = Arc::new(WebWorld::build(
        &squats,
        &registry,
        &WorldConfig {
            phishing_domains: 4,
            seed: 9,
            ..WorldConfig::default()
        },
    ));
    let http = WorldServer::spawn(world, 0).await?;

    println!("\nHTTP crawl of resolving candidates:");
    for d in resolved.iter().take(12) {
        for (label, agent) in [("web", ua::WEB), ("mobile", ua::MOBILE)] {
            match fetch(http.addr(), d, agent, 5).await {
                Ok(FetchOutcome::Page {
                    body, redirects, ..
                }) => {
                    let kind = if body.contains("type=\"password\"") {
                        "login form"
                    } else if !redirects.is_empty() {
                        "redirect chain"
                    } else if body.is_empty() {
                        "off-world redirect"
                    } else {
                        "content page"
                    };
                    println!("  {d:<28} [{label:<6}] {kind}");
                }
                Ok(FetchOutcome::Unreachable) => println!("  {d:<28} [{label:<6}] dead"),
                Ok(FetchOutcome::TooManyRedirects) => {
                    println!("  {d:<28} [{label:<6}] redirect loop")
                }
                Err(e) => println!("  {d:<28} [{label:<6}] error: {e}"),
            }
        }
    }
    http.shutdown().await;
    Ok(())
}
