//! Quickstart: the SquatPhi API in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks the core objects: the brand registry, squatting candidate
//! generation, the reverse detector, and the phishing classifier's
//! feature extractor.

use squatphi::FeatureExtractor;
use squatphi_domain::{idna, DomainName};
use squatphi_squat::gen::{generate_all, GenBudget};
use squatphi_squat::{BrandRegistry, SquatDetector};

fn main() {
    // 1. The paper's 702 monitored brands.
    let registry = BrandRegistry::paper();
    println!(
        "registry: {} brands ({} PhishTank targets)",
        registry.len(),
        registry.phishtank_targets().count()
    );

    // 2. Generate squatting candidates for one brand (the DNSTwist
    //    direction).
    let facebook = registry
        .by_label("facebook")
        .expect("facebook is a named brand");
    let budget = GenBudget {
        homograph: 5,
        bits: 3,
        typo: 5,
        combo: 5,
        wrong_tld: 3,
    };
    println!("\nsample candidates for {}:", facebook.domain);
    for c in generate_all(facebook, budget) {
        let display = if c.domain.is_idn() {
            format!(
                "{} (shown as {})",
                c.domain,
                idna::to_unicode(c.domain.as_str())
            )
        } else {
            c.domain.to_string()
        };
        println!("  {:<46} {}", display, c.squat_type);
    }

    // 3. Classify arbitrary domains (the scan direction).
    let detector = SquatDetector::new(&registry);
    println!("\nclassification:");
    for host in [
        "faceb00k.pw",
        "xn--fcebook-8va.com",
        "goofle.com.ua",
        "go-uberfreight.com",
        "facebook.audi",
        "facebook.com",
        "winterpillow.net",
    ] {
        let domain = DomainName::parse(host).expect("valid domain");
        match detector.classify(&domain) {
            Some(m) => println!(
                "  {:<24} squatting ({}) on {}",
                host,
                m.squat_type,
                registry.get(m.brand).expect("valid brand id").label
            ),
            None => println!("  {host:<24} not squatting"),
        }
    }

    // 4. Extract classifier features from a page (OCR + lexical + form).
    let extractor = FeatureExtractor::new(&registry);
    let page = r#"
        <html><head><title>paypal login</title></head><body>
        <h1>paypal</h1>
        <p>please sign in to continue</p>
        <form action="http://paypal-cash.com/login.php">
          <input type="email" placeholder="email or phone">
          <input type="password" placeholder="password">
          <button type="submit">log in</button>
        </form></body></html>"#;
    let features = extractor.extract(page);
    println!(
        "\nfeature vector: {} non-zero dims of {} (password inputs: {})",
        features.nnz(),
        extractor.dim(),
        features.get(
            extractor
                .space()
                .numeric("password_inputs")
                .expect("numeric dim")
        ),
    );
}
