//! Brand monitor: the deployment mode the paper's §7 sketches — a single
//! brand (say PayPal) runs a dedicated scanner over newly-seen DNS names,
//! crawls the squatting hits, and classifies their pages.
//!
//! ```sh
//! cargo run --release --example brand_monitor [brand-label]
//! ```

use squatphi::train::{build_ground_truth, fit_final_model};
use squatphi::FeatureExtractor;
use squatphi_crawler::{crawl_all, CrawlConfig, InProcessTransport};
use squatphi_dnsdb::{scan, synth, SnapshotConfig};
use squatphi_feeds::{FeedConfig, GroundTruthFeed};
use squatphi_ml::Classifier;
use squatphi_squat::{BrandRegistry, SquatDetector};
use squatphi_web::{Device, WebWorld, WorldConfig};
use std::sync::Arc;

fn main() {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "paypal".to_string());
    let registry = BrandRegistry::with_size(120);
    let Some(brand) = registry.by_label(&target) else {
        eprintln!("unknown brand {target:?} — try paypal, facebook, google, uber …");
        std::process::exit(2);
    };
    println!("monitoring brand {} ({})", brand.label, brand.domain);

    // A day's worth of newly-observed DNS names (synthetic).
    let snapshot_cfg = SnapshotConfig {
        benign_records: 60_000,
        squatting_records: 1_200,
        subdomain_fraction: 0.2,
        seed: 42,
    };
    let (store, _) = synth::generate(&snapshot_cfg, &registry);
    let detector = SquatDetector::new(&registry);
    let outcome = scan(&store, &registry, &detector, 8);
    let mine: Vec<_> = outcome
        .matches
        .iter()
        .filter(|m| m.brand == brand.id)
        .collect();
    println!(
        "scanned {} records: {} squatting domains total, {} targeting {}",
        outcome.scanned,
        outcome.total_matches(),
        mine.len(),
        brand.label
    );

    // Crawl only this brand's squats.
    let squats: Vec<_> = mine
        .iter()
        .map(|m| (m.domain.registrable(), m.brand, m.squat_type, m.ip))
        .collect();
    let world = Arc::new(WebWorld::build(
        &squats,
        &registry,
        &WorldConfig {
            phishing_domains: 25,
            seed: 7,
            ..WorldConfig::default()
        },
    ));
    let jobs: Vec<_> = squats
        .iter()
        .map(|(d, b, t, _)| (d.clone(), *b, *t))
        .collect();
    let transport = InProcessTransport::new(world.clone());
    let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
    println!(
        "crawl: {} live web pages, {} live mobile pages",
        stats.web_live, stats.mobile_live
    );

    // Train the classifier on the public ground-truth feed, then sweep
    // this brand's pages.
    let feed = GroundTruthFeed::generate(
        &registry,
        &FeedConfig {
            total_urls: 1_500,
            seed: 3,
        },
    );
    let extractor = FeatureExtractor::new(&registry);
    let phishing: Vec<&str> = feed
        .entries
        .iter()
        .filter(|e| e.still_phishing)
        .map(|e| e.html.as_str())
        .collect();
    let benign: Vec<&str> = feed
        .entries
        .iter()
        .filter(|e| !e.still_phishing)
        .map(|e| e.html.as_str())
        .collect();
    let data = build_ground_truth(&extractor, &phishing, &benign, 8);
    let model = fit_final_model(&data, 11);

    println!("\nflagged pages for {}:", brand.label);
    let mut flagged = 0;
    for r in &records {
        for (device, cap) in [(Device::Web, &r.web), (Device::Mobile, &r.mobile)] {
            let Some(cap) = cap else { continue };
            if cap.html.is_empty() {
                continue;
            }
            let score = model.score(&extractor.extract(&cap.html));
            if score >= 0.5 {
                flagged += 1;
                println!(
                    "  {:<40} {:?}  score {:.2}  ({})",
                    r.domain, device, score, r.squat_type
                );
            }
        }
    }
    if flagged == 0 {
        println!("  none — the squatting population for this brand is currently benign");
    }
}
