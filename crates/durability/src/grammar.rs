//! Shared clause grammar for seeded fault plans.
//!
//! Both fault surfaces in the workspace — the pipeline-level
//! `PipelineFaultPlan` in `squatphi::fault` (`CLASS-permille-P`) and the
//! disk-level [`DiskFaultPlan`](crate::plan) (`torn-at-byte-N`, …) — use
//! the same spec shape: a comma-separated list of `kind-N` clauses where
//! `kind` is a dashed identifier and `N` a trailing decimal. This module
//! is the one parser for that shape, so the two grammars cannot drift;
//! plan-specific kind validation stays with each plan, but the
//! tokenizing, the `none` escape hatch, and the error wording that names
//! the offending clause live here.

/// One parsed `kind-N` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// The clause exactly as written (trimmed), for error messages.
    pub text: String,
    /// Everything before the final `-` (e.g. `panic-permille`,
    /// `crash-at-write`).
    pub kind: String,
    /// The trailing decimal value.
    pub value: u64,
}

/// Splits `spec` into [`Clause`]s.
///
/// `label` names the grammar in error messages (`"fault"` for the
/// pipeline plan, `"disk-fault"` for the disk plan) so a bad clause in a
/// combined CLI invocation is attributable. An empty spec or the literal
/// `none` parses to no clauses.
pub fn parse_clauses(label: &str, spec: &str) -> Result<Vec<Clause>, String> {
    let spec = spec.trim();
    if spec.is_empty() || spec == "none" {
        return Ok(Vec::new());
    }
    let mut clauses = Vec::new();
    for raw in spec.split(',') {
        let text = raw.trim();
        if text.is_empty() {
            return Err(format!("{label} clause {raw:?}: empty clause"));
        }
        let Some((kind, number)) = text.rsplit_once('-') else {
            return Err(format!(
                "{label} clause {text:?}: expected `kind-N` with a trailing decimal value"
            ));
        };
        if kind.is_empty() {
            return Err(format!(
                "{label} clause {text:?}: missing clause kind before the value"
            ));
        }
        let value = number.parse::<u64>().map_err(|_| {
            format!("{label} clause {text:?}: {number:?} after the last `-` is not a number")
        })?;
        clauses.push(Clause {
            text: text.to_string(),
            kind: kind.to_string(),
            value,
        });
    }
    Ok(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_none_parse_to_no_clauses() {
        assert_eq!(parse_clauses("fault", "").unwrap(), Vec::new());
        assert_eq!(parse_clauses("fault", "none").unwrap(), Vec::new());
        assert_eq!(parse_clauses("fault", "  none  ").unwrap(), Vec::new());
    }

    #[test]
    fn splits_kind_and_value_at_the_last_dash() {
        let clauses = parse_clauses("disk-fault", "crash-at-write-3, torn-at-byte-16").unwrap();
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].kind, "crash-at-write");
        assert_eq!(clauses[0].value, 3);
        assert_eq!(clauses[1].kind, "torn-at-byte");
        assert_eq!(clauses[1].value, 16);
    }

    #[test]
    fn errors_name_the_offending_clause_and_grammar() {
        let err = parse_clauses("disk-fault", "torn-at-byte-x").unwrap_err();
        assert!(err.contains("disk-fault clause"), "{err}");
        assert!(err.contains("torn-at-byte-x"), "{err}");
        let err = parse_clauses("fault", "panic-permille-10,,flaky-permille-5").unwrap_err();
        assert!(err.contains("empty clause"), "{err}");
        let err = parse_clauses("fault", "-10").unwrap_err();
        assert!(err.contains("missing clause kind"), "{err}");
        let err = parse_clauses("fault", "justaword").unwrap_err();
        assert!(err.contains("expected `kind-N`"), "{err}");
    }
}
