//! Seeded disk-fault plans.
//!
//! A [`DiskFaultPlan`] describes how the fault filesystem
//! ([`FaultVfs`](crate::vfs::FaultVfs)) mangles durable writes. Like the
//! pipeline fault plans from PR 5, every decision is a pure function of
//! the seed and the write's identity (file name + per-store write
//! sequence number) — never of wall clock or thread interleaving — so a
//! plan replays identically across runs and thread counts.
//!
//! Grammar (comma-separated clauses, shared tokenizer in
//! [`grammar`](crate::grammar)):
//!
//! * `torn-at-byte-N` — every durable write is silently truncated to its
//!   first `N` bytes, modelling a torn sector / lost tail.
//! * `bitflip-permille-P` — each write independently draws; with
//!   probability `P/1000` one seeded bit of the written image is
//!   flipped, modelling bit rot between write and read-back.
//! * `enospc-after-N` — after `N` total bytes have been accepted the
//!   device is full: the prefix that still fits is written (as a real
//!   filesystem would) and the write fails with an `ENOSPC`-style error.
//! * `crash-at-write-K` — the process aborts at the `K`-th durable
//!   write (1-based). The exact crash point within the write is drawn
//!   from the seed: before any bytes land, mid-write with a torn
//!   temp-file prefix, or after the commit rename but before old
//!   generations are retired.

use crate::grammar::parse_clauses;

/// Where within the `K`-th durable write a [`crash-at-write`] plan
/// aborts the process.
///
/// [`crash-at-write`]: DiskFaultPlan::crash_at_write
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before any byte of the temp file reaches the filesystem.
    BeforeWrite,
    /// Mid-write: a seeded prefix of the temp file lands, then the
    /// process dies before the commit rename.
    MidWrite,
    /// After the commit rename durably lands but before the previous
    /// generations are retired.
    AfterCommit,
}

impl CrashPoint {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::BeforeWrite => "before-write",
            CrashPoint::MidWrite => "mid-write",
            CrashPoint::AfterCommit => "after-commit",
        }
    }
}

/// A seeded description of disk faults to inject under a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// Seed for every per-write draw.
    pub seed: u64,
    /// `torn-at-byte-N`: truncate every write to `N` bytes.
    pub torn_at_byte: Option<u64>,
    /// `bitflip-permille-P`: per-write probability (‰) of one flipped bit.
    pub bitflip_permille: u16,
    /// `enospc-after-N`: total byte budget before the device is full.
    pub enospc_after: Option<u64>,
    /// `crash-at-write-K`: abort the process at the `K`-th durable write.
    pub crash_at_write: Option<u64>,
}

impl Default for DiskFaultPlan {
    fn default() -> Self {
        DiskFaultPlan::none()
    }
}

const SALT_FLIP: u64 = 0xd15c_f11b;
const SALT_FLIP_POS: u64 = 0xd15c_f905;
const SALT_CRASH: u64 = 0xd15c_c4a5;
const SALT_TORN: u64 = 0xd15c_7042;

impl DiskFaultPlan {
    /// The empty plan: a store under it behaves exactly like one on the
    /// real filesystem.
    pub fn none() -> DiskFaultPlan {
        DiskFaultPlan {
            seed: 0,
            torn_at_byte: None,
            bitflip_permille: 0,
            enospc_after: None,
            crash_at_write: None,
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.torn_at_byte.is_none()
            && self.bitflip_permille == 0
            && self.enospc_after.is_none()
            && self.crash_at_write.is_none()
    }

    /// Returns the plan with its seed replaced.
    pub fn with_seed(mut self, seed: u64) -> DiskFaultPlan {
        self.seed = seed;
        self
    }

    /// Parses a comma-separated clause spec (see the module docs for the
    /// grammar). Empty or `none` parses to [`DiskFaultPlan::none`].
    /// Errors name the offending clause.
    pub fn parse(spec: &str) -> Result<DiskFaultPlan, String> {
        let mut plan = DiskFaultPlan::none();
        for clause in parse_clauses("disk-fault", spec)? {
            match clause.kind.as_str() {
                "torn-at-byte" => plan.torn_at_byte = Some(clause.value),
                "bitflip-permille" => {
                    if clause.value > 1000 {
                        return Err(format!(
                            "disk-fault clause {:?}: permille exceeds 1000",
                            clause.text
                        ));
                    }
                    plan.bitflip_permille = clause.value as u16;
                }
                "enospc-after" => plan.enospc_after = Some(clause.value),
                "crash-at-write" => {
                    if clause.value == 0 {
                        return Err(format!(
                            "disk-fault clause {:?}: write index is 1-based",
                            clause.text
                        ));
                    }
                    plan.crash_at_write = Some(clause.value);
                }
                other => {
                    return Err(format!(
                        "disk-fault clause {:?}: unknown kind {other:?} (expected torn-at-byte-N, \
                         bitflip-permille-N, enospc-after-N, or crash-at-write-K)",
                        clause.text
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Canonical clause list (stable order, `none` for the empty plan);
    /// `parse(canonical())` round-trips everything but the seed.
    pub fn canonical(&self) -> String {
        let mut clauses = Vec::new();
        if let Some(n) = self.torn_at_byte {
            clauses.push(format!("torn-at-byte-{n}"));
        }
        if self.bitflip_permille > 0 {
            clauses.push(format!("bitflip-permille-{}", self.bitflip_permille));
        }
        if let Some(n) = self.enospc_after {
            clauses.push(format!("enospc-after-{n}"));
        }
        if let Some(k) = self.crash_at_write {
            clauses.push(format!("crash-at-write-{k}"));
        }
        if clauses.is_empty() {
            "none".to_string()
        } else {
            clauses.join(",")
        }
    }

    // -- seeded decisions ---------------------------------------------------

    /// The bit position (into a `len`-byte image) to flip for write
    /// `seq` of `name`, if this write draws a flip.
    pub fn bitflip_for(&self, name: &str, seq: u64, len: usize) -> Option<usize> {
        if self.bitflip_permille == 0 || len == 0 {
            return None;
        }
        let key = format!("{name}#{seq}");
        if draw(self.seed, SALT_FLIP, &key) % 1000 >= self.bitflip_permille as u64 {
            return None;
        }
        Some((draw(self.seed, SALT_FLIP_POS, &key) % (len as u64 * 8)) as usize)
    }

    /// The crash point for durable write `seq`, if this is the write the
    /// plan aborts at.
    pub fn crash_point(&self, seq: u64) -> Option<CrashPoint> {
        if self.crash_at_write != Some(seq) {
            return None;
        }
        Some(match draw(self.seed, SALT_CRASH, &format!("{seq}")) % 3 {
            0 => CrashPoint::BeforeWrite,
            1 => CrashPoint::MidWrite,
            _ => CrashPoint::AfterCommit,
        })
    }

    /// The seeded torn-prefix length (`0..=len`) for a
    /// [`CrashPoint::MidWrite`] abort of write `seq`.
    pub fn crash_torn_prefix(&self, seq: u64, len: usize) -> usize {
        (draw(self.seed, SALT_TORN, &format!("{seq}")) % (len as u64 + 1)) as usize
    }
}

/// SplitMix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded draw that depends only on `(seed, salt, key)`.
fn draw(seed: u64, salt: u64, key: &str) -> u64 {
    let mut h = mix(seed ^ salt);
    for b in key.bytes() {
        h = mix(h ^ b as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_canonical() {
        for spec in [
            "none",
            "torn-at-byte-12",
            "bitflip-permille-250",
            "enospc-after-4096",
            "crash-at-write-3",
            "torn-at-byte-1,bitflip-permille-1000,enospc-after-0,crash-at-write-9",
        ] {
            let plan = DiskFaultPlan::parse(spec).unwrap();
            assert_eq!(plan.canonical(), spec);
            assert_eq!(DiskFaultPlan::parse(&plan.canonical()).unwrap(), plan);
        }
        assert!(DiskFaultPlan::parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_bad_clauses_by_name() {
        for (spec, needle) in [
            ("torn-at-byte-", "is not a number"),
            ("bitflip-permille-1001", "permille exceeds 1000"),
            ("crash-at-write-0", "1-based"),
            ("melt-cpu-5", "unknown kind"),
        ] {
            let err = DiskFaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
            assert!(err.contains("disk-fault clause"), "{spec}: {err}");
        }
    }

    #[test]
    fn draws_are_pure_functions_of_seed_and_key() {
        let plan = DiskFaultPlan::parse("bitflip-permille-500,crash-at-write-4")
            .unwrap()
            .with_seed(7);
        assert_eq!(
            plan.bitflip_for("scan", 1, 64),
            plan.bitflip_for("scan", 1, 64)
        );
        assert_eq!(plan.crash_point(4), plan.crash_point(4));
        assert_eq!(plan.crash_point(3), None);
        let reseeded = plan.with_seed(8);
        // Different seeds must be able to disagree somewhere in a small key
        // space; scan a few writes for a divergence.
        let diverges = (0..64).any(|seq| {
            plan.bitflip_for("watch", seq, 128) != reseeded.bitflip_for("watch", seq, 128)
        });
        assert!(diverges, "seed does not influence the draws");
    }

    #[test]
    fn bitflip_position_is_in_range() {
        let plan = DiskFaultPlan::parse("bitflip-permille-1000")
            .unwrap()
            .with_seed(3);
        for seq in 0..200 {
            let pos = plan
                .bitflip_for("state", seq, 33)
                .expect("permille 1000 always flips");
            assert!(pos < 33 * 8);
        }
        assert_eq!(plan.bitflip_for("state", 1, 0), None);
    }

    #[test]
    fn crash_points_cover_all_three_kinds_across_seeds() {
        let mut seen = [false; 3];
        for seed in 0..64u64 {
            let plan = DiskFaultPlan::parse("crash-at-write-1")
                .unwrap()
                .with_seed(seed);
            match plan.crash_point(1).unwrap() {
                CrashPoint::BeforeWrite => seen[0] = true,
                CrashPoint::MidWrite => seen[1] = true,
                CrashPoint::AfterCommit => seen[2] = true,
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "crash sub-points not all reachable: {seen:?}"
        );
    }
}
