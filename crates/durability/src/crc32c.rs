//! Hand-rolled CRC-32C (Castagnoli), the checksum guarding every
//! [`StateFile`](crate::store) body.
//!
//! Polynomial `0x1EDC6F41` (reflected form `0x82F63B78`), init and final
//! XOR `0xFFFF_FFFF` — the same parameters as the SSE4.2 `crc32`
//! instruction and RFC 3720 (iSCSI), chosen over CRC-32/zlib for its
//! better error-detection properties on short records. Table-driven,
//! one 256-entry table built at compile time; zero dependencies like the
//! rest of the workspace.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32C of `bytes` in one shot.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3720 §B.4 / crc32c reference vectors.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    /// Every single-bit flip in a small record changes the checksum — the
    /// property the corruption classifier leans on.
    #[test]
    fn single_bit_flips_always_detected() {
        let base = b"squatphi durable state record 0123456789";
        let crc = crc32c(base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut mutated = base.to_vec();
                mutated[i] ^= 1 << bit;
                assert_ne!(
                    crc32c(&mutated),
                    crc,
                    "flip at byte {i} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn truncations_always_detected() {
        let base = b"squatphi durable state record 0123456789";
        let crc = crc32c(base);
        for end in 0..base.len() {
            assert_ne!(crc32c(&base[..end]), crc, "truncation to {end} undetected");
        }
    }
}
