//! Checksummed, generational durable-state layer for the SquatPhi
//! workspace, plus the fault machinery that proves it.
//!
//! The paper's watch daemon runs for weeks; a crash that corrupts the
//! watermark checkpoint silently re-opens exactly the blacklist-lag
//! detection gap the system exists to close. This crate is the one
//! place persisted state touches a disk:
//!
//! * [`DurableStore`] — named states as monotonically numbered
//!   generations (`<name>.g<N>.ckpt`, latest two kept), each a
//!   `StateFile` with a hand-rolled CRC32C over a protected
//!   version/config/generation header and the body. Writes are
//!   tmp + fsync + rename + dir-fsync; reads walk generations
//!   newest-first, classify every file ([`ReadClass`]) and fall back to
//!   the last good generation, resolving to a [`LoadOutcome`] the
//!   [`DurabilityCounters`] ledger accounts for exactly.
//! * [`Vfs`] — the filesystem seam: [`RealVfs`] in production,
//!   [`FaultVfs`] under a seeded [`DiskFaultPlan`]
//!   (`torn-at-byte-N / bitflip-permille-N / enospc-after-N /
//!   crash-at-write-K`) in tests and the chaos CLI flags. Crash aborts
//!   exit with [`CRASH_EXIT_CODE`]; `ci/crash_matrix.sh` sweeps the
//!   write index `K` and asserts resume is byte-identical.
//! * [`grammar`] — the clause parser shared with the pipeline fault
//!   plans in `squatphi::fault`, so the two fault grammars cannot
//!   drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32c;
pub mod grammar;
pub mod plan;
pub mod store;
pub mod vfs;

pub use crc32c::crc32c;
pub use plan::{CrashPoint, DiskFaultPlan};
pub use store::{
    render_classes, DurabilityCounters, DurabilityStats, DurableStore, GenClass, LoadOutcome,
    ReadClass, StoreError, STATE_VERSION,
};
pub use vfs::{install_crash_hook, FaultVfs, RealVfs, Vfs, CRASH_EXIT_CODE};
