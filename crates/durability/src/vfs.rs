//! The filesystem seam the durable store writes through.
//!
//! [`DurableStore`](crate::store::DurableStore) never touches `std::fs`
//! directly; it goes through a [`Vfs`]. Production uses [`RealVfs`],
//! whose `write` fsyncs the file and whose `rename` fsyncs the parent
//! directory — the two syncs the old `write_atomic` helper skipped, and
//! without which a rename is not crash-safe on real filesystems. Tests
//! and the chaos CLI flags wrap it in [`FaultVfs`], which applies a
//! seeded [`DiskFaultPlan`] to every durable write: torn tails, bit rot,
//! a full device, or a process abort at the `K`-th write.
//!
//! The crash abort is observable two ways: by default the process exits
//! with [`CRASH_EXIT_CODE`] (what `ci/crash_matrix.sh` sweeps for);
//! in-process tests install a panicking hook via [`install_crash_hook`]
//! and catch the unwind instead.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::plan::{CrashPoint, DiskFaultPlan};

/// Process exit code of a simulated `crash-at-write-K` abort.
pub const CRASH_EXIT_CODE: i32 = 86;

/// Minimal filesystem surface needed by the durable store.
pub trait Vfs: Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads a whole file (`NotFound` if absent).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the file names directly under `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Durably writes `bytes` at `path` (create-or-truncate, then fsync).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to`, then fsyncs the parent
    /// directory so the rename itself survives a crash.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The production filesystem: `std::fs` plus the missing fsyncs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)?;
        // Persist the directory entry: without this the rename can vanish
        // on power loss even though both files were synced. Opening a
        // directory read-only works on POSIX; where it does not, skip the
        // sync rather than fail the rename.
        if let Some(parent) = to.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                dir.sync_all()?;
            }
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// A process-global replacement for the simulated-crash `exit(86)`.
pub type CrashHook = Box<dyn Fn(&str) + Send + Sync>;

static CRASH_HOOK: OnceLock<CrashHook> = OnceLock::new();

/// Installs a process-global hook run instead of `exit(86)` when a
/// `crash-at-write-K` plan fires. In-process tests install a hook that
/// panics (with a payload they recognize) and catch the unwind; the
/// first installation wins and later calls are ignored.
pub fn install_crash_hook(hook: CrashHook) {
    let _ = CRASH_HOOK.set(hook);
}

fn simulated_crash(context: &str) -> ! {
    if let Some(hook) = CRASH_HOOK.get() {
        hook(context);
    }
    eprintln!("[durability] simulated crash: {context}");
    std::process::exit(CRASH_EXIT_CODE);
}

/// A [`Vfs`] decorator that applies a [`DiskFaultPlan`] to every durable
/// write. Reads, listings and removals pass through untouched — read-side
/// corruption is modelled by mutating files directly (the conformance
/// oracle's job), not by lying on the read path.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    plan: DiskFaultPlan,
    /// Durable-write sequence number, 1-based, per store instance.
    writes: AtomicU64,
    /// Total bytes accepted, for the `enospc-after-N` budget.
    accepted: AtomicU64,
    /// Set when the current write's crash point is [`CrashPoint::AfterCommit`]:
    /// the following commit rename completes, then the process dies.
    crash_after_rename: AtomicBool,
}

impl FaultVfs {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: DiskFaultPlan) -> FaultVfs {
        FaultVfs {
            inner,
            plan,
            writes: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            crash_after_rename: AtomicBool::new(false),
        }
    }

    /// Durable writes issued so far through this instance.
    pub fn write_count(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    fn file_name(path: &Path) -> String {
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string()
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let seq = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        let name = Self::file_name(path);

        match self.plan.crash_point(seq) {
            Some(CrashPoint::BeforeWrite) => {
                simulated_crash(&format!("write {seq} ({name}): before-write"));
            }
            Some(CrashPoint::MidWrite) => {
                let torn = self.plan.crash_torn_prefix(seq, bytes.len());
                let _ = self.inner.write(path, &bytes[..torn]);
                simulated_crash(&format!(
                    "write {seq} ({name}): mid-write after {torn} bytes"
                ));
            }
            Some(CrashPoint::AfterCommit) => {
                self.crash_after_rename.store(true, Ordering::SeqCst);
            }
            None => {}
        }

        let mut image = bytes.to_vec();
        if let Some(n) = self.plan.torn_at_byte {
            image.truncate(n as usize);
        }
        if let Some(bit) = self.plan.bitflip_for(&name, seq, image.len()) {
            image[bit / 8] ^= 1 << (bit % 8);
        }

        if let Some(budget) = self.plan.enospc_after {
            let before = self
                .accepted
                .fetch_add(image.len() as u64, Ordering::SeqCst);
            let allowed = budget.saturating_sub(before) as usize;
            if allowed < image.len() {
                // A real full disk persists the prefix that fit before
                // failing; model that so readers face a torn file too.
                let _ = self.inner.write(path, &image[..allowed]);
                return Err(io::Error::other(format!(
                    "synthetic ENOSPC: write {seq} ({name}) of {} bytes exceeds the \
                     {budget}-byte device budget",
                    image.len()
                )));
            }
        }

        self.inner.write(path, &image)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.crash_after_rename.swap(false, Ordering::SeqCst) {
            self.inner.rename(from, to)?;
            simulated_crash(&format!(
                "commit of {}: after-commit, before retire",
                Self::file_name(to)
            ));
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}
