//! The generational durable store and its `StateFile` codec.
//!
//! Every persisted state in the workspace (pipeline stage checkpoints,
//! the watch watermark) routes through a [`DurableStore`]. A state is a
//! named sequence of **generations** on disk — `<name>.g<N>.ckpt` with
//! monotonically increasing `N` — of which the latest two are kept.
//! Each generation is a self-verifying `StateFile`:
//!
//! ```text
//! squatphi-state crc32c=<8 hex> len=<decimal>\n   ← unprotected header
//! v<version> config=<16 hex> gen=<N>\n            ┐ protected region
//! <body bytes>                                    ┘ (crc32c over both)
//! ```
//!
//! The CRC covers the version/config/generation line *and* the body, so
//! a single flipped bit anywhere below the first newline is a checksum
//! mismatch rather than a silently different config hash. Writes are
//! tmp-file + fsync + rename + parent-dir fsync through the
//! [`Vfs`](crate::vfs::Vfs) seam, then older generations are retired.
//!
//! Reads walk generations newest-first, classifying each file
//! ([`ReadClass`]) and falling back until a generation verifies and
//! decodes. Every load resolves to exactly one [`LoadOutcome`], and the
//! [`DurabilityCounters`] ledger records both the per-generation classes
//! and the per-load outcomes, with the conservation identity
//! `reads == valid + recovered + recomputed + unrecoverable` enforced
//! declaratively by `squatphi_telemetry::invariants::durability_invariants`.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::crc32c::crc32c;
use crate::vfs::{RealVfs, Vfs};

/// `StateFile` format version; bumping it invalidates (as
/// [`ReadClass::StaleConfig`]) every existing generation.
pub const STATE_VERSION: u64 = 1;

const MAGIC: &str = "squatphi-state";
const SUFFIX: &str = ".ckpt";

/// What the reader concluded about one generation file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadClass {
    /// Checksum, header and codec all verified.
    Valid,
    /// Structurally sound, but written by a different config or format
    /// version — honest invalidation, not corruption.
    StaleConfig,
    /// The unprotected header line is absent or malformed.
    CorruptHeader,
    /// The protected region fails its checksum, has trailing garbage, or
    /// does not decode.
    CorruptBody,
    /// The file ends before `len` protected bytes — a torn write.
    Torn,
    /// No generation file exists (or one vanished between list and read).
    Missing,
}

impl ReadClass {
    /// Stable snake_case name (telemetry leaf and report wording).
    pub fn name(&self) -> &'static str {
        match self {
            ReadClass::Valid => "valid",
            ReadClass::StaleConfig => "stale_config",
            ReadClass::CorruptHeader => "corrupt_header",
            ReadClass::CorruptBody => "corrupt_body",
            ReadClass::Torn => "torn",
            ReadClass::Missing => "missing",
        }
    }

    /// Whether this class means bytes were lost or mangled (as opposed to
    /// an honest cold start or config change).
    pub fn is_damage(&self) -> bool {
        matches!(
            self,
            ReadClass::CorruptHeader | ReadClass::CorruptBody | ReadClass::Torn
        )
    }
}

/// One skipped generation and why it was skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenClass {
    /// The generation number from the file name.
    pub generation: u64,
    /// How the reader classified it.
    pub class: ReadClass,
}

impl fmt::Display for GenClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{} {}", self.generation, self.class.name())
    }
}

/// Renders a skipped-generation list for reports: `g4 torn, g3 corrupt_body`.
pub fn render_classes(classes: &[GenClass]) -> String {
    classes
        .iter()
        .map(GenClass::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// How one [`DurableStore::load_with`] call resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome<T> {
    /// No generation files exist: a cold start.
    Missing,
    /// The newest generation verified and decoded.
    Valid(T),
    /// The newest generation(s) were damaged; an older one verified.
    Recovered {
        /// The decoded state.
        value: T,
        /// The generation that verified.
        generation: u64,
        /// The newer generations that were skipped, newest first.
        skipped: Vec<GenClass>,
    },
    /// The newest readable generation belongs to a different config or
    /// format version — recompute, nothing was lost.
    Stale {
        /// Classification of every generation inspected, newest first.
        classes: Vec<GenClass>,
    },
    /// Generations exist but none verified for this config: state was
    /// durably written and has been lost. Callers resuming from this
    /// store should surface a structured error, not silently recompute.
    Unrecoverable {
        /// Classification of every generation inspected, newest first.
        classes: Vec<GenClass>,
    },
}

/// A store-level I/O failure (distinct from corruption, which the
/// classifier absorbs into [`LoadOutcome`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "durable store io at {path}: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Parses exactly `digits` lowercase hex digits (rejecting uppercase,
/// signs and whitespace, which `from_str_radix` would let through).
fn parse_hex_lower(s: &str, digits: usize) -> Option<u64> {
    if s.len() != digits
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Parses a bare decimal (no sign, no leading `+` that `parse` accepts).
fn parse_decimal(s: &str) -> Option<u64> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

fn io_err(path: &Path, err: io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: err.to_string(),
    }
}

/// Monotonic fault/outcome ledger for one store (shared, atomic).
#[derive(Debug, Default)]
pub struct DurabilityCounters {
    reads: AtomicU64,
    valid: AtomicU64,
    recovered: AtomicU64,
    recomputed: AtomicU64,
    unrecoverable: AtomicU64,
    writes: AtomicU64,
    retired: AtomicU64,
    class_valid: AtomicU64,
    class_stale_config: AtomicU64,
    class_corrupt_header: AtomicU64,
    class_corrupt_body: AtomicU64,
    class_torn: AtomicU64,
    class_missing: AtomicU64,
}

impl DurabilityCounters {
    fn note_class(&self, class: ReadClass) {
        let cell = match class {
            ReadClass::Valid => &self.class_valid,
            ReadClass::StaleConfig => &self.class_stale_config,
            ReadClass::CorruptHeader => &self.class_corrupt_header,
            ReadClass::CorruptBody => &self.class_corrupt_body,
            ReadClass::Torn => &self.class_torn,
            ReadClass::Missing => &self.class_missing,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the ledger.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            reads: self.reads.load(Ordering::Relaxed),
            valid: self.valid.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            recomputed: self.recomputed.load(Ordering::Relaxed),
            unrecoverable: self.unrecoverable.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            class_valid: self.class_valid.load(Ordering::Relaxed),
            class_stale_config: self.class_stale_config.load(Ordering::Relaxed),
            class_corrupt_header: self.class_corrupt_header.load(Ordering::Relaxed),
            class_corrupt_body: self.class_corrupt_body.load(Ordering::Relaxed),
            class_torn: self.class_torn.load(Ordering::Relaxed),
            class_missing: self.class_missing.load(Ordering::Relaxed),
        }
    }
}

/// Plain snapshot of a [`DurabilityCounters`] ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// `load_with` calls.
    pub reads: u64,
    /// Loads satisfied by the newest generation.
    pub valid: u64,
    /// Loads satisfied by an older generation after skipping damage.
    pub recovered: u64,
    /// Loads that resolved to recompute (cold start or stale config).
    pub recomputed: u64,
    /// Loads where every generation was damaged.
    pub unrecoverable: u64,
    /// Committed durable writes (`save` calls that renamed into place).
    pub writes: u64,
    /// Old generation files retired after a commit.
    pub retired: u64,
    /// Per-generation classifications (one per file inspected).
    pub class_valid: u64,
    /// See [`ReadClass::StaleConfig`].
    pub class_stale_config: u64,
    /// See [`ReadClass::CorruptHeader`].
    pub class_corrupt_header: u64,
    /// See [`ReadClass::CorruptBody`].
    pub class_corrupt_body: u64,
    /// See [`ReadClass::Torn`].
    pub class_torn: u64,
    /// See [`ReadClass::Missing`].
    pub class_missing: u64,
}

impl DurabilityStats {
    /// Exports the ledger under `scope` (canonically `durability.`):
    /// outcome counters at the top level, per-generation classes under
    /// `class.`.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        scope.set_u64("reads", self.reads);
        scope.set_u64("valid", self.valid);
        scope.set_u64("recovered", self.recovered);
        scope.set_u64("recomputed", self.recomputed);
        scope.set_u64("unrecoverable", self.unrecoverable);
        scope.set_u64("writes", self.writes);
        scope.set_u64("retired", self.retired);
        let class = scope.scope("class");
        class.set_u64("valid", self.class_valid);
        class.set_u64("stale_config", self.class_stale_config);
        class.set_u64("corrupt_header", self.class_corrupt_header);
        class.set_u64("corrupt_body", self.class_corrupt_body);
        class.set_u64("torn", self.class_torn);
        class.set_u64("missing", self.class_missing);
    }

    /// Whether the outcome ledger conserves:
    /// `reads == valid + recovered + recomputed + unrecoverable`.
    pub fn reconciles(&self) -> bool {
        self.reads == self.valid + self.recovered + self.recomputed + self.unrecoverable
    }

    /// One-line human report.
    pub fn report_line(&self) -> String {
        format!(
            "{} writes ({} retired), {} reads: {} valid, {} recovered, {} recomputed, \
             {} unrecoverable [{}]",
            self.writes,
            self.retired,
            self.reads,
            self.valid,
            self.recovered,
            self.recomputed,
            self.unrecoverable,
            if self.reconciles() {
                "reconciled"
            } else {
                "UNRECONCILED"
            },
        )
    }

    /// Field-wise sum (for aggregating multiple stores into one ledger).
    pub fn absorb(&mut self, other: &DurabilityStats) {
        self.reads += other.reads;
        self.valid += other.valid;
        self.recovered += other.recovered;
        self.recomputed += other.recomputed;
        self.unrecoverable += other.unrecoverable;
        self.writes += other.writes;
        self.retired += other.retired;
        self.class_valid += other.class_valid;
        self.class_stale_config += other.class_stale_config;
        self.class_corrupt_header += other.class_corrupt_header;
        self.class_corrupt_body += other.class_corrupt_body;
        self.class_torn += other.class_torn;
        self.class_missing += other.class_missing;
    }
}

/// A directory of named, checksummed, generational states bound to one
/// config hash.
pub struct DurableStore {
    dir: PathBuf,
    config: u64,
    vfs: Arc<dyn Vfs>,
    counters: Arc<DurabilityCounters>,
}

impl DurableStore {
    /// Opens (creating if needed) the store at `dir`, bound to `config`,
    /// writing through `vfs`.
    pub fn open(dir: &Path, config: u64, vfs: Arc<dyn Vfs>) -> Result<DurableStore, StoreError> {
        vfs.create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            config,
            vfs,
            counters: Arc::new(DurabilityCounters::default()),
        })
    }

    /// [`DurableStore::open`] on the production filesystem.
    pub fn open_real(dir: &Path, config: u64) -> Result<DurableStore, StoreError> {
        DurableStore::open(dir, config, Arc::new(RealVfs))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared ledger.
    pub fn counters(&self) -> Arc<DurabilityCounters> {
        Arc::clone(&self.counters)
    }

    /// A point-in-time copy of the ledger.
    pub fn stats(&self) -> DurabilityStats {
        self.counters.stats()
    }

    fn gen_path(&self, name: &str, generation: u64) -> PathBuf {
        self.dir.join(format!("{name}.g{generation}{SUFFIX}"))
    }

    /// Generation numbers present for `name`, ascending.
    pub fn generations(&self, name: &str) -> Result<Vec<u64>, StoreError> {
        let prefix = format!("{name}.g");
        let mut gens = Vec::new();
        for file in self.vfs.list(&self.dir).map_err(|e| io_err(&self.dir, e))? {
            let Some(rest) = file.strip_prefix(&prefix) else {
                continue;
            };
            let Some(number) = rest.strip_suffix(SUFFIX) else {
                continue;
            };
            if !number.is_empty() && number.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(n) = number.parse::<u64>() {
                    gens.push(n);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Encodes one generation as `StateFile` bytes.
    fn encode(&self, generation: u64, body: &str) -> Vec<u8> {
        let protected = format!(
            "v{STATE_VERSION} config={:016x} gen={generation}\n{body}",
            self.config
        );
        let head = format!(
            "{MAGIC} crc32c={:08x} len={}\n",
            crc32c(protected.as_bytes()),
            protected.len()
        );
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(protected.as_bytes());
        bytes
    }

    /// Classifies one generation file's bytes; `Ok` carries the body.
    fn classify(&self, expected_gen: u64, bytes: &[u8]) -> Result<String, ReadClass> {
        // Unprotected header line: `squatphi-state crc32c=<8hex> len=<dec>`.
        let nl = bytes
            .iter()
            .take(64)
            .position(|&b| b == b'\n')
            .ok_or(ReadClass::CorruptHeader)?;
        let head = std::str::from_utf8(&bytes[..nl]).map_err(|_| ReadClass::CorruptHeader)?;
        let mut fields = head.split(' ');
        if fields.next() != Some(MAGIC) {
            return Err(ReadClass::CorruptHeader);
        }
        let crc_field = fields.next().ok_or(ReadClass::CorruptHeader)?;
        let len_field = fields.next().ok_or(ReadClass::CorruptHeader)?;
        if fields.next().is_some() {
            return Err(ReadClass::CorruptHeader);
        }
        // Strict field syntax: exactly-lowercase hex and bare decimal
        // digits. `from_str_radix`/`parse` alone would also accept
        // uppercase hex and a leading `+`, letting a single flipped case
        // bit in the checksum field go unnoticed.
        let crc_hex = crc_field
            .strip_prefix("crc32c=")
            .ok_or(ReadClass::CorruptHeader)?;
        let crc = parse_hex_lower(crc_hex, 8).ok_or(ReadClass::CorruptHeader)? as u32;
        let len = len_field
            .strip_prefix("len=")
            .and_then(parse_decimal)
            .ok_or(ReadClass::CorruptHeader)? as usize;

        // Protected region: exact length, then checksum.
        let protected = &bytes[nl + 1..];
        if protected.len() < len {
            return Err(ReadClass::Torn);
        }
        if protected.len() > len {
            return Err(ReadClass::CorruptBody);
        }
        if crc32c(protected) != crc {
            return Err(ReadClass::CorruptBody);
        }
        let protected = std::str::from_utf8(protected).map_err(|_| ReadClass::CorruptBody)?;

        // Inner metadata line: `v<version> config=<16hex> gen=<N>`. The CRC
        // already vouched for the bytes, so a parse failure here is a
        // writer bug, classified as a corrupt header rather than a panic.
        let (meta, body) = protected.split_once('\n').ok_or(ReadClass::CorruptHeader)?;
        let mut fields = meta.split(' ');
        let version = fields
            .next()
            .and_then(|v| v.strip_prefix('v'))
            .and_then(parse_decimal)
            .ok_or(ReadClass::CorruptHeader)?;
        let config = fields
            .next()
            .and_then(|v| v.strip_prefix("config="))
            .and_then(|v| parse_hex_lower(v, 16))
            .ok_or(ReadClass::CorruptHeader)?;
        let generation = fields
            .next()
            .and_then(|v| v.strip_prefix("gen="))
            .and_then(parse_decimal)
            .ok_or(ReadClass::CorruptHeader)?;
        if fields.next().is_some() {
            return Err(ReadClass::CorruptHeader);
        }
        if version != STATE_VERSION {
            return Err(ReadClass::StaleConfig);
        }
        if generation != expected_gen {
            return Err(ReadClass::CorruptHeader);
        }
        if config != self.config {
            return Err(ReadClass::StaleConfig);
        }
        Ok(body.to_string())
    }

    /// Durably commits `body` as the next generation of `name` and
    /// retires all but the latest two generations. Returns the committed
    /// generation number.
    ///
    /// Commit order: write + fsync the temp file, rename it into place,
    /// fsync the directory, then retire old generations — so a crash at
    /// any point leaves either the previous generations intact or the
    /// new one fully durable (plus, at worst, an ignored temp file or an
    /// unretired old generation).
    pub fn save(&self, name: &str, body: &str) -> Result<u64, StoreError> {
        let gens = self.generations(name)?;
        let next = gens.last().map_or(1, |g| g + 1);
        let path = self.gen_path(name, next);
        let tmp = self.dir.join(format!("{name}.g{next}{SUFFIX}.tmp"));
        let bytes = self.encode(next, body);
        self.vfs.write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        self.vfs.rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        for &old in gens.iter().rev().skip(1) {
            let old_path = self.gen_path(name, old);
            match self.vfs.remove(&old_path) {
                Ok(()) => {
                    self.counters.retired.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&old_path, e)),
            }
        }
        Ok(next)
    }

    /// Loads the newest verifiable generation of `name`, decoding its
    /// body with `decode` (`None` = the body does not decode, classified
    /// as [`ReadClass::CorruptBody`]). Walks generations newest-first and
    /// resolves to exactly one [`LoadOutcome`]; `Err` is reserved for
    /// store-level I/O failures.
    pub fn load_with<T>(
        &self,
        name: &str,
        decode: impl Fn(&str) -> Option<T>,
    ) -> Result<LoadOutcome<T>, StoreError> {
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        let gens = self.generations(name)?;
        if gens.is_empty() {
            self.counters.note_class(ReadClass::Missing);
            self.counters.recomputed.fetch_add(1, Ordering::Relaxed);
            return Ok(LoadOutcome::Missing);
        }
        let mut skipped: Vec<GenClass> = Vec::new();
        for &generation in gens.iter().rev() {
            let path = self.gen_path(name, generation);
            let class = match self.vfs.read(&path) {
                Ok(bytes) => match self.classify(generation, &bytes) {
                    Ok(body) => match decode(&body) {
                        Some(value) => {
                            self.counters.note_class(ReadClass::Valid);
                            if skipped.is_empty() {
                                self.counters.valid.fetch_add(1, Ordering::Relaxed);
                                return Ok(LoadOutcome::Valid(value));
                            }
                            self.counters.recovered.fetch_add(1, Ordering::Relaxed);
                            return Ok(LoadOutcome::Recovered {
                                value,
                                generation,
                                skipped,
                            });
                        }
                        None => ReadClass::CorruptBody,
                    },
                    Err(class) => class,
                },
                Err(e) if e.kind() == io::ErrorKind::NotFound => ReadClass::Missing,
                Err(e) => return Err(io_err(&path, e)),
            };
            self.counters.note_class(class);
            skipped.push(GenClass { generation, class });
            if class == ReadClass::StaleConfig {
                // An honest config/version change. If nothing newer was
                // damaged this is a clean recompute; if damaged newer
                // generations were skipped we cannot rule out data loss
                // for the *current* config, so stay conservative.
                return Ok(if skipped.iter().any(|g| g.class.is_damage()) {
                    self.counters.unrecoverable.fetch_add(1, Ordering::Relaxed);
                    LoadOutcome::Unrecoverable { classes: skipped }
                } else {
                    self.counters.recomputed.fetch_add(1, Ordering::Relaxed);
                    LoadOutcome::Stale { classes: skipped }
                });
            }
        }
        if skipped.iter().all(|g| g.class == ReadClass::Missing) {
            // Every listed file vanished before we could read it.
            self.counters.recomputed.fetch_add(1, Ordering::Relaxed);
            return Ok(LoadOutcome::Missing);
        }
        self.counters.unrecoverable.fetch_add(1, Ordering::Relaxed);
        Ok(LoadOutcome::Unrecoverable { classes: skipped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            use std::sync::atomic::AtomicU64;
            static INVOCATION: AtomicU64 = AtomicU64::new(0);
            let n = INVOCATION.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "squatphi-durability-{tag}-{}-{n}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn decode_str(body: &str) -> Option<String> {
        Some(body.to_string())
    }

    #[test]
    fn save_load_round_trips_and_counts() {
        let tmp = TempDir::new("roundtrip");
        let store = DurableStore::open_real(&tmp.0, 0xabcd).unwrap();
        assert_eq!(
            store.load_with("state", decode_str).unwrap(),
            LoadOutcome::Missing
        );
        assert_eq!(store.save("state", "hello world").unwrap(), 1);
        assert_eq!(
            store.load_with("state", decode_str).unwrap(),
            LoadOutcome::Valid("hello world".to_string())
        );
        let stats = store.stats();
        assert_eq!(
            (stats.reads, stats.valid, stats.recomputed, stats.writes),
            (2, 1, 1, 1)
        );
        assert!(stats.reconciles());
    }

    #[test]
    fn keeps_exactly_two_generations() {
        let tmp = TempDir::new("generations");
        let store = DurableStore::open_real(&tmp.0, 1).unwrap();
        for i in 0..5 {
            assert_eq!(store.save("state", &format!("body {i}")).unwrap(), i + 1);
        }
        assert_eq!(store.generations("state").unwrap(), vec![4, 5]);
        assert_eq!(store.stats().retired, 3);
        assert_eq!(
            store.load_with("state", decode_str).unwrap(),
            LoadOutcome::Valid("body 4".to_string())
        );
    }

    #[test]
    fn corrupt_newest_recovers_to_previous_generation() {
        let tmp = TempDir::new("recover");
        let store = DurableStore::open_real(&tmp.0, 1).unwrap();
        store.save("state", "old good").unwrap();
        store.save("state", "new good").unwrap();
        // Flip one body bit of the newest generation.
        let path = tmp.0.join("state.g2.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        RealVfs.write(&path, &bytes).unwrap();
        match store.load_with("state", decode_str).unwrap() {
            LoadOutcome::Recovered {
                value,
                generation,
                skipped,
            } => {
                assert_eq!(value, "old good");
                assert_eq!(generation, 1);
                assert_eq!(skipped.len(), 1);
                assert_eq!(skipped[0].class, ReadClass::CorruptBody);
            }
            other => panic!("expected recovery, got {other:?}"),
        }
        assert_eq!(store.stats().recovered, 1);
    }

    #[test]
    fn truncation_classifies_as_torn() {
        let tmp = TempDir::new("torn");
        let store = DurableStore::open_real(&tmp.0, 1).unwrap();
        store.save("state", "first").unwrap();
        store
            .save("state", "a body long enough to truncate meaningfully")
            .unwrap();
        let path = tmp.0.join("state.g2.ckpt");
        let bytes = std::fs::read(&path).unwrap();
        RealVfs.write(&path, &bytes[..bytes.len() - 10]).unwrap();
        match store.load_with("state", decode_str).unwrap() {
            LoadOutcome::Recovered { skipped, .. } => {
                assert_eq!(skipped[0].class, ReadClass::Torn);
            }
            other => panic!("expected torn recovery, got {other:?}"),
        }
    }

    #[test]
    fn all_generations_damaged_is_unrecoverable() {
        let tmp = TempDir::new("unrecoverable");
        let store = DurableStore::open_real(&tmp.0, 1).unwrap();
        store.save("state", "one").unwrap();
        store.save("state", "two").unwrap();
        for g in [1, 2] {
            let path = tmp.0.join(format!("state.g{g}.ckpt"));
            RealVfs.write(&path, b"garbage, no newline").unwrap();
        }
        match store.load_with("state", decode_str).unwrap() {
            LoadOutcome::Unrecoverable { classes } => {
                assert_eq!(classes.len(), 2);
                assert!(classes.iter().all(|c| c.class == ReadClass::CorruptHeader));
                assert_eq!(
                    render_classes(&classes),
                    "g2 corrupt_header, g1 corrupt_header"
                );
            }
            other => panic!("expected unrecoverable, got {other:?}"),
        }
        assert!(store.stats().reconciles());
    }

    #[test]
    fn other_config_classifies_as_stale() {
        let tmp = TempDir::new("stale");
        let writer = DurableStore::open_real(&tmp.0, 1).unwrap();
        writer.save("state", "for config 1").unwrap();
        let reader = DurableStore::open_real(&tmp.0, 2).unwrap();
        match reader.load_with("state", decode_str).unwrap() {
            LoadOutcome::Stale { classes } => {
                assert_eq!(classes[0].class, ReadClass::StaleConfig);
            }
            other => panic!("expected stale, got {other:?}"),
        }
        // Same config still valid — the stale read classified, not mutated.
        assert!(matches!(
            writer.load_with("state", decode_str).unwrap(),
            LoadOutcome::Valid(_)
        ));
    }

    #[test]
    fn damaged_newest_over_stale_old_is_unrecoverable() {
        let tmp = TempDir::new("damaged-over-stale");
        let old = DurableStore::open_real(&tmp.0, 1).unwrap();
        old.save("state", "other config").unwrap();
        let store = DurableStore::open_real(&tmp.0, 2).unwrap();
        store.save("state", "current config").unwrap();
        let path = tmp.0.join("state.g2.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        RealVfs.write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_with("state", decode_str).unwrap(),
            LoadOutcome::Unrecoverable { .. }
        ));
    }

    #[test]
    fn decode_failure_falls_back_like_corruption() {
        let tmp = TempDir::new("decode");
        let store = DurableStore::open_real(&tmp.0, 1).unwrap();
        store.save("state", "42").unwrap();
        store.save("state", "not a number").unwrap();
        let decode = |body: &str| body.parse::<u64>().ok();
        match store.load_with("state", decode).unwrap() {
            LoadOutcome::Recovered { value, skipped, .. } => {
                assert_eq!(value, 42);
                assert_eq!(skipped[0].class, ReadClass::CorruptBody);
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    }

    #[test]
    fn bodies_with_newlines_and_unicode_round_trip() {
        let tmp = TempDir::new("body");
        let store = DurableStore::open_real(&tmp.0, 9).unwrap();
        let body = "line one\nline two\n  {\"k\": \"vàlüe\"}\n\n";
        store.save("state", body).unwrap();
        assert_eq!(
            store.load_with("state", decode_str).unwrap(),
            LoadOutcome::Valid(body.to_string())
        );
    }

    #[test]
    fn no_tmp_files_survive_a_clean_save() {
        let tmp = TempDir::new("tmpfiles");
        let store = DurableStore::open_real(&tmp.0, 1).unwrap();
        store.save("a", "x").unwrap();
        store.save("b", "y").unwrap();
        let leftovers: Vec<String> = RealVfs
            .list(&tmp.0)
            .unwrap()
            .into_iter()
            .filter(|f| f.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
    }
}
