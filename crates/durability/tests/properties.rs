//! Property-based tests for the `StateFile` codec and generational
//! reader ([`squatphi_durability::store`]).
//!
//! The contract under test is the corruption-tolerance half of the
//! crash-consistency story: for *any* single-byte mutation or truncation
//! of *any* generation file, the reader never panics, never returns
//! mangled data as valid, and recovers to the last good generation (or
//! honestly reports the store unrecoverable when every generation is
//! damaged) — with the `durability.*` ledger reconciling either way.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use squatphi_durability::{DurableStore, LoadOutcome, RealVfs, Vfs};

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static INVOCATION: AtomicU64 = AtomicU64::new(0);
        let n = INVOCATION.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "squatphi-durability-prop-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn decode(body: &str) -> Option<String> {
    Some(body.to_string())
}

/// Builds a two-generation store: g1 = `old`, g2 = `new`.
fn two_generations(dir: &Path, old: &str, new: &str) -> DurableStore {
    let store = DurableStore::open_real(dir, 0x5eed_c0de).unwrap();
    store.save("state", old).unwrap();
    store.save("state", new).unwrap();
    store
}

/// The checked-in `properties.proptest-regressions` must actually be
/// found and parsed by the runner — a silently-missing regression file
/// would quietly stop replaying known-bad inputs.
#[test]
fn regression_file_is_loaded() {
    let seeds = proptest::regressions::load_for_source(file!(), env!("CARGO_MANIFEST_DIR"));
    assert!(
        !seeds.is_empty(),
        "crates/durability/tests/properties.proptest-regressions exists but no seeds were loaded"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ---- single-byte mutations ---------------------------------------------

    /// Flipping any bit of the NEWEST generation is detected and the
    /// reader falls back to the previous generation.
    #[test]
    fn mutated_newest_generation_recovers_to_previous(
        old in "[ -~]{0,120}",
        new in "[ -~]{0,120}",
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        let tmp = TempDir::new();
        let store = two_generations(&tmp.0, &old, &new);
        let path = tmp.0.join("state.g2.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let target = pos as usize % bytes.len();
        bytes[target] ^= 1 << bit;
        RealVfs.write(&path, &bytes).unwrap();

        let outcome = catch_unwind(AssertUnwindSafe(|| store.load_with("state", decode)));
        let outcome = outcome.expect("reader panicked on a single-byte mutation");
        match outcome.unwrap() {
            LoadOutcome::Recovered { value, generation, .. } => {
                prop_assert_eq!(value, old.clone(), "recovered to the wrong body");
                prop_assert_eq!(generation, 1);
            }
            other => prop_assert!(false, "expected recovery, got {:?}", other),
        }
        prop_assert!(store.stats().reconciles(), "ledger does not reconcile");
    }

    /// Flipping any bit of the OLDER generation leaves the newest one
    /// serving reads, untouched.
    #[test]
    fn mutated_older_generation_is_ignored(
        old in "[ -~]{0,120}",
        new in "[ -~]{0,120}",
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        let tmp = TempDir::new();
        let store = two_generations(&tmp.0, &old, &new);
        let path = tmp.0.join("state.g1.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let target = pos as usize % bytes.len();
        bytes[target] ^= 1 << bit;
        RealVfs.write(&path, &bytes).unwrap();

        let outcome = catch_unwind(AssertUnwindSafe(|| store.load_with("state", decode)));
        let outcome = outcome.expect("reader panicked on a single-byte mutation");
        prop_assert_eq!(outcome.unwrap(), LoadOutcome::Valid(new.clone()));
        prop_assert!(store.stats().reconciles());
    }

    // ---- truncations -------------------------------------------------------

    /// Truncating the newest generation at any point recovers to the
    /// previous generation (a full-length "truncation" stays valid).
    #[test]
    fn truncated_newest_generation_recovers(
        old in "[ -~]{0,120}",
        new in "[ -~]{0,120}",
        cut in any::<u32>(),
    ) {
        let tmp = TempDir::new();
        let store = two_generations(&tmp.0, &old, &new);
        let path = tmp.0.join("state.g2.ckpt");
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut as usize % (bytes.len() + 1);
        RealVfs.write(&path, &bytes[..cut]).unwrap();

        let outcome = catch_unwind(AssertUnwindSafe(|| store.load_with("state", decode)));
        let outcome = outcome.expect("reader panicked on a truncation");
        match outcome.unwrap() {
            LoadOutcome::Valid(value) => {
                prop_assert_eq!(cut, bytes.len(), "short file classified valid");
                prop_assert_eq!(value, new.clone());
            }
            LoadOutcome::Recovered { value, .. } => {
                prop_assert!(cut < bytes.len());
                prop_assert_eq!(value, old.clone());
            }
            other => prop_assert!(false, "expected valid or recovery, got {:?}", other),
        }
        prop_assert!(store.stats().reconciles());
    }

    // ---- total damage ------------------------------------------------------

    /// Damaging every generation never panics: the store reports
    /// unrecoverable rather than inventing or silently dropping state.
    #[test]
    fn damaging_every_generation_is_reported_not_papered_over(
        old in "[ -~]{0,120}",
        new in "[ -~]{0,120}",
        pos1 in any::<u32>(),
        pos2 in any::<u32>(),
        bit in 0u8..8,
    ) {
        let tmp = TempDir::new();
        let store = two_generations(&tmp.0, &old, &new);
        for (gen, pos) in [(1u64, pos1), (2, pos2)] {
            let path = tmp.0.join(format!("state.g{gen}.ckpt"));
            let mut bytes = std::fs::read(&path).unwrap();
            let target = pos as usize % bytes.len();
            bytes[target] ^= 1 << bit;
            RealVfs.write(&path, &bytes).unwrap();
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| store.load_with("state", decode)));
        let outcome = outcome.expect("reader panicked with every generation damaged");
        match outcome.unwrap() {
            LoadOutcome::Unrecoverable { classes } => {
                prop_assert_eq!(classes.len(), 2, "both generations should be classified");
            }
            other => prop_assert!(false, "expected unrecoverable, got {:?}", other),
        }
        prop_assert!(store.stats().reconciles());
    }

    // ---- round-trip sanity over arbitrary bodies ---------------------------

    /// Unmutated stores round-trip any printable body exactly, over any
    /// number of rewrites, and the ledger accounts every read.
    #[test]
    fn clean_stores_round_trip(
        bodies in proptest::collection::vec("[ -~]{0,80}", 1..6),
    ) {
        let tmp = TempDir::new();
        let store = DurableStore::open_real(&tmp.0, 7).unwrap();
        for body in &bodies {
            store.save("state", body).unwrap();
            let loaded = store.load_with("state", decode).unwrap();
            prop_assert_eq!(loaded, LoadOutcome::Valid(body.clone()));
        }
        let stats = store.stats();
        prop_assert_eq!(stats.reads, bodies.len() as u64);
        prop_assert_eq!(stats.valid, bodies.len() as u64);
        prop_assert_eq!(stats.writes, bodies.len() as u64);
        prop_assert!(stats.reconciles());
    }
}
