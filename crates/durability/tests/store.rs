//! Integration tests for the durable store under seeded disk faults:
//! torn writes, bit rot, a full device, and in-process crash-at-write
//! aborts (the process-level sweep lives in `ci/crash_matrix.sh`; here
//! the crash hook panics instead of exiting so every crash point can be
//! driven and recovered inside one test binary).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use squatphi_durability::{
    install_crash_hook, CrashPoint, DiskFaultPlan, DurableStore, FaultVfs, LoadOutcome, ReadClass,
    RealVfs, StoreError,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static INVOCATION: AtomicU64 = AtomicU64::new(0);
        let n = INVOCATION.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "squatphi-durability-it-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Payload marker the in-process crash hook panics with.
const CRASH_MARKER: &str = "simulated-disk-crash";

/// Installs the panicking crash hook (idempotent; first install wins
/// process-wide, which is fine — every test in this binary wants it).
fn hook_crashes_to_panics() {
    install_crash_hook(Box::new(|ctx| panic!("{CRASH_MARKER}: {ctx}")));
}

fn decode(body: &str) -> Option<String> {
    Some(body.to_string())
}

fn faulted(dir: &Path, config: u64, spec: &str, seed: u64) -> DurableStore {
    let plan = DiskFaultPlan::parse(spec).unwrap().with_seed(seed);
    let vfs = Arc::new(FaultVfs::new(Arc::new(RealVfs), plan));
    DurableStore::open(dir, config, vfs).unwrap()
}

// ---- torn writes -----------------------------------------------------------

#[test]
fn torn_writes_classify_and_recover() {
    let tmp = TempDir::new("torn");
    // A good first generation on the clean filesystem…
    let clean = DurableStore::open_real(&tmp.0, 1).unwrap();
    clean.save("state", "good old state").unwrap();
    // …then a writer whose every write loses its tail (byte 60 is past
    // the ~38-byte header line, so the tear lands in the protected
    // region and classifies as torn rather than corrupt-header).
    let torn = faulted(&tmp.0, 1, "torn-at-byte-60", 0);
    torn.save("state", "new state that will tear").unwrap();
    match clean.load_with("state", decode).unwrap() {
        LoadOutcome::Recovered {
            value,
            generation,
            skipped,
        } => {
            assert_eq!(value, "good old state");
            assert_eq!(generation, 1);
            assert_eq!(skipped[0].class, ReadClass::Torn);
        }
        other => panic!("expected torn recovery, got {other:?}"),
    }
}

// ---- bit rot ---------------------------------------------------------------

#[test]
fn bitflips_are_deterministic_and_always_detected() {
    let tmp_a = TempDir::new("bitflip-a");
    let tmp_b = TempDir::new("bitflip-b");
    for dir in [&tmp_a.0, &tmp_b.0] {
        let store = faulted(dir, 1, "bitflip-permille-1000", 42);
        store.save("state", "first body").unwrap();
        store.save("state", "second body").unwrap();
    }
    // Same seed, same write sequence → byte-identical mangled files.
    for gen in [1u64, 2] {
        let name = format!("state.g{gen}.ckpt");
        let a = std::fs::read(tmp_a.0.join(&name)).unwrap();
        let b = std::fs::read(tmp_b.0.join(&name)).unwrap();
        assert_eq!(a, b, "flips for {name} differ across identical runs");
    }
    // Every write was flipped, so nothing verifies.
    let reader = DurableStore::open_real(&tmp_a.0, 1).unwrap();
    match reader.load_with("state", decode).unwrap() {
        LoadOutcome::Unrecoverable { classes } => {
            assert!(classes.iter().all(|c| c.class.is_damage()), "{classes:?}");
        }
        other => panic!("expected unrecoverable under permille-1000 rot, got {other:?}"),
    }
    assert!(reader.stats().reconciles());
}

// ---- full device -----------------------------------------------------------

#[test]
fn enospc_fails_the_write_and_keeps_the_last_generation() {
    let tmp = TempDir::new("enospc");
    let store = faulted(&tmp.0, 1, "enospc-after-200", 0);
    store
        .save("state", "fits within the device budget")
        .unwrap();
    let err = store
        .save("state", "this second write blows the byte budget wide open")
        .unwrap_err();
    let StoreError::Io { message, .. } = err;
    assert!(message.contains("ENOSPC"), "unexpected error: {message}");
    // The failed write only dirtied a temp file; the committed state is
    // still the first generation and still verifies.
    let reader = DurableStore::open_real(&tmp.0, 1).unwrap();
    assert_eq!(
        reader.load_with("state", decode).unwrap(),
        LoadOutcome::Valid("fits within the device budget".to_string())
    );
}

// ---- crash points ----------------------------------------------------------

/// Finds a seed whose crash draw for write `k` lands on `point`.
fn seed_for(point: CrashPoint, k: u64) -> u64 {
    (0..1024)
        .find(|&seed| {
            DiskFaultPlan::parse(&format!("crash-at-write-{k}"))
                .unwrap()
                .with_seed(seed)
                .crash_point(k)
                == Some(point)
        })
        .expect("no seed reaches the requested crash point")
}

/// Runs one crash-at-write scenario: commit one good generation, crash
/// at the second write at `point`, then verify recovery semantics.
fn crash_scenario(point: CrashPoint) {
    hook_crashes_to_panics();
    let tmp = TempDir::new(&format!("crash-{}", point.name()));
    let seed = seed_for(point, 2);
    let store = faulted(&tmp.0, 1, "crash-at-write-2", seed);
    store.save("state", "committed before the crash").unwrap();

    let crashed = catch_unwind(AssertUnwindSafe(|| store.save("state", "dies mid-flight")));
    let payload = crashed.expect_err("crash-at-write-2 did not abort the second write");
    let text = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(text.contains(CRASH_MARKER), "unexpected panic: {text}");
    assert!(
        text.contains(point.name()),
        "crashed at the wrong point: {text}"
    );

    // Recovery: a fresh store on the real filesystem must still load a
    // verified state — the pre-crash generation for pre-commit points,
    // the new one when the crash hit after the commit rename.
    let reader = DurableStore::open_real(&tmp.0, 1).unwrap();
    let expect = match point {
        CrashPoint::BeforeWrite | CrashPoint::MidWrite => "committed before the crash",
        CrashPoint::AfterCommit => "dies mid-flight",
    };
    match reader.load_with("state", decode).unwrap() {
        LoadOutcome::Valid(value) => assert_eq!(value, expect),
        other => panic!("expected a valid post-crash load, got {other:?}"),
    }

    // And the store keeps working: the next save commits a fresh
    // generation above everything the crash left behind.
    let next = reader.save("state", "post-recovery write").unwrap();
    assert!(next >= 2);
    assert_eq!(
        reader.load_with("state", decode).unwrap(),
        LoadOutcome::Valid("post-recovery write".to_string())
    );
}

#[test]
fn crash_before_write_keeps_previous_generation() {
    crash_scenario(CrashPoint::BeforeWrite);
}

#[test]
fn crash_mid_write_leaves_only_an_ignored_temp_file() {
    crash_scenario(CrashPoint::MidWrite);
}

#[test]
fn crash_after_commit_keeps_the_new_generation() {
    crash_scenario(CrashPoint::AfterCommit);
}

#[test]
fn crash_on_the_very_first_write_is_a_cold_start() {
    hook_crashes_to_panics();
    for point in [CrashPoint::BeforeWrite, CrashPoint::MidWrite] {
        let tmp = TempDir::new("crash-first");
        let seed = seed_for(point, 1);
        let store = faulted(&tmp.0, 1, "crash-at-write-1", seed);
        let crashed = catch_unwind(AssertUnwindSafe(|| store.save("state", "never lands")));
        assert!(crashed.is_err());
        // Nothing was ever durably committed: the reader sees a clean
        // cold start, not corruption.
        let reader = DurableStore::open_real(&tmp.0, 1).unwrap();
        assert_eq!(
            reader.load_with("state", decode).unwrap(),
            LoadOutcome::Missing
        );
    }
}

// ---- plan determinism across thread counts ---------------------------------

/// Disk-fault draws depend only on (seed, name, write seq) — two stores
/// driven identically from different thread counts mangle identically.
#[test]
fn fault_decisions_are_thread_count_independent() {
    let plan = DiskFaultPlan::parse("bitflip-permille-500")
        .unwrap()
        .with_seed(9);
    let single: Vec<Option<usize>> = (1..40).map(|s| plan.bitflip_for("state", s, 256)).collect();
    let threads: Vec<std::thread::JoinHandle<Vec<Option<usize>>>> = (0..4)
        .map(|_| {
            std::thread::spawn(move || (1..40).map(|s| plan.bitflip_for("state", s, 256)).collect())
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().unwrap(), single);
    }
}
