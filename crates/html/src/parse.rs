//! Tokenizer → DOM with forgiving tag matching.

use crate::dom::{Document, Element, Node, NodeId};
use crate::token::{tokenize, Token};

/// Elements that never hold children (void elements).
fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Parses an HTML string into a [`Document`]. Mismatched or stray close
/// tags are tolerated: a close tag pops up to its nearest matching open
/// element, or is ignored if none is open.
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<(String, NodeId)> = vec![("#root".to_string(), Document::ROOT)];
    for tok in tokenize(input) {
        let top = stack.last().expect("stack never empty").1;
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                let id = doc.append(
                    top,
                    Node::Element(Element {
                        name: name.clone(),
                        attrs,
                    }),
                );
                if !self_closing && !is_void(&name) {
                    stack.push((name, id));
                }
            }
            Token::EndTag { name } => {
                if let Some(pos) = stack.iter().rposition(|(n, _)| *n == name) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
            }
            Token::Text(t) => {
                doc.append(top, Node::Text(t));
            }
            Token::Comment(c) => {
                doc.append(top, Node::Comment(c));
            }
            Token::RawText { container, body } => {
                // The tokenizer emits StartTag(script) / RawText / EndTag,
                // so the raw body lands inside the open script element.
                doc.append(top, Node::Raw { container, body });
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nests_elements() {
        let d = parse("<html><body><div><p>one</p><p>two</p></div></body></html>");
        assert_eq!(d.elements_named("p").count(), 2);
        let div = d.elements_named("div").next().unwrap();
        assert_eq!(d.children(div).len(), 2);
        assert_eq!(d.subtree_text(div), "one two");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let d = parse("<p>a<br>b<input type='text'>c</p>");
        let p = d.elements_named("p").next().unwrap();
        // br, input and three text nodes are siblings under <p>.
        assert_eq!(d.children(p).len(), 5);
    }

    #[test]
    fn recovers_from_unclosed_tags() {
        let d = parse("<div><p>unclosed<div>inner</div>");
        assert_eq!(d.elements_named("div").count(), 2);
        assert!(d.subtree_text(Document::ROOT).contains("inner"));
    }

    #[test]
    fn stray_close_tags_ignored() {
        let d = parse("</div><p>hello</p></span>");
        assert_eq!(d.elements_named("p").count(), 1);
        assert_eq!(d.subtree_text(Document::ROOT), "hello");
    }

    #[test]
    fn script_raw_body_attached() {
        let d = parse("<body><script>eval('<p>not markup</p>')</script></body>");
        assert_eq!(
            d.elements_named("p").count(),
            0,
            "script body must not parse as HTML"
        );
        let script = d.elements_named("script").next().unwrap();
        let raw = d.children(script).first().copied().unwrap();
        assert!(matches!(d.node(raw), Node::Raw { body, .. } if body.contains("eval")));
    }

    #[test]
    fn forms_with_inputs_parse() {
        let d = parse(
            "<form action='login.php'><input type='email' placeholder='Email'>\
             <input type='password' placeholder='Password'>\
             <button type='submit'>Log In</button></form>",
        );
        let form = d.elements_named("form").next().unwrap();
        assert_eq!(d.elements_named("input").count(), 2);
        assert_eq!(d.subtree_text(form), "Log In");
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let mut s = String::new();
        for _ in 0..2000 {
            s.push_str("<div>");
        }
        s.push_str("deep");
        let d = parse(&s);
        assert!(d.subtree_text(Document::ROOT).contains("deep"));
    }
}
