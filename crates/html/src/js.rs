//! JavaScript obfuscation indicators (paper §4.2 "Code Obfuscation").
//!
//! The paper parses page JavaScript into an AST and extracts well-known
//! obfuscation indicators after FrameHanger: heavy use of string-building
//! functions (`fromCharCode`, `charCodeAt`), dynamic evaluation (`eval`),
//! and special-character density. We implement a lightweight JS scanner —
//! a string-literal-aware tokenizer plus indicator counters — which is all
//! the measurement needs (and keeps the whole analysis dependency-free).

/// Counters for one script body (or a whole page's scripts combined).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsIndicators {
    /// `String.fromCharCode` call sites.
    pub from_char_code: usize,
    /// `charCodeAt` call sites.
    pub char_code_at: usize,
    /// `eval(` call sites.
    pub eval_calls: usize,
    /// `unescape(` / `decodeURIComponent(` call sites.
    pub unescape_calls: usize,
    /// `document.write(` call sites (classic injection vector).
    pub document_write: usize,
    /// Fraction of non-alphanumeric, non-whitespace characters outside
    /// string literals.
    pub special_char_ratio: f64,
    /// Mean Shannon entropy (bits/char) of string literals ≥ 16 chars.
    pub string_entropy: f64,
    /// Length of the longest string literal.
    pub longest_string: usize,
    /// Total scanned length in bytes.
    pub code_len: usize,
}

impl JsIndicators {
    /// The paper counts a page as code-obfuscated when it carries strong,
    /// well-known indicators. We use: any dynamic-eval or char-code
    /// string building, or very high-entropy long literals.
    pub fn is_obfuscated(&self) -> bool {
        self.eval_calls > 0
            || self.from_char_code > 0
            || self.char_code_at > 0
            || self.unescape_calls > 0
            || (self.longest_string >= 64 && self.string_entropy > 5.2)
    }

    /// Merges counters from another script on the same page.
    pub fn merge(&mut self, other: &JsIndicators) {
        let total_len = (self.code_len + other.code_len).max(1) as f64;
        self.special_char_ratio = (self.special_char_ratio * self.code_len as f64
            + other.special_char_ratio * other.code_len as f64)
            / total_len;
        self.string_entropy = self.string_entropy.max(other.string_entropy);
        self.from_char_code += other.from_char_code;
        self.char_code_at += other.char_code_at;
        self.eval_calls += other.eval_calls;
        self.unescape_calls += other.unescape_calls;
        self.document_write += other.document_write;
        self.longest_string = self.longest_string.max(other.longest_string);
        self.code_len += other.code_len;
    }
}

/// Scans one script body.
pub fn scan_js(code: &str) -> JsIndicators {
    let mut ind = JsIndicators {
        code_len: code.len(),
        ..JsIndicators::default()
    };
    let mut outside = String::with_capacity(code.len());
    let mut literals: Vec<String> = Vec::new();

    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            q @ (b'"' | b'\'' | b'`') => {
                let mut j = i + 1;
                let mut lit = String::new();
                while j < bytes.len() && bytes[j] != q {
                    if bytes[j] == b'\\' && j + 1 < bytes.len() {
                        lit.push(bytes[j + 1] as char);
                        j += 2;
                    } else {
                        lit.push(bytes[j] as char);
                        j += 1;
                    }
                }
                literals.push(lit);
                i = (j + 1).min(bytes.len());
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            c => {
                outside.push(c as char);
                i += 1;
            }
        }
    }

    // Call-site counters on code outside string literals.
    ind.from_char_code = outside.matches("fromCharCode").count();
    ind.char_code_at = outside.matches("charCodeAt").count();
    ind.eval_calls = count_calls(&outside, "eval");
    ind.unescape_calls =
        count_calls(&outside, "unescape") + count_calls(&outside, "decodeURIComponent");
    ind.document_write = outside.matches("document.write").count();

    // Special-character density.
    let total = outside
        .chars()
        .filter(|c| !c.is_whitespace())
        .count()
        .max(1);
    let special = outside
        .chars()
        .filter(|c| !c.is_whitespace() && !c.is_ascii_alphanumeric())
        .count();
    ind.special_char_ratio = special as f64 / total as f64;

    // String-literal entropy.
    let mut entropies = Vec::new();
    for lit in &literals {
        ind.longest_string = ind.longest_string.max(lit.len());
        if lit.len() >= 16 {
            entropies.push(shannon_entropy(lit));
        }
    }
    if !entropies.is_empty() {
        ind.string_entropy = entropies.iter().sum::<f64>() / entropies.len() as f64;
    }
    ind
}

/// Counts `ident(` call sites with a word boundary before `ident`.
fn count_calls(code: &str, ident: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(p) = code[from..].find(ident) {
        let at = from + p;
        let before_ok = at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric()
                && code.as_bytes()[at - 1] != b'_'
                && code.as_bytes()[at - 1] != b'.';
        let after = at + ident.len();
        let after_ok = code[after..].trim_start().starts_with('(');
        if before_ok && after_ok {
            count += 1;
        }
        from = after;
    }
    count
}

/// Shannon entropy in bits per character.
pub fn shannon_entropy(s: &str) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for c in s.chars() {
        *counts.entry(c).or_insert(0usize) += 1;
    }
    let n = s.chars().count() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Scans every script body in a parsed document and merges the counters.
pub fn scan_document(doc: &crate::dom::Document) -> JsIndicators {
    let mut merged = JsIndicators::default();
    for id in doc.walk() {
        if let crate::dom::Node::Raw { container, body } = doc.node(id) {
            if container == "script" {
                merged.merge(&scan_js(body));
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn plain_code_is_clean() {
        let ind = scan_js("function greet(name) { return 'hello ' + name; }");
        assert!(!ind.is_obfuscated());
        assert_eq!(ind.eval_calls, 0);
    }

    #[test]
    fn detects_charcode_obfuscation() {
        let ind = scan_js("var s = String.fromCharCode(112,97,121,112,97,108);");
        assert_eq!(ind.from_char_code, 1);
        assert!(ind.is_obfuscated());
    }

    #[test]
    fn detects_eval() {
        let ind = scan_js("eval(atob('cGF5bG9hZA=='));");
        assert_eq!(ind.eval_calls, 1);
        assert!(ind.is_obfuscated());
    }

    #[test]
    fn eval_inside_string_not_counted() {
        let ind = scan_js("var msg = 'do not eval(this)';");
        assert_eq!(ind.eval_calls, 0);
        assert!(!ind.is_obfuscated());
    }

    #[test]
    fn eval_in_identifier_not_counted() {
        let ind = scan_js("medieval(1); x.prevalent(2); retrieval(3);");
        assert_eq!(ind.eval_calls, 0);
    }

    #[test]
    fn method_eval_not_counted() {
        // foo.eval( — property access, FrameHanger counts direct eval.
        let ind = scan_js("sandbox.eval('x')");
        assert_eq!(ind.eval_calls, 0);
    }

    #[test]
    fn comments_ignored() {
        let ind = scan_js("// eval(hidden)\n/* fromCharCode */ var x = 1;");
        assert_eq!(ind.eval_calls, 0);
        assert_eq!(ind.from_char_code, 0);
    }

    #[test]
    fn entropy_of_uniform_string_is_high() {
        let h = shannon_entropy("abcdefghijklmnopqrstuvwxyz0123456789");
        assert!(h > 5.0, "got {h}");
        assert_eq!(shannon_entropy(""), 0.0);
        assert_eq!(shannon_entropy("aaaa"), 0.0);
    }

    #[test]
    fn high_entropy_long_literal_flags() {
        let blob: String = (0..200)
            .map(|i| char::from_u32(33 + (i * 7 % 90) as u32).unwrap())
            .collect();
        let ind = scan_js(&format!(
            "var payload = \"{}\";",
            blob.replace('"', "x").replace('\\', "y")
        ));
        assert!(ind.longest_string >= 64);
        assert!(ind.string_entropy > 5.2, "entropy {}", ind.string_entropy);
        assert!(ind.is_obfuscated());
    }

    #[test]
    fn document_scan_merges_scripts() {
        let doc = parse("<script>var a = 1;</script><div></div><script>eval('b');</script>");
        let ind = scan_document(&doc);
        assert_eq!(ind.eval_calls, 1);
        assert!(ind.is_obfuscated());
    }

    #[test]
    fn special_char_ratio_sane() {
        let low = scan_js("var alpha = beta");
        let high = scan_js("!@#$%^&*(){}[];:<>?");
        assert!(low.special_char_ratio < high.special_char_ratio);
        assert!(high.special_char_ratio > 0.9);
    }

    #[test]
    fn unescape_and_docwrite_counted() {
        let ind = scan_js("document.write(unescape('%3Cscript%3E'));");
        assert_eq!(ind.unescape_calls, 1);
        assert_eq!(ind.document_write, 1);
    }
}
