//! HTML tokenizer.
//!
//! Permissive, allocation-light tokenization: tags with attributes, text,
//! comments, and raw-text mode for `<script>`/`<style>` contents (whose
//! bodies must not be parsed as markup).

/// One token of the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" ...>` — `self_closing` covers `<br/>`.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order (names lower-cased).
        attrs: Vec<(String, String)>,
        /// `<img/>`-style self-closing syntax.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// Text between tags (entity-decoded for the basic five entities).
    Text(String),
    /// `<!-- ... -->` contents.
    Comment(String),
    /// `<script>` or `<style>` raw body, tagged with the container name.
    RawText {
        /// `script` or `style`.
        container: String,
        /// The raw body.
        body: String,
    },
}

/// Decodes the few entities our pipeline meets.
fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
        .replace("&nbsp;", " ")
}

/// Tokenizes an HTML document.
pub fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Comment?
            if input[i..].starts_with("<!--") {
                let end = input[i + 4..].find("-->").map(|p| i + 4 + p);
                let (body, next) = match end {
                    Some(e) => (&input[i + 4..e], e + 3),
                    None => (&input[i + 4..], input.len()),
                };
                out.push(Token::Comment(body.to_string()));
                i = next;
                continue;
            }
            // Doctype / processing instruction: skip to '>'.
            if input[i..].starts_with("<!") || input[i..].starts_with("<?") {
                i = input[i..]
                    .find('>')
                    .map(|p| i + p + 1)
                    .unwrap_or(input.len());
                continue;
            }
            // Tag.
            if let Some((tok, next)) = read_tag(input, i) {
                let raw_container = match &tok {
                    Token::StartTag {
                        name,
                        self_closing: false,
                        ..
                    } if name == "script" || name == "style" => Some(name.clone()),
                    _ => None,
                };
                out.push(tok);
                i = next;
                if let Some(container) = raw_container {
                    // Raw-text mode until the matching close tag.
                    let close = format!("</{container}");
                    let lower = input[i..].to_ascii_lowercase();
                    let (body_end, resume) = match lower.find(&close) {
                        Some(p) => {
                            let after = input[i + p..]
                                .find('>')
                                .map(|q| i + p + q + 1)
                                .unwrap_or(input.len());
                            (i + p, after)
                        }
                        None => (input.len(), input.len()),
                    };
                    out.push(Token::RawText {
                        container: container.clone(),
                        body: input[i..body_end].to_string(),
                    });
                    out.push(Token::EndTag { name: container });
                    i = resume;
                }
                continue;
            }
            // Lone '<' that is not a tag: treat as text.
            out.push(Token::Text("<".to_string()));
            i += 1;
        } else {
            let end = input[i..].find('<').map(|p| i + p).unwrap_or(input.len());
            let text = decode_entities(&input[i..end]);
            if !text.trim().is_empty() {
                out.push(Token::Text(text));
            }
            i = end;
        }
    }
    out
}

/// Reads a tag starting at `input[start] == '<'`. Returns the token and the
/// index just past '>'. `None` if this is not a well-formed-enough tag.
fn read_tag(input: &str, start: usize) -> Option<(Token, usize)> {
    let rest = &input[start + 1..];
    let closing = rest.starts_with('/');
    let name_start = start + 1 + usize::from(closing);
    let mut j = name_start;
    let bytes = input.as_bytes();
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'-') {
        j += 1;
    }
    if j == name_start {
        return None;
    }
    let name = input[name_start..j].to_ascii_lowercase();
    // Scan to '>', respecting quoted attribute values.
    let mut attrs = Vec::new();
    let mut self_closing = false;
    let mut k = j;
    loop {
        // Skip whitespace.
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= bytes.len() {
            return Some((finish_tag(name, attrs, closing, self_closing), k));
        }
        match bytes[k] {
            b'>' => return Some((finish_tag(name, attrs, closing, self_closing), k + 1)),
            b'/' => {
                self_closing = true;
                k += 1;
            }
            _ => {
                // Attribute name.
                let an_start = k;
                while k < bytes.len()
                    && !bytes[k].is_ascii_whitespace()
                    && bytes[k] != b'='
                    && bytes[k] != b'>'
                    && bytes[k] != b'/'
                {
                    k += 1;
                }
                let aname = input[an_start..k].to_ascii_lowercase();
                // Optional value.
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                let mut avalue = String::new();
                if k < bytes.len() && bytes[k] == b'=' {
                    k += 1;
                    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                        k += 1;
                    }
                    if k < bytes.len() && (bytes[k] == b'"' || bytes[k] == b'\'') {
                        let quote = bytes[k];
                        k += 1;
                        let v_start = k;
                        while k < bytes.len() && bytes[k] != quote {
                            k += 1;
                        }
                        avalue = decode_entities(&input[v_start..k.min(input.len())]);
                        k = (k + 1).min(input.len());
                    } else {
                        let v_start = k;
                        while k < bytes.len() && !bytes[k].is_ascii_whitespace() && bytes[k] != b'>'
                        {
                            k += 1;
                        }
                        avalue = decode_entities(&input[v_start..k]);
                    }
                }
                if !aname.is_empty() {
                    attrs.push((aname, avalue));
                }
            }
        }
    }
}

fn finish_tag(
    name: String,
    attrs: Vec<(String, String)>,
    closing: bool,
    self_closing: bool,
) -> Token {
    if closing {
        Token::EndTag { name }
    } else {
        Token::StartTag {
            name,
            attrs,
            self_closing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_markup() {
        let toks = tokenize("<html><body><p>Hello</p></body></html>");
        assert_eq!(toks.len(), 7);
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "html"));
        assert!(matches!(&toks[3], Token::Text(t) if t == "Hello"));
        assert!(matches!(&toks[4], Token::EndTag { name } if name == "p"));
    }

    #[test]
    fn parses_attributes_all_quote_styles() {
        let toks = tokenize(r#"<input type="password" name='pw' placeholder=Enter required>"#);
        let Token::StartTag { name, attrs, .. } = &toks[0] else {
            panic!("want start tag")
        };
        assert_eq!(name, "input");
        assert_eq!(attrs[0], ("type".into(), "password".into()));
        assert_eq!(attrs[1], ("name".into(), "pw".into()));
        assert_eq!(attrs[2], ("placeholder".into(), "Enter".into()));
        assert_eq!(attrs[3], ("required".into(), "".into()));
    }

    #[test]
    fn script_body_is_raw_text() {
        let toks = tokenize("<script>if (a<b) { eval('x'); }</script><p>after</p>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "script"));
        let Token::RawText { container, body } = &toks[1] else {
            panic!("want raw text")
        };
        assert_eq!(container, "script");
        assert!(body.contains("a<b"));
        assert!(matches!(&toks[2], Token::EndTag { name } if name == "script"));
        assert!(matches!(&toks[3], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- hidden --><p>x</p>");
        assert!(matches!(&toks[0], Token::Comment(c) if c.trim() == "hidden"));
        assert!(matches!(&toks[1], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn self_closing_tags() {
        let toks = tokenize("<br/><img src='a.png' />");
        assert!(matches!(
            &toks[0],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
        assert!(
            matches!(&toks[1], Token::StartTag { name, self_closing: true, .. } if name == "img")
        );
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let toks = tokenize("<p title=\"a&amp;b\">x &lt; y</p>");
        let Token::StartTag { attrs, .. } = &toks[0] else {
            panic!()
        };
        assert_eq!(attrs[0].1, "a&b");
        assert!(matches!(&toks[1], Token::Text(t) if t == "x < y"));
    }

    #[test]
    fn survives_malformed_input() {
        // Unterminated tag, stray '<', unclosed script.
        for bad in [
            "<p",
            "a < b",
            "<script>never closed",
            "<>",
            "< >",
            "<p class=",
        ] {
            let _ = tokenize(bad); // must not panic
        }
    }

    #[test]
    fn unclosed_script_consumes_rest() {
        let toks = tokenize("<script>var x = 1;");
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::RawText { body, .. } if body.contains("var x"))));
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let toks = tokenize("<p>  </p>\n  <div>x</div>");
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Text(s) if s.trim().is_empty())));
    }
}
