//! A small owned DOM: arena of nodes with parent/child links.

/// Index of a node inside a [`Document`] arena.
pub type NodeId = usize;

/// An element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Lower-cased tag name.
    pub name: String,
    /// Attributes in source order.
    pub attrs: Vec<(String, String)>,
}

impl Element {
    /// First value of attribute `name` (lower-case), if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Element with children.
    Element(Element),
    /// Text run.
    Text(String),
    /// Comment.
    Comment(String),
    /// Raw script/style body.
    Raw {
        /// `script` or `style`.
        container: String,
        /// Body text.
        body: String,
    },
}

/// The parsed document: an arena with implicit root (id 0).
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
    children: Vec<Vec<NodeId>>,
    parent: Vec<Option<NodeId>>,
}

impl Document {
    /// Creates a document containing only the synthetic root.
    pub fn new() -> Self {
        let mut d = Document::default();
        d.nodes.push(Node::Element(Element {
            name: "#root".into(),
            attrs: Vec::new(),
        }));
        d.children.push(Vec::new());
        d.parent.push(None);
        d
    }

    /// The synthetic root id.
    pub const ROOT: NodeId = 0;

    /// Appends `node` as the last child of `parent`, returning its id.
    pub fn append(&mut self, parent: NodeId, node: Node) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.children.push(Vec::new());
        self.parent.push(Some(parent));
        self.children[parent].push(id);
        id
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Children ids of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id]
    }

    /// Parent id of a node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent[id]
    }

    /// Total node count (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Depth-first pre-order traversal from the root.
    pub fn walk(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut stack = vec![Self::ROOT];
        std::iter::from_fn(move || {
            let id = stack.pop()?;
            for &c in self.children[id].iter().rev() {
                stack.push(c);
            }
            Some(id)
        })
    }

    /// All element ids with the given tag name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.walk()
            .filter(move |&id| matches!(self.node(id), Node::Element(e) if e.name == name))
    }

    /// Concatenated text of the subtree under `id` (single spaces between
    /// runs).
    pub fn subtree_text(&self, id: NodeId) -> String {
        let mut parts = Vec::new();
        self.collect_text(id, &mut parts);
        parts.join(" ")
    }

    fn collect_text(&self, id: NodeId, out: &mut Vec<String>) {
        match self.node(id) {
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    out.push(t.to_string());
                }
            }
            Node::Element(_) => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
            _ => {}
        }
    }

    /// Serializes the subtree back to HTML (useful for round-trip tests and
    /// for the synthetic web world's storage).
    pub fn serialize(&self, id: NodeId) -> String {
        let mut s = String::new();
        self.serialize_into(id, &mut s);
        s
    }

    fn serialize_into(&self, id: NodeId, out: &mut String) {
        match self.node(id) {
            Node::Element(e) => {
                let root = e.name == "#root";
                if !root {
                    out.push('<');
                    out.push_str(&e.name);
                    for (k, v) in &e.attrs {
                        out.push(' ');
                        out.push_str(k);
                        out.push_str("=\"");
                        out.push_str(&v.replace('"', "&quot;"));
                        out.push('"');
                    }
                    out.push('>');
                }
                for &c in self.children(id) {
                    self.serialize_into(c, out);
                }
                if !root {
                    out.push_str("</");
                    out.push_str(&e.name);
                    out.push('>');
                }
            }
            Node::Text(t) => out.push_str(t),
            Node::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            Node::Raw { container, body } => {
                out.push('<');
                out.push_str(container);
                out.push('>');
                out.push_str(body);
                out.push_str("</");
                out.push_str(container);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_walk() {
        let mut d = Document::new();
        let body = d.append(
            Document::ROOT,
            Node::Element(Element {
                name: "body".into(),
                attrs: vec![],
            }),
        );
        let p = d.append(
            body,
            Node::Element(Element {
                name: "p".into(),
                attrs: vec![],
            }),
        );
        d.append(p, Node::Text("hello".into()));
        assert_eq!(d.len(), 4);
        assert_eq!(d.walk().count(), 4);
        assert_eq!(d.parent(p), Some(body));
        assert_eq!(d.subtree_text(Document::ROOT), "hello");
    }

    #[test]
    fn elements_named_filters() {
        let mut d = Document::new();
        let b = d.append(
            Document::ROOT,
            Node::Element(Element {
                name: "body".into(),
                attrs: vec![],
            }),
        );
        d.append(
            b,
            Node::Element(Element {
                name: "form".into(),
                attrs: vec![],
            }),
        );
        d.append(
            b,
            Node::Element(Element {
                name: "form".into(),
                attrs: vec![],
            }),
        );
        assert_eq!(d.elements_named("form").count(), 2);
        assert_eq!(d.elements_named("input").count(), 0);
    }

    #[test]
    fn attr_lookup() {
        let e = Element {
            name: "input".into(),
            attrs: vec![("type".into(), "password".into())],
        };
        assert_eq!(e.attr("type"), Some("password"));
        assert_eq!(e.attr("name"), None);
    }

    #[test]
    fn serialize_round_structure() {
        let mut d = Document::new();
        let p = d.append(
            Document::ROOT,
            Node::Element(Element {
                name: "p".into(),
                attrs: vec![("class".into(), "x".into())],
            }),
        );
        d.append(p, Node::Text("hi".into()));
        assert_eq!(d.serialize(Document::ROOT), "<p class=\"x\">hi</p>");
    }
}
