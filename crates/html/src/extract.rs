//! Text and form extraction (paper §5.1 "Text-based Lexical Features" and
//! "Form-based Features").

use crate::dom::{Document, Node};

/// Visible text grouped by the tag classes the paper uses: `h*` headers,
/// `p` plaintext, `a` hyperlink text, `title`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageText {
    /// Text inside `h1`..`h6`.
    pub headers: Vec<String>,
    /// Text inside `p`.
    pub paragraphs: Vec<String>,
    /// Text inside `a`.
    pub links: Vec<String>,
    /// Text inside `title`.
    pub title: Vec<String>,
}

impl PageText {
    /// Every extracted string, flattened.
    pub fn all(&self) -> impl Iterator<Item = &str> {
        self.headers
            .iter()
            .chain(&self.paragraphs)
            .chain(&self.links)
            .chain(&self.title)
            .map(String::as_str)
    }

    /// Whole-page lower-cased text blob (for substring checks like the
    /// string-obfuscation measurement in §4.2).
    pub fn joined_lower(&self) -> String {
        self.all()
            .collect::<Vec<_>>()
            .join(" ")
            .to_ascii_lowercase()
    }
}

/// One submission form and the attributes the paper features on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FormInfo {
    /// `action` attribute of the form.
    pub action: String,
    /// `type` attributes of the form's inputs/buttons.
    pub input_types: Vec<String>,
    /// `name` attributes of inputs/buttons.
    pub input_names: Vec<String>,
    /// `placeholder` attributes of inputs.
    pub placeholders: Vec<String>,
    /// Text/value of submit controls.
    pub submit_texts: Vec<String>,
}

impl FormInfo {
    /// Whether the form asks for a password.
    pub fn has_password(&self) -> bool {
        self.input_types.iter().any(|t| t == "password")
    }
}

/// Extracts [`PageText`] from a parsed document.
pub fn extract_text(doc: &Document) -> PageText {
    let mut out = PageText::default();
    for id in doc.walk() {
        if let Node::Element(e) = doc.node(id) {
            let bucket = match e.name.as_str() {
                "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => Some(&mut out.headers),
                "p" => Some(&mut out.paragraphs),
                "a" => Some(&mut out.links),
                "title" => Some(&mut out.title),
                _ => None,
            };
            if let Some(bucket) = bucket {
                let text = doc.subtree_text(id);
                if !text.is_empty() {
                    bucket.push(text);
                }
            }
        }
    }
    out
}

/// Extracts every form on the page.
pub fn extract_forms(doc: &Document) -> Vec<FormInfo> {
    let form_ids: Vec<_> = doc.elements_named("form").collect();
    let mut out = Vec::with_capacity(form_ids.len());
    for fid in form_ids {
        let mut info = FormInfo::default();
        if let Node::Element(e) = doc.node(fid) {
            info.action = e.attr("action").unwrap_or("").to_string();
        }
        collect_form(doc, fid, &mut info);
        out.push(info);
    }
    out
}

fn collect_form(doc: &Document, id: usize, info: &mut FormInfo) {
    for &c in doc.children(id) {
        if let Node::Element(e) = doc.node(c) {
            match e.name.as_str() {
                "input" => {
                    let ty = e.attr("type").unwrap_or("text").to_ascii_lowercase();
                    if ty == "submit" {
                        if let Some(v) = e.attr("value") {
                            info.submit_texts.push(v.to_string());
                        }
                    }
                    info.input_types.push(ty);
                    if let Some(n) = e.attr("name") {
                        info.input_names.push(n.to_string());
                    }
                    if let Some(p) = e.attr("placeholder") {
                        info.placeholders.push(p.to_string());
                    }
                }
                "button" => {
                    let ty = e.attr("type").unwrap_or("submit").to_ascii_lowercase();
                    if ty == "submit" {
                        info.submit_texts.push(doc.subtree_text(c));
                    }
                    info.input_types.push(ty);
                    if let Some(n) = e.attr("name") {
                        info.input_names.push(n.to_string());
                    }
                }
                "select" | "textarea" => {
                    info.input_types.push(e.name.clone());
                    if let Some(n) = e.attr("name") {
                        info.input_names.push(n.to_string());
                    }
                    if let Some(p) = e.attr("placeholder") {
                        info.placeholders.push(p.to_string());
                    }
                }
                _ => {}
            }
        }
        collect_form(doc, c, info);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const LOGIN: &str = r#"
        <html><head><title>Log in to PayPal</title></head><body>
        <h1>PayPal</h1>
        <p>Welcome back</p>
        <a href="/help">Need help?</a>
        <form action="/signin.php">
          <input type="email" name="login_email" placeholder="Email or mobile number">
          <input type="password" name="login_password" placeholder="Password">
          <button type="submit">Log In</button>
        </form>
        </body></html>"#;

    #[test]
    fn text_buckets_filled() {
        let t = extract_text(&parse(LOGIN));
        assert_eq!(t.title, vec!["Log in to PayPal"]);
        assert_eq!(t.headers, vec!["PayPal"]);
        assert_eq!(t.paragraphs, vec!["Welcome back"]);
        assert_eq!(t.links, vec!["Need help?"]);
        assert!(t.joined_lower().contains("paypal"));
    }

    #[test]
    fn form_attributes_extracted() {
        let forms = extract_forms(&parse(LOGIN));
        assert_eq!(forms.len(), 1);
        let f = &forms[0];
        assert_eq!(f.action, "/signin.php");
        assert!(f.has_password());
        assert_eq!(f.input_types, vec!["email", "password", "submit"]);
        assert_eq!(f.input_names, vec!["login_email", "login_password"]);
        assert_eq!(f.placeholders, vec!["Email or mobile number", "Password"]);
        assert_eq!(f.submit_texts, vec!["Log In"]);
    }

    #[test]
    fn multiple_forms_counted() {
        let html = "<form><input type='text'></form><form><input type='password'></form>";
        let forms = extract_forms(&parse(html));
        assert_eq!(forms.len(), 2);
        assert!(!forms[0].has_password());
        assert!(forms[1].has_password());
    }

    #[test]
    fn page_without_forms_or_text() {
        let d = parse("<div><span>just a span</span></div>");
        assert!(extract_forms(&d).is_empty());
        let t = extract_text(&d);
        assert!(t.headers.is_empty() && t.paragraphs.is_empty());
    }

    #[test]
    fn submit_input_value_captured() {
        let forms = extract_forms(&parse("<form><input type='submit' value='Sign in'></form>"));
        assert_eq!(forms[0].submit_texts, vec!["Sign in"]);
    }

    #[test]
    fn nested_h_tags_all_counted() {
        let t = extract_text(&parse("<h1>A</h1><h2>B</h2><h3>C</h3>"));
        assert_eq!(t.headers, vec!["A", "B", "C"]);
    }
}
