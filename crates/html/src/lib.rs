//! HTML substrate: parsing and analysis of (synthetic) web pages.
//!
//! The paper's feature pipeline (§4.2, §5.1) reads three things out of a
//! page's HTML: visible text per tag class, submission-form structure, and
//! JavaScript obfuscation indicators. This crate implements all three on
//! top of a permissive from-scratch tokenizer/parser:
//!
//! * [`token`] — HTML tokenizer (tags, attributes, text, comments,
//!   script/style raw-text modes),
//! * [`dom`] — a small owned DOM tree,
//! * [`mod@parse`] — tokenizer → DOM with HTML5-ish implicit tag closing,
//! * [`extract`] — text per tag class (`h*`, `p`, `a`, `title`) and form
//!   attribute extraction (`type`, `name`, `placeholder`, submit),
//! * [`js`] — JavaScript scanner for the FrameHanger-style obfuscation
//!   indicators used in §4.2 (`fromCharCode`, `charCodeAt`, `eval`,
//!   escape density, string entropy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod extract;
pub mod js;
pub mod parse;
pub mod token;

pub use dom::{Document, Element, Node, NodeId};
pub use extract::{FormInfo, PageText};
pub use js::JsIndicators;
pub use parse::parse;
pub use token::{tokenize, Token};
