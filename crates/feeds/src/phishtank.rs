//! The crowdsourced ground-truth feed (PhishTank substitute, §4.1).

use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_squat::{BrandId, BrandRegistry, SquatType};
use squatphi_web::pages;

/// Alexa-rank buckets of reported phishing hosts (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankBucket {
    /// Rank 1..=1000.
    Top1K,
    /// Rank 1001..=10_000.
    To10K,
    /// Rank 10_001..=100_000.
    To100K,
    /// Rank 100_001..=1_000_000.
    To1M,
    /// Beyond the top million (the 70% bulk).
    Beyond1M,
}

/// One reported URL in the feed.
#[derive(Debug, Clone)]
pub struct FeedEntry {
    /// The reported host.
    pub host: String,
    /// The targeted brand.
    pub brand: BrandId,
    /// Hosting popularity bucket.
    pub rank: RankBucket,
    /// Squatting type of the host, if any (91% have none — Figure 7).
    pub squat_type: Option<SquatType>,
    /// Whether the page still serves phishing when *our* crawler gets to
    /// it (43.2% for the top-8 brands — Table 5).
    pub still_phishing: bool,
    /// The crawled HTML (phishing page or its benign replacement).
    pub html: String,
    /// Whether the page uses heavier evasion (drives Table 11's
    /// non-squatting column).
    pub evasive: bool,
}

/// Feed-shape parameters.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Total reported URLs (paper: 6,755).
    pub total_urls: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            total_urls: 6_755,
            seed: 0xF15D,
        }
    }
}

/// Per-brand shares of the top-8 (Table 5): (label, URL share of total,
/// still-phishing rate).
const TOP8: &[(&str, f64, f64)] = &[
    ("paypal", 0.193, 348.0 / 1306.0),
    ("facebook", 0.156, 734.0 / 1059.0),
    ("microsoft", 0.086, 285.0 / 580.0),
    ("santander", 0.050, 30.0 / 336.0),
    ("google", 0.032, 95.0 / 218.0),
    ("ebay", 0.028, 90.0 / 189.0),
    ("adobe", 0.024, 79.0 / 166.0),
    ("dropbox", 0.022, 70.0 / 150.0),
];

/// Hosting-domain patterns for non-squatting phishing (free hosting
/// dominates — 000webhostapp was the paper's top host).
const HOSTS: &[&str] = &[
    "site{i}.000webhostapp.com",
    "files-{i}.sites.google.example",
    "share-{i}.drive.google.example",
    "login-update{i}.web.example",
    "verify{i}.hostfree.example",
    "account-{i}.securehost.example",
];

/// The generated ground-truth feed.
#[derive(Debug, Clone)]
pub struct GroundTruthFeed {
    /// All reported entries.
    pub entries: Vec<FeedEntry>,
}

impl GroundTruthFeed {
    /// Generates the feed deterministically.
    pub fn generate(registry: &BrandRegistry, config: &FeedConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut entries = Vec::with_capacity(config.total_urls);

        // Brand plan: top-8 fixed shares; remainder spread over the other
        // PhishTank-target brands (138 brands got submissions in total).
        let mut plan: Vec<(BrandId, usize, f64)> = Vec::new();
        let mut used = 0usize;
        for (label, share, valid_rate) in TOP8 {
            let brand = registry
                .by_label(label)
                .unwrap_or_else(|| panic!("brand {label} missing from registry"));
            let n = (config.total_urls as f64 * share).round() as usize;
            plan.push((brand.id, n, *valid_rate));
            used += n;
        }
        let rest_brands: Vec<BrandId> = registry
            .phishtank_targets()
            .filter(|b| !TOP8.iter().any(|(l, ..)| *l == b.label))
            .take(130)
            .map(|b| b.id)
            .collect();
        let remaining = config.total_urls.saturating_sub(used);
        if !rest_brands.is_empty() {
            // Skewed tail: earlier brands get more.
            let weights: Vec<f64> = (0..rest_brands.len())
                .map(|i| 1.0 / (i as f64 + 2.0))
                .collect();
            let total_w: f64 = weights.iter().sum();
            for (i, &b) in rest_brands.iter().enumerate() {
                let n = ((weights[i] / total_w) * remaining as f64).round() as usize;
                plan.push((b, n.max(1), 0.45));
            }
        }

        for (brand_id, count, valid_rate) in plan {
            let brand = registry.get(brand_id).expect("planned brand exists");
            for k in 0..count {
                let rank = sample_rank(&mut rng);
                // Figure 7: ~8.8% combo, a whisper of homograph/typo.
                let squat_type = match rng.gen_range(0..10000u32) {
                    0..=5 => Some(SquatType::Homograph),
                    6..=10 => Some(SquatType::Typo),
                    11..=887 => Some(SquatType::Combo),
                    _ => None,
                };
                let host = match squat_type {
                    Some(SquatType::Combo) => {
                        format!(
                            "{}-{}{k}.com",
                            brand.label,
                            ["secure", "login", "verify"][k % 3]
                        )
                    }
                    Some(SquatType::Homograph) => {
                        format!("{}.online", pages::obfuscate_brand_text(&brand.label))
                    }
                    Some(SquatType::Typo) => format!("{}s.center", brand.label),
                    _ => {
                        let tpl = HOSTS[rng.gen_range(0..HOSTS.len())];
                        tpl.replace("{i}", &format!("{}{k}", &brand.label[..2]))
                    }
                };
                let still_phishing = rng.gen_bool(valid_rate);
                let evasive = rng.gen_bool(0.36); // Table 11 string-obf rate
                let html = if still_phishing {
                    pages::non_squatting_phishing_page(brand, evasive, &host, k as u64)
                } else if rng.gen_bool(0.5) {
                    pages::benign_page(&host, k as u64)
                } else {
                    pages::confusing_benign_page(&host, Some(&brand.label), k as u64)
                };
                entries.push(FeedEntry {
                    host,
                    brand: brand_id,
                    rank,
                    squat_type,
                    still_phishing,
                    html,
                    evasive,
                });
            }
        }
        GroundTruthFeed { entries }
    }

    /// Entries for the top-8 brands (the manually-verified subset).
    pub fn top8(&self, registry: &BrandRegistry) -> Vec<&FeedEntry> {
        let ids: Vec<BrandId> = TOP8
            .iter()
            .filter_map(|(l, ..)| registry.by_label(l).map(|b| b.id))
            .collect();
        self.entries
            .iter()
            .filter(|e| ids.contains(&e.brand))
            .collect()
    }

    /// The top-8 labels in feed order.
    pub fn top8_labels() -> Vec<&'static str> {
        TOP8.iter().map(|(l, ..)| *l).collect()
    }
}

fn sample_rank(rng: &mut StdRng) -> RankBucket {
    // Figure 6 bucket weights: 246 / 1042 / 444 / 274 / 4749.
    match rng.gen_range(0..6755u32) {
        0..=245 => RankBucket::Top1K,
        246..=1287 => RankBucket::To10K,
        1288..=1731 => RankBucket::To100K,
        1732..=2005 => RankBucket::To1M,
        _ => RankBucket::Beyond1M,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed() -> (GroundTruthFeed, BrandRegistry) {
        let registry = BrandRegistry::paper();
        let feed = GroundTruthFeed::generate(&registry, &FeedConfig::default());
        (feed, registry)
    }

    #[test]
    fn feed_size_near_paper() {
        let (f, _) = feed();
        let n = f.entries.len();
        assert!((6400..=7100).contains(&n), "feed size {n}");
    }

    #[test]
    fn top8_share_is_59_percent() {
        let (f, reg) = feed();
        let share = f.top8(&reg).len() as f64 / f.entries.len() as f64;
        assert!((share - 0.591).abs() < 0.03, "top8 share {share}");
    }

    #[test]
    fn most_entries_are_not_squatting() {
        let (f, _) = feed();
        let none = f.entries.iter().filter(|e| e.squat_type.is_none()).count();
        let frac = none as f64 / f.entries.len() as f64;
        assert!((frac - 0.91).abs() < 0.03, "non-squatting fraction {frac}");
    }

    #[test]
    fn combo_dominates_squatting_entries() {
        let (f, _) = feed();
        let combo = f
            .entries
            .iter()
            .filter(|e| e.squat_type == Some(SquatType::Combo))
            .count();
        let other_squat = f
            .entries
            .iter()
            .filter(|e| e.squat_type.is_some() && e.squat_type != Some(SquatType::Combo))
            .count();
        assert!(
            combo > other_squat * 20,
            "combo {combo} vs other {other_squat}"
        );
    }

    #[test]
    fn rank_mix_matches_figure6() {
        let (f, _) = feed();
        let beyond = f
            .entries
            .iter()
            .filter(|e| e.rank == RankBucket::Beyond1M)
            .count();
        let frac = beyond as f64 / f.entries.len() as f64;
        assert!((frac - 0.70).abs() < 0.04, "beyond-1M fraction {frac}");
    }

    #[test]
    fn still_phishing_rate_top8_near_43_percent() {
        let (f, reg) = feed();
        let top8 = f.top8(&reg);
        let valid = top8.iter().filter(|e| e.still_phishing).count();
        let rate = valid as f64 / top8.len() as f64;
        assert!((rate - 0.432).abs() < 0.05, "valid rate {rate}");
    }

    #[test]
    fn facebook_more_durable_than_paypal() {
        // Table 5: facebook 69% valid vs paypal 27%.
        let (f, reg) = feed();
        let rate = |label: &str| {
            let id = reg.by_label(label).unwrap().id;
            let all: Vec<_> = f.entries.iter().filter(|e| e.brand == id).collect();
            all.iter().filter(|e| e.still_phishing).count() as f64 / all.len() as f64
        };
        assert!(rate("facebook") > rate("paypal") + 0.2);
    }

    #[test]
    fn phishing_entries_have_forms_and_mostly_passwords() {
        let (f, _) = feed();
        let sample: Vec<_> = f
            .entries
            .iter()
            .filter(|e| e.still_phishing)
            .take(50)
            .collect();
        let mut with_password = 0usize;
        for e in &sample {
            let doc = squatphi_html::parse(&e.html);
            let forms = squatphi_html::extract::extract_forms(&doc);
            assert!(
                !forms.is_empty(),
                "phishing entry {} has no form at all",
                e.host
            );
            if forms.iter().any(|fm| fm.has_password()) {
                with_password += 1;
            }
        }
        // A small slice are two-step logins (email first, password later);
        // the rest must ask for a password directly.
        assert!(
            with_password * 10 >= sample.len() * 8,
            "only {with_password}/{} phishing entries have password forms",
            sample.len()
        );
    }

    #[test]
    fn deterministic() {
        let registry = BrandRegistry::paper();
        let a = GroundTruthFeed::generate(&registry, &FeedConfig::default());
        let b = GroundTruthFeed::generate(&registry, &FeedConfig::default());
        assert_eq!(a.entries.len(), b.entries.len());
        assert_eq!(a.entries[0].host, b.entries[0].host);
        assert_eq!(a.entries[100].html, b.entries[100].html);
    }
}
