//! Blacklist detection-latency models (paper §6.3, Table 12).

use squatphi_web::world::fxhash;

/// What kind of phishing a domain hosts (squatting vs ordinary); drives
/// how fast blacklists catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhishKind {
    /// Squatting phishing — the paper's subject; blacklists almost never
    /// catch these within a month (91.5% undetected).
    Squatting,
    /// Ordinary phishing on compromised/free hosting — typically
    /// blacklisted within ~10 days (per the PhishEye measurements the
    /// paper cites).
    NonSquatting,
}

/// What the aggregated blacklist check returned for one domain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlacklistReport {
    /// Flagged by PhishTank.
    pub phishtank: bool,
    /// Number of VirusTotal engines (0..=70) flagging the domain.
    pub virustotal_engines: u8,
    /// Flagged by eCrimeX.
    pub ecrimex: bool,
}

impl BlacklistReport {
    /// Whether any list caught the domain.
    pub fn detected(&self) -> bool {
        self.phishtank || self.virustotal_engines > 0 || self.ecrimex
    }
}

/// The blacklist ecosystem model.
///
/// Detection is a deterministic function of (domain, kind, age): each
/// domain hashes to a latent "catchability" and each list has a coverage
/// level and a latency curve.
#[derive(Debug, Clone, Default)]
pub struct Blacklists;

impl Blacklists {
    /// New model.
    pub fn new() -> Self {
        Blacklists
    }

    /// Checks one domain `days` after its phishing page went live.
    pub fn check(&self, domain: &str, kind: PhishKind, days: u32) -> BlacklistReport {
        let h = fxhash(domain);
        match kind {
            PhishKind::Squatting => {
                // Table 12 after one month: PhishTank 0/1175, VT 100/1175
                // (8.5%), eCrimeX 2/1175 (0.2%).
                let vt_caught = (h % 1000) < Self::ramp(85, days);
                let ecx_caught = (h / 7 % 1000) < Self::ramp(2, days);
                BlacklistReport {
                    phishtank: false,
                    virustotal_engines: if vt_caught { (1 + h % 5) as u8 } else { 0 },
                    ecrimex: ecx_caught,
                }
            }
            PhishKind::NonSquatting => {
                // Ordinary phishing: ~10-day median lifetime before
                // blacklisting; after 30 days nearly everything is listed.
                let threshold = match days {
                    0..=2 => 150,
                    3..=6 => 400,
                    7..=13 => 650,
                    14..=29 => 850,
                    _ => 950,
                };
                let caught = (h % 1000) < threshold;
                BlacklistReport {
                    phishtank: caught && h.is_multiple_of(3),
                    virustotal_engines: if caught { (3 + h % 20) as u8 } else { 0 },
                    ecrimex: caught && h.is_multiple_of(5),
                }
            }
        }
    }

    /// The blacklist lag for `domain`: the first day within
    /// `0..=horizon_days` at which any list flags it, or `None` if it
    /// stays undetected over the whole horizon. Detection is monotone
    /// in time, so this is the exact lag a streaming watcher observes
    /// when it replays the feed day by day (paper §6.3: for squatting
    /// phishing the answer is usually `None` — 91.5% undetected after
    /// a month).
    pub fn detection_day(&self, domain: &str, kind: PhishKind, horizon_days: u32) -> Option<u32> {
        (0..=horizon_days).find(|&d| self.check(domain, kind, d).detected())
    }

    /// Linear ramp to `at_30` per-mille over 30 days.
    fn ramp(at_30: u64, days: u32) -> u64 {
        at_30 * (days.min(30) as u64) / 30
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domains(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("squat-phish{i}.com")).collect()
    }

    #[test]
    fn squatting_mostly_undetected_after_a_month() {
        let bl = Blacklists::new();
        let n = 1175;
        let detected = domains(n)
            .iter()
            .filter(|d| bl.check(d, PhishKind::Squatting, 30).detected())
            .count();
        let rate = detected as f64 / n as f64;
        // Paper: 8.5% detected → 91.5% undetected.
        assert!((rate - 0.085).abs() < 0.03, "detection rate {rate}");
    }

    #[test]
    fn phishtank_never_flags_squatting() {
        let bl = Blacklists::new();
        for d in domains(500) {
            assert!(!bl.check(&d, PhishKind::Squatting, 30).phishtank);
        }
    }

    #[test]
    fn non_squatting_caught_quickly() {
        let bl = Blacklists::new();
        let n = 1000;
        let at_10 = domains(n)
            .iter()
            .filter(|d| bl.check(d, PhishKind::NonSquatting, 10).detected())
            .count() as f64
            / n as f64;
        let at_30 = domains(n)
            .iter()
            .filter(|d| bl.check(d, PhishKind::NonSquatting, 30).detected())
            .count() as f64
            / n as f64;
        assert!(at_10 > 0.5, "10-day rate {at_10}");
        assert!(at_30 > 0.9, "30-day rate {at_30}");
    }

    #[test]
    fn detection_is_monotone_in_time() {
        let bl = Blacklists::new();
        for d in domains(200) {
            for kind in [PhishKind::Squatting, PhishKind::NonSquatting] {
                let early = bl.check(&d, kind, 3).detected();
                let late = bl.check(&d, kind, 30).detected();
                assert!(!early || late, "{d} detected early but not late");
            }
        }
    }

    #[test]
    fn detection_day_is_the_first_detected_day() {
        let bl = Blacklists::new();
        let mut caught = 0u32;
        for d in domains(300) {
            match bl.detection_day(&d, PhishKind::NonSquatting, 30) {
                Some(day) => {
                    caught += 1;
                    assert!(bl.check(&d, PhishKind::NonSquatting, day).detected());
                    if day > 0 {
                        assert!(!bl.check(&d, PhishKind::NonSquatting, day - 1).detected());
                    }
                }
                None => assert!(!bl.check(&d, PhishKind::NonSquatting, 30).detected()),
            }
        }
        assert!(caught > 200, "only {caught}/300 ordinary phish caught");
    }

    #[test]
    fn squatting_lag_mostly_unbounded() {
        let bl = Blacklists::new();
        let undetected = domains(400)
            .iter()
            .filter(|d| bl.detection_day(d, PhishKind::Squatting, 30).is_none())
            .count();
        assert!(undetected > 320, "only {undetected}/400 squats uncaught");
    }

    #[test]
    fn deterministic() {
        let bl = Blacklists::new();
        assert_eq!(
            bl.check("goofle.com.ua", PhishKind::Squatting, 30),
            bl.check("goofle.com.ua", PhishKind::Squatting, 30)
        );
    }

    #[test]
    fn engine_counts_bounded() {
        let bl = Blacklists::new();
        for d in domains(300) {
            let r = bl.check(&d, PhishKind::NonSquatting, 30);
            assert!(r.virustotal_engines <= 70);
        }
    }
}
