//! Ground-truth feed and blacklist substitutes (paper §4.1, §6.3).
//!
//! * [`phishtank`] — a PhishTank-like crowdsourced feed: 6,755 reported
//!   URLs over 138 brands with the paper's brand skew (top-8 = 59.1%),
//!   Alexa-rank mix (Figure 6), squatting mix (Figure 7 — 91% not
//!   squatting), and the 43.2% still-phishing-at-crawl rate that drives
//!   ground-truth labeling (Table 5),
//! * [`blacklist`] — detection-latency models for PhishTank, VirusTotal
//!   (70 engines) and eCrimeX, calibrated to Table 12: squatting
//!   phishing stays undetected for ≥ a month 91.5% of the time, while
//!   ordinary phishing on compromised hosts is blacklisted in ~10 days.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blacklist;
pub mod phishtank;
pub mod report;

pub use blacklist::{BlacklistReport, Blacklists, PhishKind};
pub use phishtank::{FeedConfig, FeedEntry, GroundTruthFeed, RankBucket};
