//! Reporting workflow simulation (paper §7 "Reporting Phishing Websites").
//!
//! The authors reported their 1,015 still-live phishing URLs to Google
//! Safe Browsing by hand: blacklists don't take batch submissions, apply
//! strict rate limits and CAPTCHAs. This module models that funnel so a
//! deployment can plan a disclosure campaign: a submission queue with a
//! per-day budget, per-submission acceptance odds, and a projection of
//! how long clearing a backlog takes.

use squatphi_web::world::fxhash;

/// One queued report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The phishing domain being reported.
    pub domain: String,
    /// Day (0-based) the report was submitted, `None` while queued.
    pub submitted_on: Option<u32>,
    /// Whether the blacklist accepted the report.
    pub accepted: bool,
}

/// The submission funnel's parameters.
#[derive(Debug, Clone)]
pub struct ReportingPolicy {
    /// Manual submissions a reporter can push per day (rate limits +
    /// CAPTCHAs cap this far below the backlog size).
    pub submissions_per_day: usize,
    /// Acceptance probability per submission (per-mille) — blacklists
    /// reject duplicates, dead pages, and anything their own re-check
    /// can't confirm.
    pub acceptance_per_mille: u32,
}

impl Default for ReportingPolicy {
    fn default() -> Self {
        // ~1,015 URLs submitted "one by one manually" over days of work.
        ReportingPolicy {
            submissions_per_day: 120,
            acceptance_per_mille: 850,
        }
    }
}

/// Outcome of a campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// All reports in submission order.
    pub reports: Vec<Report>,
    /// Days needed to drain the queue.
    pub days: u32,
    /// Accepted count.
    pub accepted: usize,
}

/// Simulates submitting `domains` under `policy`. Deterministic: the
/// acceptance draw hashes the domain.
pub fn run_campaign(domains: &[String], policy: &ReportingPolicy) -> CampaignOutcome {
    let mut outcome = CampaignOutcome::default();
    let per_day = policy.submissions_per_day.max(1);
    for (i, domain) in domains.iter().enumerate() {
        let day = (i / per_day) as u32;
        let accepted = fxhash(domain) % 1000 < policy.acceptance_per_mille as u64;
        outcome.accepted += usize::from(accepted);
        outcome.reports.push(Report {
            domain: domain.clone(),
            submitted_on: Some(day),
            accepted,
        });
    }
    outcome.days = domains.len().div_ceil(per_day) as u32;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domains(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("phish{i}.example")).collect()
    }

    #[test]
    fn paper_scale_campaign_takes_days() {
        // 1,015 URLs at ~120/day ≈ 9 days of manual work.
        let outcome = run_campaign(&domains(1_015), &ReportingPolicy::default());
        assert_eq!(outcome.days, 9);
        assert_eq!(outcome.reports.len(), 1_015);
        let rate = outcome.accepted as f64 / 1_015.0;
        assert!((rate - 0.85).abs() < 0.05, "acceptance rate {rate}");
    }

    #[test]
    fn submission_days_are_sequential() {
        let policy = ReportingPolicy {
            submissions_per_day: 10,
            acceptance_per_mille: 1000,
        };
        let outcome = run_campaign(&domains(25), &policy);
        assert_eq!(outcome.reports[0].submitted_on, Some(0));
        assert_eq!(outcome.reports[9].submitted_on, Some(0));
        assert_eq!(outcome.reports[10].submitted_on, Some(1));
        assert_eq!(outcome.reports[24].submitted_on, Some(2));
        assert_eq!(outcome.days, 3);
        assert_eq!(outcome.accepted, 25);
    }

    #[test]
    fn empty_queue_is_zero_days() {
        let outcome = run_campaign(&[], &ReportingPolicy::default());
        assert_eq!(outcome.days, 0);
        assert!(outcome.reports.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = run_campaign(&domains(100), &ReportingPolicy::default());
        let b = run_campaign(&domains(100), &ReportingPolicy::default());
        assert_eq!(a, b);
    }
}
