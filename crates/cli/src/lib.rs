//! Library backing the `squatphi` command-line tool.
//!
//! The paper open-sourced its tooling as standalone utilities; this crate
//! is that deliverable for the reproduction. Every subcommand is a plain
//! function over a parsed [`cli::Command`], so the logic is testable
//! without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod commands;

pub use cli::{parse_args, CliError, Command};
