//! Argument parsing for the `squatphi` binary (std-only, no clap).

use squatphi::DiskFaultPlan;
use squatphi_crawler::{FaultPlan, FetchClass};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `squatphi gen <brand> [--limit N]` — candidate squatting domains.
    Gen {
        /// Brand label to generate for.
        brand: String,
        /// Max candidates per squatting type.
        limit: usize,
    },
    /// `squatphi classify <domain>...` — squatting classification.
    Classify {
        /// Domains to classify.
        domains: Vec<String>,
    },
    /// `squatphi scan <zonefile> [--type TYPE] [--threads N] [--json]
    /// [--timings]` — scan a zone file for squatting domains.
    Scan {
        /// Zone file path.
        path: String,
        /// Only print matches of this type (paper name, e.g. `Combo`).
        type_filter: Option<String>,
        /// Scan worker threads.
        threads: usize,
        /// Emit the telemetry snapshot as JSON instead of the report.
        json: bool,
        /// Keep wall-clock timing values in the JSON (breaks two-run
        /// byte-identity, so it is opt-in).
        timings: bool,
    },
    /// `squatphi crawl <zonefile> [--threads N] [--retries N]
    /// [--chaos MODE[:CLASS]] [--seed N] [--json] [--timings]` — scan a
    /// zone file, rebuild the web world for the matches, and crawl it
    /// through the full transport middleware stack (optionally under
    /// fault injection).
    Crawl {
        /// Zone file path.
        path: String,
        /// Crawl worker threads.
        threads: usize,
        /// Engine-level retry budget.
        retries: usize,
        /// Fault-injection plan for the chaos layer.
        plan: FaultPlan,
        /// World + chaos seed.
        seed: u64,
        /// Emit the telemetry snapshot as JSON instead of the report.
        json: bool,
        /// Keep wall-clock timing values in the JSON (opt-in).
        timings: bool,
    },
    /// `squatphi page <file.html> [--brand LABEL]` — audit one page:
    /// forms, OCR text, JS indicators, evasion vs the brand page, and a
    /// phishing score.
    Page {
        /// HTML file path.
        path: String,
        /// Brand to measure evasion against.
        brand: Option<String>,
    },
    /// `squatphi render <file.html> [--width N]` — ASCII screenshot.
    Render {
        /// HTML file path.
        path: String,
        /// Output columns.
        width: usize,
    },
    /// `squatphi conformance [--seed N] [--budget ci|full] [--json]
    /// [--timings] [--report FILE]` — run the seeded conformance oracles
    /// (generator↔detector differential, codec round trips, never-panic
    /// fuzzing).
    Conformance {
        /// Seed for the randomized oracle halves.
        seed: u64,
        /// Budget name (`ci` | `full`).
        budget: String,
        /// Emit the machine-readable JSON summary instead of the table.
        json: bool,
        /// Include per-oracle wall-clock nanos (breaks byte-for-byte
        /// determinism between runs, so it is opt-in).
        timings: bool,
        /// Also write the (timing-free) JSON report to this file — set
        /// regardless of pass/fail so CI can upload shrunk inputs.
        report: Option<String>,
    },
    /// `squatphi watch [--seed N] [--events N] [--brands N] [--threads N]
    /// [--stop-after N] [--checkpoint DIR] [--resume]
    /// [--disk-faults SPEC] [--disk-fault-seed N] [--json]` — run the
    /// streaming detection daemon over the seeded registration feed.
    Watch {
        /// Stream + world seed.
        seed: u64,
        /// Total feed events to consume.
        events: u64,
        /// Monitored brands.
        brands: usize,
        /// Worker threads (never affects outputs).
        threads: usize,
        /// Stop once this many events have been injected (checkpointing
        /// first when `--checkpoint` is set).
        stop_after: Option<u64>,
        /// Watermark checkpoint directory.
        checkpoint_dir: Option<String>,
        /// Resume from the watermark checkpoint.
        resume: bool,
        /// Seeded disk-fault plan injected under the checkpoint store.
        disk_faults: DiskFaultPlan,
        /// Emit the machine-readable JSON summary instead of the report.
        json: bool,
        /// Keep wall-clock timing values in the JSON (opt-in; virtual
        /// `backoff_ns` totals are deterministic and always included).
        timings: bool,
    },
    /// `squatphi help`.
    Help,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The usage text.
pub const USAGE: &str = "\
squatphi — squatting-phishing tooling (IMC '18 reproduction)

USAGE:
  squatphi gen <brand> [--limit N]          candidate squatting domains
  squatphi classify <domain>...             classify domains against 702 brands
  squatphi scan <zone-file> [--type T] [--threads N] [--json] [--timings]
                                            scan a zone file for squatting
  squatphi crawl <zone-file> [--threads N] [--retries N]
                 [--chaos MODE[:CLASS]] [--seed N] [--json] [--timings]
                                            scan, then crawl the matches through
                                            the fault-tolerant transport stack
                                            (MODE: none | first-K | every-K |
                                            permille-P; CLASS: timeout | refused |
                                            truncated | injected)
  squatphi page <file.html> [--brand L]     audit a page (forms/OCR/JS/score)
  squatphi render <file.html> [--width N]   ASCII screenshot of a page
  squatphi conformance [--seed N] [--budget ci|full] [--json] [--timings]
                       [--report FILE]
                                            run the seeded conformance oracles
                                            (differential, round-trip, fuzz);
                                            exits non-zero on any violation
  squatphi watch [--seed N] [--events N] [--brands N] [--threads N]
                 [--stop-after N] [--checkpoint DIR] [--resume]
                 [--disk-faults SPEC] [--disk-fault-seed N] [--json]
                 [--timings]
                                            streaming detection daemon: ingest
                                            the seeded registration feed through
                                            bounded detect + re-crawl stages
                                            with watermark checkpoints
                                            (SPEC: comma-separated torn-at-byte-N |
                                            bitflip-permille-P | enospc-after-N |
                                            crash-at-write-K clauses, or none)
  squatphi help                             this text

Every --json surface strips wall-clock timing values by default (one
telemetry-layer rule), so two identical runs emit byte-identical JSON;
pass --timings to keep them.
";

/// Parses argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "gen" => {
            let mut brand = None;
            let mut limit = 10usize;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--limit" => {
                        i += 1;
                        limit = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--limit needs a positive integer"))?;
                    }
                    other if brand.is_none() => brand = Some(other.to_string()),
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Gen {
                brand: brand.ok_or_else(|| err("gen needs a brand label"))?,
                limit,
            })
        }
        "classify" => {
            let domains: Vec<String> = it.cloned().collect();
            if domains.is_empty() {
                return Err(err("classify needs at least one domain"));
            }
            Ok(Command::Classify { domains })
        }
        "scan" => {
            let mut path = None;
            let mut type_filter = None;
            let mut threads = 8usize;
            let mut json = false;
            let mut timings = false;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--type" => {
                        i += 1;
                        type_filter = Some(
                            rest.get(i)
                                .ok_or_else(|| err("--type needs a value"))?
                                .to_string(),
                        );
                    }
                    "--threads" => {
                        i += 1;
                        threads = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--threads needs a positive integer"))?;
                    }
                    "--json" => json = true,
                    "--timings" => timings = true,
                    other if path.is_none() => path = Some(other.to_string()),
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Scan {
                path: path.ok_or_else(|| err("scan needs a zone-file path"))?,
                type_filter,
                threads: threads.max(1),
                json,
                timings,
            })
        }
        "crawl" => {
            let mut path = None;
            let mut threads = 8usize;
            let mut retries = 1usize;
            let mut chaos: Option<String> = None;
            let mut seed = 0u64;
            let mut json = false;
            let mut timings = false;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--threads" => {
                        i += 1;
                        threads = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("--threads needs a positive integer"))?;
                    }
                    "--retries" => {
                        i += 1;
                        retries = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--retries needs a non-negative integer"))?;
                    }
                    "--chaos" => {
                        i += 1;
                        chaos = Some(
                            rest.get(i)
                                .ok_or_else(|| err("--chaos needs MODE[:CLASS]"))?
                                .to_string(),
                        );
                    }
                    "--seed" => {
                        i += 1;
                        seed = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--seed needs an integer"))?;
                    }
                    "--json" => json = true,
                    "--timings" => timings = true,
                    other if path.is_none() => path = Some(other.to_string()),
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            let plan = parse_fault_plan(chaos.as_deref().unwrap_or("none"), seed)?;
            Ok(Command::Crawl {
                path: path.ok_or_else(|| err("crawl needs a zone-file path"))?,
                threads,
                retries,
                plan,
                seed,
                json,
                timings,
            })
        }
        "page" => {
            let mut path = None;
            let mut brand = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--brand" => {
                        i += 1;
                        brand = Some(
                            rest.get(i)
                                .ok_or_else(|| err("--brand needs a label"))?
                                .to_string(),
                        );
                    }
                    other if path.is_none() => path = Some(other.to_string()),
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Page {
                path: path.ok_or_else(|| err("page needs an HTML file path"))?,
                brand,
            })
        }
        "render" => {
            let mut path = None;
            let mut width = 80usize;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--width" => {
                        i += 1;
                        width = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--width needs a positive integer"))?;
                    }
                    other if path.is_none() => path = Some(other.to_string()),
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Render {
                path: path.ok_or_else(|| err("render needs an HTML file path"))?,
                width: width.max(8),
            })
        }
        "conformance" => {
            let mut seed = 1u64;
            let mut budget = "ci".to_string();
            let mut json = false;
            let mut timings = false;
            let mut report = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--seed" => {
                        i += 1;
                        seed = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--seed needs an integer"))?;
                    }
                    "--budget" => {
                        i += 1;
                        budget = rest
                            .get(i)
                            .ok_or_else(|| err("--budget needs a value (ci | full)"))?
                            .to_string();
                    }
                    "--json" => json = true,
                    "--timings" => timings = true,
                    "--report" => {
                        i += 1;
                        report = Some(
                            rest.get(i)
                                .ok_or_else(|| err("--report needs a file path"))?
                                .to_string(),
                        );
                    }
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Conformance {
                seed,
                budget,
                json,
                timings,
                report,
            })
        }
        "watch" => {
            let mut seed = 20180401u64;
            let mut events = 2000u64;
            let mut brands = 40usize;
            let mut threads = 4usize;
            let mut stop_after = None;
            let mut checkpoint_dir = None;
            let mut resume = false;
            let mut disk_faults_spec: Option<String> = None;
            let mut disk_fault_seed = 0u64;
            let mut json = false;
            let mut timings = false;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--seed" => {
                        i += 1;
                        seed = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--seed needs an integer"))?;
                    }
                    "--events" => {
                        i += 1;
                        events = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("--events needs a positive integer"))?;
                    }
                    "--brands" => {
                        i += 1;
                        brands = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("--brands needs a positive integer"))?;
                    }
                    "--threads" => {
                        i += 1;
                        threads = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("--threads needs a positive integer"))?;
                    }
                    "--stop-after" => {
                        i += 1;
                        stop_after = Some(
                            rest.get(i)
                                .and_then(|s| s.parse().ok())
                                .filter(|&n| n > 0)
                                .ok_or_else(|| err("--stop-after needs a positive integer"))?,
                        );
                    }
                    "--checkpoint" => {
                        i += 1;
                        checkpoint_dir = Some(
                            rest.get(i)
                                .ok_or_else(|| err("--checkpoint needs a directory"))?
                                .to_string(),
                        );
                    }
                    "--resume" => resume = true,
                    "--disk-faults" => {
                        i += 1;
                        disk_faults_spec = Some(
                            rest.get(i)
                                .ok_or_else(|| err("--disk-faults needs a plan spec"))?
                                .to_string(),
                        );
                    }
                    "--disk-fault-seed" => {
                        i += 1;
                        disk_fault_seed = rest
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("--disk-fault-seed needs an integer"))?;
                    }
                    "--json" => json = true,
                    "--timings" => timings = true,
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            if resume && checkpoint_dir.is_none() {
                return Err(err("--resume requires --checkpoint DIR"));
            }
            let disk_faults = DiskFaultPlan::parse(disk_faults_spec.as_deref().unwrap_or("none"))
                .map_err(|e| err(format!("--disk-faults: {e}")))?
                .with_seed(disk_fault_seed);
            if !disk_faults.is_none() && checkpoint_dir.is_none() {
                return Err(err("--disk-faults requires --checkpoint DIR"));
            }
            Ok(Command::Watch {
                seed,
                events,
                brands,
                threads,
                stop_after,
                checkpoint_dir,
                resume,
                disk_faults,
                json,
                timings,
            })
        }
        other => Err(err(format!(
            "unknown subcommand {other:?} (try `squatphi help`)"
        ))),
    }
}

/// Parses a `--chaos` spec — `MODE[:CLASS]` where MODE is `none`,
/// `first-K`, `every-K` or `permille-P` and CLASS is a
/// [`FetchClass`] name (default `injected`).
fn parse_fault_plan(spec: &str, seed: u64) -> Result<FaultPlan, CliError> {
    let (mode, class) = match spec.split_once(':') {
        Some((m, c)) => (
            m,
            FetchClass::parse(c)
                .ok_or_else(|| err(format!("unknown error class {c:?} in --chaos")))?,
        ),
        None => (spec, FetchClass::Injected),
    };
    let plan = if mode == "none" {
        FaultPlan::none()
    } else if let Some(k) = mode.strip_prefix("first-") {
        FaultPlan::fail_first(
            k.parse()
                .map_err(|_| err("--chaos first-K needs an integer K"))?,
        )
    } else if let Some(k) = mode.strip_prefix("every-") {
        FaultPlan::fail_every(
            k.parse()
                .map_err(|_| err("--chaos every-K needs an integer K >= 1"))?,
        )
    } else if let Some(p) = mode.strip_prefix("permille-") {
        FaultPlan::fail_permille(
            p.parse()
                .map_err(|_| err("--chaos permille-P needs an integer P in 0..=1000"))?,
        )
    } else {
        return Err(err(format!(
            "unknown --chaos mode {mode:?} (none | first-K | every-K | permille-P)"
        )));
    };
    Ok(plan.with_class(class).with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_gen() {
        assert_eq!(
            parse_args(&args("gen facebook --limit 5")).unwrap(),
            Command::Gen {
                brand: "facebook".into(),
                limit: 5
            }
        );
        assert_eq!(
            parse_args(&args("gen paypal")).unwrap(),
            Command::Gen {
                brand: "paypal".into(),
                limit: 10
            }
        );
        assert!(parse_args(&args("gen")).is_err());
        assert!(parse_args(&args("gen a b")).is_err());
    }

    #[test]
    fn parses_classify() {
        assert_eq!(
            parse_args(&args("classify faceb00k.pw goofle.com.ua")).unwrap(),
            Command::Classify {
                domains: vec!["faceb00k.pw".into(), "goofle.com.ua".into()]
            }
        );
        assert!(parse_args(&args("classify")).is_err());
    }

    #[test]
    fn parses_scan() {
        assert_eq!(
            parse_args(&args("scan zone.txt --type Combo --threads 4")).unwrap(),
            Command::Scan {
                path: "zone.txt".into(),
                type_filter: Some("Combo".into()),
                threads: 4,
                json: false,
                timings: false
            }
        );
        assert_eq!(
            parse_args(&args("scan zone.txt --json --timings")).unwrap(),
            Command::Scan {
                path: "zone.txt".into(),
                type_filter: None,
                threads: 8,
                json: true,
                timings: true
            }
        );
        assert!(parse_args(&args("scan --type Combo")).is_err());
    }

    #[test]
    fn parses_crawl() {
        assert_eq!(
            parse_args(&args("crawl zone.txt")).unwrap(),
            Command::Crawl {
                path: "zone.txt".into(),
                threads: 8,
                retries: 1,
                plan: FaultPlan::none(),
                seed: 0,
                json: false,
                timings: false
            }
        );
        assert_eq!(
            parse_args(&args(
                "crawl zone.txt --threads 4 --retries 0 --chaos every-2:timeout --seed 9 \
                 --json --timings"
            ))
            .unwrap(),
            Command::Crawl {
                path: "zone.txt".into(),
                threads: 4,
                retries: 0,
                plan: FaultPlan::fail_every(2)
                    .with_class(FetchClass::Timeout)
                    .with_seed(9),
                seed: 9,
                json: true,
                timings: true
            }
        );
        assert!(parse_args(&args("crawl")).is_err());
        assert!(parse_args(&args("crawl zone.txt --threads 0")).is_err());
        assert!(parse_args(&args("crawl zone.txt --chaos bogus")).is_err());
        assert!(parse_args(&args("crawl zone.txt --chaos first-1:nonsense")).is_err());
    }

    #[test]
    fn fault_plan_spec_roundtrips() {
        assert_eq!(parse_fault_plan("none", 0).unwrap(), FaultPlan::none());
        assert_eq!(
            parse_fault_plan("first-3", 1).unwrap(),
            FaultPlan::fail_first(3).with_seed(1)
        );
        assert_eq!(
            parse_fault_plan("permille-250:truncated", 7).unwrap(),
            FaultPlan::fail_permille(250)
                .with_class(FetchClass::Truncated)
                .with_seed(7)
        );
        assert!(parse_fault_plan("every-x", 0).is_err());
    }

    #[test]
    fn parses_page_and_render() {
        assert_eq!(
            parse_args(&args("page p.html --brand paypal")).unwrap(),
            Command::Page {
                path: "p.html".into(),
                brand: Some("paypal".into())
            }
        );
        assert_eq!(
            parse_args(&args("render p.html --width 60")).unwrap(),
            Command::Render {
                path: "p.html".into(),
                width: 60
            }
        );
        assert!(parse_args(&args("render --width 60")).is_err());
    }

    #[test]
    fn parses_conformance() {
        assert_eq!(
            parse_args(&args("conformance")).unwrap(),
            Command::Conformance {
                seed: 1,
                budget: "ci".into(),
                json: false,
                timings: false,
                report: None
            }
        );
        assert_eq!(
            parse_args(&args(
                "conformance --seed 7 --budget full --json --timings --report out.json"
            ))
            .unwrap(),
            Command::Conformance {
                seed: 7,
                budget: "full".into(),
                json: true,
                timings: true,
                report: Some("out.json".into())
            }
        );
        assert!(parse_args(&args("conformance --seed")).is_err());
        assert!(parse_args(&args("conformance bogus")).is_err());
    }

    #[test]
    fn parses_watch() {
        assert_eq!(
            parse_args(&args("watch")).unwrap(),
            Command::Watch {
                seed: 20180401,
                events: 2000,
                brands: 40,
                threads: 4,
                stop_after: None,
                checkpoint_dir: None,
                resume: false,
                disk_faults: DiskFaultPlan::none(),
                json: false,
                timings: false
            }
        );
        assert_eq!(
            parse_args(&args(
                "watch --seed 7 --events 500 --brands 12 --threads 2 \
                 --stop-after 100 --checkpoint ckpt --resume --json --timings"
            ))
            .unwrap(),
            Command::Watch {
                seed: 7,
                events: 500,
                brands: 12,
                threads: 2,
                stop_after: Some(100),
                checkpoint_dir: Some("ckpt".into()),
                resume: true,
                disk_faults: DiskFaultPlan::none(),
                json: true,
                timings: true
            }
        );
        assert!(parse_args(&args("watch --events 0")).is_err());
        assert!(parse_args(&args("watch --resume")).is_err());
        assert!(parse_args(&args("watch --stop-after")).is_err());
        assert!(parse_args(&args("watch bogus")).is_err());
    }

    #[test]
    fn parses_watch_disk_faults() {
        let cmd = parse_args(&args(
            "watch --checkpoint ckpt --disk-faults torn-at-byte-60,crash-at-write-2 \
             --disk-fault-seed 9",
        ))
        .unwrap();
        let Command::Watch { disk_faults, .. } = cmd else {
            panic!("parsed a non-watch command");
        };
        assert_eq!(
            disk_faults,
            DiskFaultPlan::parse("torn-at-byte-60,crash-at-write-2")
                .unwrap()
                .with_seed(9)
        );
        // Bad clauses are rejected with the offending clause named.
        let e = parse_args(&args("watch --checkpoint ckpt --disk-faults melt-cpu-5")).unwrap_err();
        assert!(e.0.contains("melt-cpu-5"), "{e}");
        // Disk faults only act on the checkpoint store, so they require one.
        assert!(parse_args(&args("watch --disk-faults torn-at-byte-60")).is_err());
        assert!(parse_args(&args("watch --disk-faults")).is_err());
        assert!(parse_args(&args("watch --disk-fault-seed x")).is_err());
    }

    #[test]
    fn help_and_unknown() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert!(parse_args(&args("bogus")).is_err());
    }
}
