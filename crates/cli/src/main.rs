//! `squatphi` — the command-line front door to the reproduction.

use squatphi_cli::{commands, parse_args, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("squatphi: {e}");
            eprintln!("{}", squatphi_cli::cli::USAGE);
            std::process::exit(2);
        }
    };
    if matches!(cmd, Command::Page { .. }) {
        eprintln!("[squatphi] training the classifier on the ground-truth feed (one-time, ~10s) …");
    }
    match commands::run(&cmd) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("squatphi: {e}");
            std::process::exit(1);
        }
    }
}
