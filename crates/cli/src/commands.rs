//! Subcommand implementations. Every function writes its report into a
//! `String` so tests can assert on output without process spawning.

use crate::cli::Command;
use squatphi::{DiskFaultPlan, FeatureExtractor, SquatPhi, WatchConfig, WatchOptions};
use squatphi_crawler::{
    crawl_all, CircuitBreakerPolicy, CrawlConfig, CrawlOutcome, DeadlinePolicy, FaultPlan,
    InProcessTransport, RetryPolicy, TransportStack,
};
use squatphi_dnsdb::{scan_with_metrics, RecordStore};
use squatphi_domain::{idna, DomainName};
use squatphi_feeds::{FeedConfig, GroundTruthFeed};
use squatphi_ml::Classifier;
use squatphi_squat::gen::{generate_all, GenBudget};
use squatphi_squat::{BrandRegistry, SquatDetector};
use squatphi_web::{Device, WebWorld, WorldConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Runs a parsed command, returning the report text.
pub fn run(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(crate::cli::USAGE.to_string()),
        Command::Gen { brand, limit } => gen(brand, *limit),
        Command::Classify { domains } => classify(domains),
        Command::Scan {
            path,
            type_filter,
            threads,
            json,
            timings,
        } => scan_zone(path, type_filter.as_deref(), *threads, *json, *timings),
        Command::Crawl {
            path,
            threads,
            retries,
            plan,
            seed,
            json,
            timings,
        } => crawl_zone(path, *threads, *retries, *plan, *seed, *json, *timings),
        Command::Page { path, brand } => page(path, brand.as_deref()),
        Command::Render { path, width } => render(path, *width),
        Command::Conformance {
            seed,
            budget,
            json,
            timings,
            report,
        } => conformance(*seed, budget, *json, *timings, report.as_deref()),
        Command::Watch {
            seed,
            events,
            brands,
            threads,
            stop_after,
            checkpoint_dir,
            resume,
            disk_faults,
            json,
            timings,
        } => watch(
            *seed,
            *events,
            *brands,
            *threads,
            *stop_after,
            checkpoint_dir.as_deref(),
            *resume,
            *disk_faults,
            *json,
            *timings,
        ),
    }
}

/// Runs the streaming watch daemon. An interrupted (`--stop-after`) run
/// is still a success — the summary reports `interrupted: true` and the
/// watermark checkpoint (when `--checkpoint` is set) lets a later
/// `--resume` continue from it.
#[allow(clippy::too_many_arguments)]
fn watch(
    seed: u64,
    events: u64,
    brands: usize,
    threads: usize,
    stop_after: Option<u64>,
    checkpoint_dir: Option<&str>,
    resume: bool,
    disk_faults: DiskFaultPlan,
    json: bool,
    timings: bool,
) -> Result<String, String> {
    let config = WatchConfig::builder()
        .seed(seed)
        .events(events)
        .brands(brands)
        .threads(threads)
        .build()
        .map_err(|e| e.to_string())?;
    let opts = WatchOptions {
        checkpoint_dir: checkpoint_dir.map(PathBuf::from),
        resume,
        stop_after,
        disk_faults,
    };
    let summary = SquatPhi::try_watch(&config, &opts).map_err(|e| e.to_string())?;
    if json {
        return Ok(summary.to_json_with_timings(timings));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "watch: seed {} over {} events ({} brands, {} threads){}",
        summary.seed,
        summary.events,
        brands,
        threads,
        if summary.interrupted {
            format!(" — interrupted at watermark {}", summary.watermark)
        } else {
            String::new()
        }
    );
    let _ = writeln!(out, "  {}", summary.report_line());
    if checkpoint_dir.is_some() {
        let _ = writeln!(out, "  durability: {}", summary.durability.report_line());
    }
    if let Some(detail) = &summary.recovered_checkpoint {
        let _ = writeln!(
            out,
            "  recovered checkpoint: resumed from an older generation ({detail})"
        );
    } else if summary.resumed {
        let _ = writeln!(out, "  resumed from the watermark checkpoint");
    }
    let c = &summary.counters;
    let _ = writeln!(
        out,
        "  ingest:    {} accepted, {} dropped (reg {}, churn {}, feed {})",
        c.accepted,
        c.dropped(),
        c.dropped_registrations,
        c.dropped_churn,
        c.dropped_feed
    );
    let _ = writeln!(
        out,
        "  detect:    {} processed, {} squats flagged, {} stalls",
        c.processed, c.detected, c.detect_stalls
    );
    let _ = writeln!(
        out,
        "  crawl:     {} jobs ({} first, {} recrawls), {} live, {} takedowns",
        c.crawl_jobs,
        c.first_crawls,
        c.recrawls,
        c.live_found,
        c.takedowns + c.churn_takedowns
    );
    let _ = writeln!(
        out,
        "  tracking:  {} live now, {} pending recrawls, {} blacklisted",
        summary.tracked, summary.pending_recrawls, c.blacklisted
    );
    let _ = writeln!(
        out,
        "  transport: {} attempts, {} retries, {} breaker trips",
        summary.transport.attempts, summary.transport.retries, summary.transport.breaker_trips
    );
    let _ = writeln!(
        out,
        "  state fingerprint: {:#018x}",
        summary.state_fingerprint
    );
    Ok(out)
}

/// Runs the conformance oracles. Returns `Err` (→ non-zero exit) when any
/// oracle reports a violation, with the full report as the error text so
/// the shrunk inputs reach the operator; the `--report` file is written in
/// both cases.
fn conformance(
    seed: u64,
    budget: &str,
    json: bool,
    timings: bool,
    report_path: Option<&str>,
) -> Result<String, String> {
    let budget = squatphi_conformance::Budget::parse(budget)
        .ok_or_else(|| format!("unknown --budget {budget:?} (ci | full)"))?;
    let report =
        squatphi_conformance::run(&squatphi_conformance::ConformanceConfig { seed, budget });
    if let Some(path) = report_path {
        std::fs::write(path, report.to_json(false) + "\n")
            .map_err(|e| format!("cannot write --report {path}: {e}"))?;
    }
    let mut rendered = if json {
        report.to_json(timings)
    } else {
        report.render_text(timings)
    };
    if !rendered.ends_with('\n') {
        rendered.push('\n');
    }
    if report.total_violations() == 0 {
        Ok(rendered)
    } else {
        Err(format!(
            "{} conformance violation(s)\n{rendered}",
            report.total_violations()
        ))
    }
}

fn registry() -> BrandRegistry {
    BrandRegistry::paper()
}

fn gen(brand_label: &str, limit: usize) -> Result<String, String> {
    let registry = registry();
    let brand = registry.by_label(brand_label).ok_or_else(|| {
        format!("unknown brand {brand_label:?} (702 brands monitored; try `facebook`)")
    })?;
    let budget = GenBudget {
        homograph: limit,
        bits: limit,
        typo: limit,
        combo: limit,
        wrong_tld: limit,
    };
    let mut out = format!("candidates for {} ({}):\n", brand.label, brand.domain);
    for c in generate_all(brand, budget) {
        let shown = if c.domain.is_idn() {
            format!(
                "{} (shown as {})",
                c.domain,
                idna::to_unicode(c.domain.as_str())
            )
        } else {
            c.domain.to_string()
        };
        let _ = writeln!(out, "  {:<50} {}", shown, c.squat_type);
    }
    Ok(out)
}

fn classify(domains: &[String]) -> Result<String, String> {
    let registry = registry();
    let detector = SquatDetector::new(&registry);
    let mut out = String::new();
    for raw in domains {
        let ascii = idna::to_ascii(raw).map_err(|e| format!("{raw}: {e}"))?;
        match DomainName::parse(&ascii) {
            Ok(d) => match detector.classify(&d) {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "{raw}: SQUATTING ({}) on {}",
                        m.squat_type,
                        registry.get(m.brand).expect("valid brand id").label
                    );
                }
                None => {
                    let _ = writeln!(out, "{raw}: clean");
                }
            },
            Err(e) => {
                let _ = writeln!(out, "{raw}: invalid domain ({e})");
            }
        }
    }
    Ok(out)
}

/// Renders a registry snapshot as the `--json` output, applying the one
/// telemetry-layer `--timings` rule: wall-clock values are zeroed unless
/// the caller opted in, so default output is two-run byte-identical.
fn snapshot_json(reg: &squatphi_telemetry::Registry, timings: bool) -> String {
    let mut snap = reg.snapshot();
    if !timings {
        snap.strip_timings();
    }
    let mut out = snap.render();
    out.push('\n');
    out
}

fn scan_zone(
    path: &str,
    type_filter: Option<&str>,
    threads: usize,
    json: bool,
    timings: bool,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let store = RecordStore::from_zone(&text).map_err(|e| format!("{path}: {e}"))?;
    let registry = registry();
    let detector = SquatDetector::new(&registry);
    let (outcome, metrics) = scan_with_metrics(&store, &registry, &detector, threads);
    if json {
        let reg = squatphi_telemetry::Registry::new();
        let scope = reg.scope("scan");
        outcome.export(&scope);
        metrics.export(&scope);
        return Ok(snapshot_json(&reg, timings));
    }
    let mut out = format!(
        "scanned {} records: {} squatting domains ({} invalid records skipped)\n",
        outcome.scanned,
        outcome.total_matches(),
        outcome.invalid
    );
    let _ = writeln!(
        out,
        "  {:.0} records/s over {}/{} workers ({} probes, {} past filter, {} allocations avoided, {} dedupe collisions)",
        metrics.records_per_sec(),
        metrics.actual_workers(),
        metrics.requested_workers,
        metrics.probes(),
        metrics.deep_probes(),
        metrics.allocations_avoided(),
        metrics.dedupe_collisions,
    );
    let names = ["Homograph", "Bits", "Typo", "Combo", "WrongTLD"];
    for (i, n) in outcome.by_type.iter().enumerate() {
        let _ = writeln!(out, "  {:<10} {n}", names[i]);
    }
    for m in &outcome.matches {
        let ty = m.squat_type.to_string();
        if type_filter
            .map(|f| f.eq_ignore_ascii_case(&ty))
            .unwrap_or(true)
        {
            let _ = writeln!(
                out,
                "  {:<40} {:<10} {}",
                m.domain,
                ty,
                registry.get(m.brand).expect("valid brand id").label
            );
        }
    }
    Ok(out)
}

fn crawl_zone(
    path: &str,
    threads: usize,
    retries: usize,
    plan: FaultPlan,
    seed: u64,
    json: bool,
    timings: bool,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let store = RecordStore::from_zone(&text).map_err(|e| format!("{path}: {e}"))?;
    let registry = registry();
    let detector = SquatDetector::new(&registry);
    let (outcome, _) = scan_with_metrics(&store, &registry, &detector, threads);
    if outcome.matches.is_empty() {
        if json {
            let reg = squatphi_telemetry::Registry::new();
            squatphi_crawler::CrawlStats::default().export(&reg.scope("crawl"));
            return Ok(snapshot_json(&reg, timings));
        }
        return Ok(format!(
            "scanned {} records: no squatting domains to crawl\n",
            outcome.scanned
        ));
    }
    let squats: Vec<(String, usize, squatphi_squat::SquatType, std::net::Ipv4Addr)> = outcome
        .matches
        .iter()
        .map(|m| (m.domain.registrable(), m.brand, m.squat_type, m.ip))
        .collect();
    let world = Arc::new(WebWorld::build(
        &squats,
        &registry,
        &WorldConfig {
            seed,
            ..WorldConfig::default()
        },
    ));
    let jobs: Vec<(String, usize, squatphi_squat::SquatType)> = squats
        .iter()
        .map(|(d, b, t, _)| (d.clone(), *b, *t))
        .collect();

    let stack = TransportStack::new(InProcessTransport::new(world))
        .chaos(plan)
        .retry(RetryPolicy::default())
        .breaker(CircuitBreakerPolicy::default())
        .deadline(DeadlinePolicy::default())
        .build();
    let cfg = CrawlConfig::builder()
        .workers(threads)
        .retries(retries)
        .build()
        .map_err(|e| e.to_string())?;
    let (records, stats) = crawl_all(&jobs, &registry, &stack, &cfg);
    if json {
        let reg = squatphi_telemetry::Registry::new();
        stats.export(&reg.scope("crawl"));
        return Ok(snapshot_json(&reg, timings));
    }

    let mut out = format!(
        "scanned {} records: crawling {} squatting domains over {} workers\n",
        outcome.scanned,
        jobs.len(),
        threads
    );
    let _ = writeln!(
        out,
        "  live: {} web, {} mobile (of {})",
        stats.web_live, stats.mobile_live, stats.total
    );
    let _ = writeln!(
        out,
        "  web redirects: {} none, {} original, {} market, {} other",
        stats.web_no_redirect,
        stats.web_redirect_original,
        stats.web_redirect_market,
        stats.web_redirect_other
    );
    let (mut truncated, mut dead) = (0usize, 0usize);
    for r in &records {
        match r.outcome(Device::Web) {
            CrawlOutcome::TruncatedChain => truncated += 1,
            CrawlOutcome::Dead => dead += 1,
            CrawlOutcome::Live => {}
        }
    }
    let _ = writeln!(
        out,
        "  web outcomes: {} truncated chains, {} dead",
        truncated, dead
    );
    let _ = writeln!(out, "  transport: {}", stats.transport.report_line());
    Ok(out)
}

fn page(path: &str, brand_label: Option<&str>) -> Result<String, String> {
    let html = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let registry = registry();
    let extractor = FeatureExtractor::new(&registry);
    // One analysis pass feeds every report line below — structure, OCR,
    // evasion, and the classifier score all read the same artifact.
    let artifact = extractor.analyzer().analyze(&html);

    let mut out = String::new();

    // Structure.
    let _ = writeln!(out, "title: {:?}", artifact.title.as_deref().unwrap_or(""));
    let _ = writeln!(
        out,
        "forms: {} (password inputs: {})",
        artifact.form_count, artifact.password_inputs
    );
    let _ = writeln!(
        out,
        "js indicators: eval={} fromCharCode={} obfuscated={}",
        artifact.js.eval_calls,
        artifact.js.from_char_code,
        artifact.js.is_obfuscated()
    );

    // OCR channel.
    let _ = writeln!(out, "ocr text: {}", truncate(&artifact.ocr_text, 160));

    // Evasion vs a brand, if requested.
    if let Some(label) = brand_label {
        let brand = registry
            .by_label(label)
            .ok_or_else(|| format!("unknown brand {label:?}"))?;
        let brand_page = squatphi_web::pages::brand_login_page(brand);
        let brand_artifact = extractor.analyzer().analyze(&brand_page);
        let m = squatphi::evasion::measure_artifacts(&artifact, &brand_artifact, &brand.label);
        let _ = writeln!(
            out,
            "evasion vs {}: layout distance {}, string obfuscated {}, code obfuscated {}",
            brand.label, m.layout_distance, m.string_obfuscated, m.code_obfuscated
        );
    } else if !artifact.degraded {
        // No brand named: report the visually closest monitored brand via
        // the Hamming-space index. The 64 most-popular brands keep the
        // audit fast; a perfect visual clone of a monitored page is found
        // regardless of obfuscation elsewhere.
        let analyzer = extractor.analyzer();
        let brand_index =
            squatphi::artifact::BrandHashIndex::build(registry.brands().iter().take(64).map(|b| {
                let page = squatphi_web::pages::brand_login_page(b);
                (b.id, analyzer.analyze(&page).image_hash)
            }));
        if let Some(m) = brand_index.nearest_brand(&artifact.image_hash) {
            let label = registry
                .get(m.brand)
                .map(|b| b.label.as_str())
                .unwrap_or("?");
            let _ = writeln!(
                out,
                "nearest brand page: {} (layout distance {})",
                label, m.distance
            );
        }
    }

    // Classifier score (model trained on the synthetic ground-truth feed;
    // a real deployment would load a persisted model instead).
    let feed = GroundTruthFeed::generate(
        &registry,
        &FeedConfig {
            total_urls: 1_200,
            seed: 77,
        },
    );
    let pages: Vec<(&str, bool)> = feed
        .entries
        .iter()
        .map(|e| (e.html.as_str(), e.still_phishing))
        .collect();
    let data = extractor.build_dataset(&pages, 8);
    let model = squatphi::train::fit_final_model(&data, 7);
    let score = model.score(&extractor.extract_from_artifact(&artifact));
    let _ = writeln!(
        out,
        "phishing score: {score:.2} -> {}",
        if score >= 0.5 {
            "FLAGGED"
        } else {
            "not flagged"
        }
    );
    let _ = writeln!(
        out,
        "analysis: {}",
        extractor.analyzer().metrics().report_line()
    );
    Ok(out)
}

fn render(path: &str, width: usize) -> Result<String, String> {
    let html = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let bmp = squatphi::artifact::PageAnalyzer::new().screenshot(&html);
    Ok(squatphi_render::ascii::to_ascii(&bmp, width))
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_lists_candidates() {
        let out = run(&Command::Gen {
            brand: "facebook".into(),
            limit: 2,
        })
        .expect("runs");
        assert!(out.contains("Combo") || out.contains("combo"));
        assert!(out.contains("facebook"));
    }

    #[test]
    fn gen_rejects_unknown_brand() {
        assert!(run(&Command::Gen {
            brand: "definitelynotabrand".into(),
            limit: 2
        })
        .is_err());
    }

    #[test]
    fn classify_reports_each_domain() {
        let out = run(&Command::Classify {
            domains: vec![
                "faceb00k.pw".into(),
                "winterpillow.net".into(),
                "fàcebook.com".into(), // unicode input goes through IDNA
                "not a domain".into(),
            ],
        })
        .expect("runs");
        assert!(out.contains("faceb00k.pw: SQUATTING (Homograph) on facebook"));
        assert!(out.contains("winterpillow.net: clean"));
        assert!(out.contains("fàcebook.com: SQUATTING (Homograph) on facebook"));
        assert!(out.contains("invalid domain"));
    }

    #[test]
    fn scan_reads_zone_files() {
        let dir = std::env::temp_dir().join("squatphi-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("zone.txt");
        std::fs::write(
            &path,
            "faceb00k.pw.\t300\tIN\tA\t203.0.113.1\n\
             pepper-garden.net.\t300\tIN\tA\t203.0.113.2\n\
             paypal-cash.com.\t300\tIN\tA\t203.0.113.3\n",
        )
        .expect("write");
        let out = run(&Command::Scan {
            path: path.to_string_lossy().into_owned(),
            type_filter: None,
            threads: 2,
            json: false,
            timings: false,
        })
        .expect("runs");
        assert!(out.contains("2 squatting domains"), "{out}");
        assert!(out.contains("faceb00k.pw"));
        assert!(out.contains("paypal-cash.com"));
        assert!(!out.contains("pepper-garden"));
        // Type filter narrows the listing.
        let combo_only = run(&Command::Scan {
            path: path.to_string_lossy().into_owned(),
            type_filter: Some("Combo".into()),
            threads: 2,
            json: false,
            timings: false,
        })
        .expect("runs");
        assert!(combo_only.contains("paypal-cash.com"));
        assert!(!combo_only
            .lines()
            .any(|l| l.contains("faceb00k.pw") && l.contains("Homograph")));
    }

    #[test]
    fn scan_json_is_stripped_and_deterministic() {
        let dir = std::env::temp_dir().join("squatphi-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("scan-json-zone.txt");
        std::fs::write(
            &path,
            "faceb00k.pw.\t300\tIN\tA\t203.0.113.1\n\
             paypal-cash.com.\t300\tIN\tA\t203.0.113.3\n",
        )
        .expect("write");
        let scan = |timings| {
            run(&Command::Scan {
                path: path.to_string_lossy().into_owned(),
                type_filter: None,
                threads: 2,
                json: true,
                timings,
            })
            .expect("runs")
        };
        let a = scan(false);
        // Default JSON strips wall-clock values, so two runs diff clean.
        assert_eq!(a, scan(false));
        assert!(a.contains("\"matches\": 2"), "{a}");
        assert!(a.contains("\"wall_nanos\": 0"), "{a}");
        assert!(a.contains("\"records_per_sec\": 0.000000"), "{a}");
        // --timings keeps the same schema with live values.
        let timed = scan(true);
        assert!(!timed.contains("\"wall_nanos\": 0"), "{timed}");
    }

    #[test]
    fn crawl_json_is_stripped_and_deterministic() {
        let dir = std::env::temp_dir().join("squatphi-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("crawl-json-zone.txt");
        std::fs::write(
            &path,
            "faceb00k.pw.\t300\tIN\tA\t203.0.113.1\n\
             paypal-cash.com.\t300\tIN\tA\t203.0.113.3\n",
        )
        .expect("write");
        let crawl = || {
            run(&Command::Crawl {
                path: path.to_string_lossy().into_owned(),
                threads: 1,
                retries: 1,
                plan: FaultPlan::fail_every(2),
                seed: 3,
                json: true,
                timings: false,
            })
            .expect("runs")
        };
        let a = crawl();
        assert_eq!(a, crawl());
        assert!(a.contains("\"transport\""), "{a}");
        assert!(a.contains("\"attempts\""), "{a}");
        // Virtual backoff totals are deterministic and survive stripping.
        assert!(a.contains("\"backoff_ns\""), "{a}");
    }

    #[test]
    fn crawl_reports_transport_counters() {
        let dir = std::env::temp_dir().join("squatphi-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("crawl-zone.txt");
        std::fs::write(
            &path,
            "faceb00k.pw.\t300\tIN\tA\t203.0.113.1\n\
             paypal-cash.com.\t300\tIN\tA\t203.0.113.3\n\
             pepper-garden.net.\t300\tIN\tA\t203.0.113.4\n",
        )
        .expect("write");
        let crawl = |chaos: FaultPlan| {
            run(&Command::Crawl {
                path: path.to_string_lossy().into_owned(),
                // Single-flight so the chaos schedule is order-free and
                // the byte-identical assertion below cannot race.
                threads: 1,
                retries: 1,
                plan: chaos,
                seed: 3,
                json: false,
                timings: false,
            })
            .expect("runs")
        };
        let out = crawl(FaultPlan::none());
        assert!(out.contains("crawling 2 squatting domains"), "{out}");
        assert!(out.contains("transport:"), "{out}");
        assert!(out.contains("attempts"), "{out}");
        // Injected faults show up in the transport counters.
        let chaotic = crawl(FaultPlan::fail_every(2));
        assert!(chaotic.contains("injected"), "{chaotic}");
        // Same seed, same plan => byte-identical report.
        assert_eq!(chaotic, crawl(FaultPlan::fail_every(2)));
    }

    #[test]
    fn watch_reports_and_is_deterministic() {
        let cmd = |json| Command::Watch {
            seed: 11,
            events: 200,
            brands: 12,
            threads: 2,
            stop_after: None,
            checkpoint_dir: None,
            resume: false,
            disk_faults: DiskFaultPlan::none(),
            json,
            timings: false,
        };
        let out = run(&cmd(false)).expect("runs");
        assert!(out.contains("watch: seed 11 over 200 events"), "{out}");
        assert!(out.contains("reconciled"), "{out}");
        assert!(out.contains("state fingerprint:"), "{out}");
        // JSON mode is byte-identical across runs (the CI gate).
        let a = run(&cmd(true)).expect("runs");
        let b = run(&cmd(true)).expect("runs");
        assert_eq!(a, b);
        assert!(a.contains("\"reconciles\": true"), "{a}");
    }

    #[test]
    fn watch_stop_after_then_resume_matches_full_run() {
        let dir = std::env::temp_dir().join(format!("squatphi-cli-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = |stop_after, checkpoint_dir, resume| Command::Watch {
            seed: 11,
            events: 200,
            brands: 12,
            threads: 2,
            stop_after,
            checkpoint_dir,
            resume,
            disk_faults: DiskFaultPlan::none(),
            json: true,
            timings: false,
        };
        let full = run(&base(None, None, false)).expect("full run");
        let stopped = run(&base(
            Some(80),
            Some(dir.to_string_lossy().into_owned()),
            false,
        ))
        .expect("interrupted run");
        assert!(stopped.contains("\"interrupted\": true"), "{stopped}");
        let resumed =
            run(&base(None, Some(dir.to_string_lossy().into_owned()), true)).expect("resumed run");
        assert_eq!(resumed, full, "resume diverged from the full run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_resume_after_torn_checkpoints_is_a_structured_error() {
        let dir =
            std::env::temp_dir().join(format!("squatphi-cli-watch-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = |resume: bool, disk_faults| Command::Watch {
            seed: 11,
            events: 200,
            brands: 12,
            threads: 2,
            stop_after: (!resume).then_some(80),
            checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
            resume,
            disk_faults,
            json: true,
            timings: false,
        };
        // Torn writes are silent: the interrupted run still completes, but
        // every checkpoint generation it left behind is damaged.
        let torn = DiskFaultPlan::parse("torn-at-byte-60").unwrap();
        run(&base(false, torn)).expect("torn writes do not fail the run");
        // Resuming against the all-damaged store is a structured error, not
        // a silent recompute.
        let err = run(&base(true, DiskFaultPlan::none())).unwrap_err();
        assert!(err.contains("unrecoverable"), "{err}");
        assert!(err.contains("watch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_produces_ascii() {
        let dir = std::env::temp_dir().join("squatphi-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("page.html");
        std::fs::write(&path, "<html><body><h1>paypal</h1></body></html>").expect("write");
        let out = run(&Command::Render {
            path: path.to_string_lossy().into_owned(),
            width: 40,
        })
        .expect("runs");
        assert!(out.lines().count() > 5);
    }

    #[test]
    fn missing_files_error_cleanly() {
        assert!(run(&Command::Scan {
            path: "/nonexistent/zone".into(),
            type_filter: None,
            threads: 1,
            json: false,
            timings: false
        })
        .is_err());
        assert!(run(&Command::Render {
            path: "/nonexistent/page".into(),
            width: 40
        })
        .is_err());
    }
}
