//! Adversarial-noise attacks against the OCR channel (paper §5.1,
//! "Discussions on the Feature Robustness").
//!
//! The paper argues OCR features are hard to evade: attackers can only
//! perturb the images they control (logos), the perturbation must stay
//! visually small or the page stops deceiving users, and OCR's
//! segmentation + matching stages absorb small noise. This module makes
//! that argument measurable: seeded pixel-noise attacks at increasing
//! budgets, plus a recovery-rate harness.

use crate::{recognize, OcrConfig, OcrResult};
use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_render::Bitmap;

/// An attack budget: what fraction of pixels the attacker may perturb and
/// by how much. Perceptibility grows with both knobs — at high settings
/// the page visibly degrades, which is exactly the attacker's bind.
#[derive(Debug, Clone, Copy)]
pub struct NoiseBudget {
    /// Fraction of pixels perturbed (0.0..=1.0).
    pub density: f64,
    /// Maximum absolute intensity change per perturbed pixel.
    pub amplitude: u8,
}

impl NoiseBudget {
    /// A barely-perceptible perturbation.
    pub fn subtle() -> Self {
        NoiseBudget {
            density: 0.02,
            amplitude: 40,
        }
    }

    /// Noticeable speckling.
    pub fn moderate() -> Self {
        NoiseBudget {
            density: 0.10,
            amplitude: 90,
        }
    }

    /// Visibly damaged page.
    pub fn heavy() -> Self {
        NoiseBudget {
            density: 0.25,
            amplitude: 200,
        }
    }
}

/// Applies seeded salt-and-pepper noise to a copy of the screenshot.
pub fn perturb(bmp: &Bitmap, budget: NoiseBudget, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Bitmap::new(bmp.width(), bmp.height());
    for y in 0..bmp.height() {
        for x in 0..bmp.width() {
            let v = bmp.get(x, y);
            let v = if rng.gen_bool(budget.density.clamp(0.0, 1.0)) {
                let delta = rng.gen_range(0..=budget.amplitude as i32);
                if rng.gen_bool(0.5) {
                    v.saturating_add(delta as u8)
                } else {
                    v.saturating_sub(delta as u8)
                }
            } else {
                v
            };
            out.put(x, y, v);
        }
    }
    out
}

/// Runs OCR on the perturbed screenshot.
pub fn recognize_under_attack(
    bmp: &Bitmap,
    budget: NoiseBudget,
    attack_seed: u64,
    config: &OcrConfig,
) -> OcrResult {
    recognize(&perturb(bmp, budget, attack_seed), config)
}

/// Fraction of `targets` still present in the OCR output after the
/// attack — the recovery rate the robustness argument rests on.
pub fn recovery_rate(
    bmp: &Bitmap,
    targets: &[&str],
    budget: NoiseBudget,
    attack_seed: u64,
    config: &OcrConfig,
) -> f64 {
    if targets.is_empty() {
        return 1.0;
    }
    let text = recognize_under_attack(bmp, budget, attack_seed, config).joined();
    let hit = targets
        .iter()
        .filter(|t| text.contains(&t.to_ascii_lowercase()))
        .count();
    hit as f64 / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_html::parse;
    use squatphi_render::{render_page, RenderOptions};

    fn screenshot() -> Bitmap {
        render_page(
            &parse(
                "<body><h1>paypal</h1><p>please enter your password to continue</p>\
                 <form><input type='password' placeholder='password'>\
                 <button type='submit'>log in</button></form></body>",
            ),
            &RenderOptions::default(),
        )
    }

    fn noiseless() -> OcrConfig {
        OcrConfig {
            char_error_rate: 0.0,
            ..OcrConfig::default()
        }
    }

    #[test]
    fn subtle_noise_does_not_break_ocr() {
        let bmp = screenshot();
        let rate = recovery_rate(
            &bmp,
            &["paypal", "password"],
            NoiseBudget::subtle(),
            1,
            &noiseless(),
        );
        assert_eq!(rate, 1.0, "subtle noise must not defeat OCR");
    }

    #[test]
    fn moderate_noise_mostly_survives() {
        let bmp = screenshot();
        let mut total = 0.0;
        for seed in 0..5 {
            total += recovery_rate(
                &bmp,
                &["paypal", "password"],
                NoiseBudget::moderate(),
                seed,
                &noiseless(),
            );
        }
        assert!(
            total / 5.0 >= 0.7,
            "moderate noise recovery {}",
            total / 5.0
        );
    }

    #[test]
    fn heavy_noise_degrades_recognition() {
        // The attacker *can* beat OCR — at the cost of a page too damaged
        // to deceive anyone. The budget/monotonicity is the point.
        let bmp = screenshot();
        let subtle = recovery_rate(
            &bmp,
            &["paypal", "password"],
            NoiseBudget::subtle(),
            3,
            &noiseless(),
        );
        let heavy = recovery_rate(
            &bmp,
            &["paypal", "password"],
            NoiseBudget::heavy(),
            3,
            &noiseless(),
        );
        assert!(heavy <= subtle);
    }

    #[test]
    fn perturb_is_deterministic_and_bounded() {
        let bmp = screenshot();
        let a = perturb(&bmp, NoiseBudget::moderate(), 9);
        let b = perturb(&bmp, NoiseBudget::moderate(), 9);
        assert_eq!(a, b);
        let c = perturb(&bmp, NoiseBudget::moderate(), 10);
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.width(), bmp.width());
        assert_eq!(a.height(), bmp.height());
    }

    #[test]
    fn zero_density_is_identity() {
        let bmp = screenshot();
        let same = perturb(
            &bmp,
            NoiseBudget {
                density: 0.0,
                amplitude: 255,
            },
            1,
        );
        assert_eq!(same, bmp);
    }

    #[test]
    fn empty_targets_trivially_recover() {
        let bmp = screenshot();
        assert_eq!(
            recovery_rate(&bmp, &[], NoiseBudget::heavy(), 1, &noiseless()),
            1.0
        );
    }
}
