//! OCR substrate — the Tesseract substitute (paper §5.1).
//!
//! The paper's key feature novelty is extracting text from page
//! *screenshots* so HTML-level obfuscation can't hide phishing keywords.
//! This crate recognizes text out of [`squatphi_render::Bitmap`]s:
//!
//! 1. **Threshold** — decoration ink stays below 140, text at 255, so a
//!    threshold at 200 isolates glyph pixels (the analogue of Tesseract's
//!    adaptive binarization),
//! 2. **Segment** — horizontal projection finds text bands; each band is
//!    scanned for glyph-sized cells at each of the renderer's integer
//!    scales,
//! 3. **Match** — each cell is template-matched against the font atlas;
//!    the best glyph under a mismatch budget wins,
//! 4. **Noise** — a seeded error model flips recognized characters to
//!    visually-near neighbors at a configurable rate (Tesseract's reported
//!    error is ≤3%; the spell-checking stage downstream exists to absorb
//!    exactly these errors).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;

use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_render::font::{charset_char, ADVANCE, CHARSET, GLYPHS, GLYPH_H, GLYPH_W};
use squatphi_render::Bitmap;

/// OCR engine configuration.
#[derive(Debug, Clone)]
pub struct OcrConfig {
    /// Pixel intensity at or above which a pixel counts as glyph ink.
    pub threshold: u8,
    /// Per-character probability of a recognition error (0.0..1.0).
    pub char_error_rate: f64,
    /// Seed for the error model.
    pub seed: u64,
    /// Maximum mismatching pixels tolerated per 5×7 template cell.
    pub mismatch_budget: u32,
}

impl Default for OcrConfig {
    fn default() -> Self {
        // 3% matches the Tesseract accuracy the paper cites.
        OcrConfig {
            threshold: 200,
            char_error_rate: 0.03,
            seed: 0x0C5,
            mismatch_budget: 4,
        }
    }
}

/// A recognized line of text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcrLine {
    /// Recognized characters.
    pub text: String,
    /// Top y coordinate of the band.
    pub y: usize,
    /// Glyph scale detected for the band.
    pub scale: usize,
}

/// Full OCR output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OcrResult {
    /// Lines in top-to-bottom order.
    pub lines: Vec<OcrLine>,
}

impl OcrResult {
    /// All recognized text joined with spaces, lower-case.
    pub fn joined(&self) -> String {
        self.lines
            .iter()
            .map(|l| l.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
            .to_ascii_lowercase()
    }
}

/// Characters that look alike at 5×7 — the error model swaps within these
/// groups, mimicking real OCR confusion patterns.
const CONFUSION_GROUPS: &[&str] = &["o0", "l1i", "rn", "cl", "vu", "s5", "gq", "b8", "z2"];

/// Rejected [`OcrConfig`] values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OcrError {
    /// `char_error_rate` must be a finite probability in `[0, 1]`.
    InvalidErrorRate(f64),
}

impl std::fmt::Display for OcrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OcrError::InvalidErrorRate(rate) => {
                write!(
                    f,
                    "ocr: char_error_rate {rate} is not a probability in [0, 1]"
                )
            }
        }
    }
}

impl std::error::Error for OcrError {}

/// Fallible [`recognize`]: validates the config instead of silently
/// clamping a nonsensical error rate.
pub fn try_recognize(bmp: &Bitmap, config: &OcrConfig) -> Result<OcrResult, OcrError> {
    if !config.char_error_rate.is_finite() || !(0.0..=1.0).contains(&config.char_error_rate) {
        return Err(OcrError::InvalidErrorRate(config.char_error_rate));
    }
    Ok(recognize(bmp, config))
}

/// Runs OCR over a bitmap.
pub fn recognize(bmp: &Bitmap, config: &OcrConfig) -> OcrResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut lines = Vec::new();

    // Find text bands: contiguous runs of rows containing ink.
    let mut y = 0usize;
    while y < bmp.height() {
        if !row_has_ink(bmp, y, config.threshold) {
            y += 1;
            continue;
        }
        let band_top = y;
        while y < bmp.height() && row_has_ink(bmp, y, config.threshold) {
            y += 1;
        }
        let band_h = y - band_top;
        // Try renderer scales; a band of height ~7*s belongs to scale s.
        let scale = (band_h / GLYPH_H).clamp(1, 4);
        if band_h < GLYPH_H {
            continue; // sub-glyph noise
        }
        if let Some(text) = read_band(bmp, band_top, scale, config, &mut rng) {
            if !text.trim().is_empty() {
                lines.push(OcrLine {
                    text,
                    y: band_top,
                    scale,
                });
            }
        }
    }
    OcrResult { lines }
}

fn row_has_ink(bmp: &Bitmap, y: usize, threshold: u8) -> bool {
    (0..bmp.width()).any(|x| bmp.get(x, y) >= threshold)
}

/// Reads one band as a line of glyphs at `scale`, trying several grid
/// phases: glyphs like `i` have a blank leftmost column, so the first ink
/// pixel does not necessarily sit on the glyph-cell boundary. The phase
/// producing the fewest unrecognized cells wins.
fn read_band(
    bmp: &Bitmap,
    top: usize,
    scale: usize,
    config: &OcrConfig,
    rng: &mut StdRng,
) -> Option<String> {
    // Find the leftmost ink column.
    let band_rows = GLYPH_H * scale;
    let mut left = None;
    'cols: for x in 0..bmp.width() {
        for y in top..(top + band_rows).min(bmp.height()) {
            if bmp.get(x, y) >= config.threshold {
                left = Some(x);
                break 'cols;
            }
        }
    }
    let ink_left = left?;
    let mut best: Option<(usize, String)> = None;
    for phase in 0..GLYPH_W {
        let start = match ink_left.checked_sub(phase * scale) {
            Some(s) => s,
            None => break,
        };
        if let Some(text) = read_band_at(bmp, start, top, scale, config) {
            let unknowns = text.chars().filter(|&c| c == '?').count();
            let better = match &best {
                None => true,
                Some((u, _)) => unknowns < *u,
            };
            if better {
                best = Some((unknowns, text));
            }
            if matches!(best, Some((0, _))) {
                break;
            }
        }
    }
    let (_, text) = best?;
    Some(apply_noise_line(&text, config, rng))
}

/// Reads a band with the glyph grid anchored at `left` (no noise).
fn read_band_at(
    bmp: &Bitmap,
    left: usize,
    top: usize,
    scale: usize,
    config: &OcrConfig,
) -> Option<String> {
    let mut out = String::new();
    let mut x = left;
    let advance = ADVANCE * scale;
    let mut blank_run = 0usize;
    while x + GLYPH_W * scale <= bmp.width() {
        let cell = sample_cell(bmp, x, top, scale, config.threshold);
        if cell == [0u8; GLYPH_H] {
            blank_run += 1;
            if blank_run > 24 {
                break; // end of line content
            }
            // A blank cell inside a line is a space (the renderer's space
            // glyph occupies exactly one cell).
            if blank_run == 1 && !out.is_empty() && !out.ends_with(' ') {
                out.push(' ');
            }
            x += advance;
            continue;
        }
        blank_run = 0;
        out.push(match_glyph(&cell, config.mismatch_budget));
        x += advance;
    }
    Some(out.trim_end().to_string())
}

/// Applies the recognition-error model to a whole line.
fn apply_noise_line(text: &str, config: &OcrConfig, rng: &mut StdRng) -> String {
    text.chars()
        .map(|c| {
            if c == ' ' {
                c
            } else {
                apply_noise(c, config, rng)
            }
        })
        .collect()
}

/// Samples a 5×7 cell at (x, top) with box-downsampling for scale > 1.
fn sample_cell(bmp: &Bitmap, x: usize, top: usize, scale: usize, threshold: u8) -> [u8; GLYPH_H] {
    let mut cell = [0u8; GLYPH_H];
    for (gy, row) in cell.iter_mut().enumerate() {
        for gx in 0..GLYPH_W {
            // Majority vote over the scale×scale block.
            let mut ink = 0usize;
            for dy in 0..scale {
                for dx in 0..scale {
                    if bmp.get(x + gx * scale + dx, top + gy * scale + dy) >= threshold {
                        ink += 1;
                    }
                }
            }
            if ink * 2 >= scale * scale {
                *row |= 1 << (GLYPH_W - 1 - gx);
            }
        }
    }
    cell
}

/// Best-matching glyph under the mismatch budget; `?` when nothing fits.
fn match_glyph(cell: &[u8; GLYPH_H], budget: u32) -> char {
    let mut best = ('?', u32::MAX);
    for (i, g) in GLYPHS.iter().enumerate() {
        let c = charset_char(i);
        if c == ' ' {
            continue;
        }
        let mut mismatch = 0u32;
        for r in 0..GLYPH_H {
            mismatch += (cell[r] ^ g[r]).count_ones();
        }
        if mismatch < best.1 {
            best = (c, mismatch);
        }
    }
    if best.1 <= budget {
        best.0
    } else {
        '?'
    }
}

/// Error model: with probability `char_error_rate`, swap the character for
/// a confusable neighbor (or drop it for characters with no group).
fn apply_noise(c: char, config: &OcrConfig, rng: &mut StdRng) -> char {
    if config.char_error_rate <= 0.0 || !rng.gen_bool(config.char_error_rate.min(1.0)) {
        return c;
    }
    for group in CONFUSION_GROUPS {
        if let Some(pos) = group.find(c) {
            let others: Vec<char> = group
                .chars()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, g)| g)
                .collect();
            if !others.is_empty() {
                return others[rng.gen_range(0..others.len())];
            }
        }
    }
    // No confusion group: nudge within the charset.
    let idx = CHARSET.find(c).unwrap_or(0);
    charset_char((idx + 1) % (CHARSET.len() - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_html::parse;
    use squatphi_render::{render_page, RenderOptions};

    fn noiseless() -> OcrConfig {
        OcrConfig {
            char_error_rate: 0.0,
            ..OcrConfig::default()
        }
    }

    fn render(html: &str) -> Bitmap {
        render_page(&parse(html), &RenderOptions::default())
    }

    #[test]
    fn try_recognize_validates_error_rate() {
        let bmp = render("<body><p>hi</p></body>");
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let cfg = OcrConfig {
                char_error_rate: bad,
                ..OcrConfig::default()
            };
            assert!(matches!(
                try_recognize(&bmp, &cfg),
                Err(OcrError::InvalidErrorRate(_))
            ));
        }
        let ok = try_recognize(&bmp, &noiseless()).unwrap();
        assert_eq!(ok, recognize(&bmp, &noiseless()));
    }

    #[test]
    fn reads_plain_text_exactly() {
        let bmp = render("<body><p>password</p></body>");
        let out = recognize(&bmp, &noiseless());
        assert!(out.joined().contains("password"), "got {:?}", out.joined());
    }

    #[test]
    fn reads_headline_scale_text() {
        let bmp = render("<body><h1>paypal</h1></body>");
        let out = recognize(&bmp, &noiseless());
        assert!(out.joined().contains("paypal"), "got {:?}", out.joined());
        assert!(out.lines.iter().any(|l| l.scale >= 3));
    }

    #[test]
    fn reads_form_placeholders_and_buttons() {
        let bmp = render(
            "<body><form><input type='email' placeholder='email'>\
             <input type='password' placeholder='password'>\
             <button type='submit'>log in</button></form></body>",
        );
        let text = recognize(&bmp, &noiseless()).joined();
        assert!(text.contains("email"), "got {text:?}");
        assert!(text.contains("password"), "got {text:?}");
        assert!(text.contains("log in"), "got {text:?}");
    }

    #[test]
    fn reads_text_baked_into_images() {
        // The string-obfuscation evasion: brand only in image pixels.
        let bmp = render("<body><img width='220' height='40' data-text='facebook'></body>");
        let text = recognize(&bmp, &noiseless()).joined();
        assert!(text.contains("facebook"), "got {text:?}");
    }

    #[test]
    fn distinguishes_o_from_zero() {
        let bmp = render("<body><p>faceb00k facebook</p></body>");
        let text = recognize(&bmp, &noiseless()).joined();
        assert!(text.contains("faceb00k"), "got {text:?}");
        assert!(text.contains("facebook"), "got {text:?}");
    }

    #[test]
    fn noise_rate_roughly_matches_config() {
        let bmp = render(
            "<body><p>the quick brown fox jumps over the lazy dog again and again</p>\
             <p>pack my box with five dozen liquor jugs for the great escape</p></body>",
        );
        let clean = recognize(&bmp, &noiseless()).joined();
        let noisy = recognize(
            &bmp,
            &OcrConfig {
                char_error_rate: 0.05,
                ..OcrConfig::default()
            },
        )
        .joined();
        let diff = clean
            .chars()
            .zip(noisy.chars())
            .filter(|(a, b)| a != b)
            .count();
        // Same length (substitution noise), difference near 5%.
        assert_eq!(clean.len(), noisy.len());
        let rate = diff as f64 / clean.len() as f64;
        assert!(rate > 0.0 && rate < 0.15, "noise rate {rate}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let bmp = render("<body><p>deterministic output required here</p></body>");
        let cfg = OcrConfig {
            char_error_rate: 0.1,
            seed: 42,
            ..OcrConfig::default()
        };
        assert_eq!(recognize(&bmp, &cfg), recognize(&bmp, &cfg));
    }

    #[test]
    fn regression_short_words_round_trip() {
        // Pinned from tests/properties.proptest-regressions, which shrank
        // a failure of `ocr_reads_back_rendered_words` down to
        // `words = ["ia"]`: narrow glyphs like `i` have blank leading
        // columns, so the first ink pixel of a band does not sit on the
        // glyph-grid boundary and the phase search in `read_band` must
        // recover the true alignment. Keep the shrunken case plus a
        // covering sweep of the shortest words the property generates.
        let cfg = noiseless();
        let mut cases = vec!["ia".to_string(), "ia qt".to_string()];
        for a in b'a'..=b'z' {
            for b in b'a'..=b'z' {
                cases.push(format!("{}{}", a as char, b as char));
            }
        }
        for text in &cases {
            let bmp = render(&format!("<body><p>{text}</p></body>"));
            let out = recognize(&bmp, &cfg).joined();
            for w in text.split(' ') {
                assert!(out.contains(w), "OCR lost {w:?} in {out:?} for {text:?}");
            }
        }
    }

    #[test]
    fn blank_page_yields_nothing() {
        let out = recognize(&Bitmap::new(360, 520), &noiseless());
        assert!(out.lines.is_empty());
    }

    #[test]
    fn decoration_invisible_to_ocr() {
        // A page of borders and panels but no text.
        let bmp = render("<body><div data-fill='40'></div><img width='100' height='30'></body>");
        let out = recognize(&bmp, &noiseless());
        assert_eq!(out.joined().trim(), "", "got {:?}", out.joined());
    }
}
