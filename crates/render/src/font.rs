//! Embedded 5×7 bitmap font.
//!
//! Letters use upright capital-style shapes keyed by lower-case characters
//! (all pipeline text is case-folded). `0` carries inner diagonal marks so
//! the OCR substrate can genuinely distinguish `o` from `0` — the exact
//! distinction homograph squatting plays on.

/// Glyph cell width in pixels (excluding inter-glyph spacing).
pub const GLYPH_W: usize = 5;
/// Glyph cell height in pixels.
pub const GLYPH_H: usize = 7;
/// Horizontal advance per character (glyph + 1px spacing).
pub const ADVANCE: usize = GLYPH_W + 1;
/// Vertical advance per text line (glyph + 3px leading).
pub const LINE_ADVANCE: usize = GLYPH_H + 3;

/// A glyph as 7 rows of 5 bits (bit 4 = leftmost pixel).
pub type Glyph = [u8; GLYPH_H];

const fn row(pattern: &[u8; GLYPH_W]) -> u8 {
    let mut bits = 0u8;
    let mut i = 0;
    while i < GLYPH_W {
        if pattern[i] == b'#' {
            bits |= 1 << (GLYPH_W - 1 - i);
        }
        i += 1;
    }
    bits
}

macro_rules! glyph {
    ($r0:literal $r1:literal $r2:literal $r3:literal $r4:literal $r5:literal $r6:literal) => {
        [
            row($r0),
            row($r1),
            row($r2),
            row($r3),
            row($r4),
            row($r5),
            row($r6),
        ]
    };
}

/// Characters the font covers, in table order.
pub const CHARSET: &str = "abcdefghijklmnopqrstuvwxyz0123456789-.:/@?!,$&' ";

/// The glyph table, aligned with [`CHARSET`].
pub static GLYPHS: [Glyph; 48] = [
    glyph!(b".###." b"#...#" b"#...#" b"#####" b"#...#" b"#...#" b"#...#"), // a
    glyph!(b"####." b"#...#" b"#...#" b"####." b"#...#" b"#...#" b"####."), // b
    glyph!(b".###." b"#...#" b"#...." b"#...." b"#...." b"#...#" b".###."), // c
    glyph!(b"####." b"#...#" b"#...#" b"#...#" b"#...#" b"#...#" b"####."), // d
    glyph!(b"#####" b"#...." b"#...." b"####." b"#...." b"#...." b"#####"), // e
    glyph!(b"#####" b"#...." b"#...." b"####." b"#...." b"#...." b"#...."), // f
    glyph!(b".###." b"#...#" b"#...." b"#.###" b"#...#" b"#...#" b".###."), // g
    glyph!(b"#...#" b"#...#" b"#...#" b"#####" b"#...#" b"#...#" b"#...#"), // h
    glyph!(b".###." b"..#.." b"..#.." b"..#.." b"..#.." b"..#.." b".###."), // i
    glyph!(b"..###" b"...#." b"...#." b"...#." b"...#." b"#..#." b".##.."), // j
    glyph!(b"#...#" b"#..#." b"#.#.." b"##..." b"#.#.." b"#..#." b"#...#"), // k
    glyph!(b"#...." b"#...." b"#...." b"#...." b"#...." b"#...." b"#####"), // l
    glyph!(b"#...#" b"##.##" b"#.#.#" b"#.#.#" b"#...#" b"#...#" b"#...#"), // m
    glyph!(b"#...#" b"##..#" b"#.#.#" b"#..##" b"#...#" b"#...#" b"#...#"), // n
    glyph!(b".###." b"#...#" b"#...#" b"#...#" b"#...#" b"#...#" b".###."), // o
    glyph!(b"####." b"#...#" b"#...#" b"####." b"#...." b"#...." b"#...."), // p
    glyph!(b".###." b"#...#" b"#...#" b"#...#" b"#.#.#" b"#..#." b".##.#"), // q
    glyph!(b"####." b"#...#" b"#...#" b"####." b"#.#.." b"#..#." b"#...#"), // r
    glyph!(b".####" b"#...." b"#...." b".###." b"....#" b"....#" b"####."), // s
    glyph!(b"#####" b"..#.." b"..#.." b"..#.." b"..#.." b"..#.." b"..#.."), // t
    glyph!(b"#...#" b"#...#" b"#...#" b"#...#" b"#...#" b"#...#" b".###."), // u
    glyph!(b"#...#" b"#...#" b"#...#" b"#...#" b"#...#" b".#.#." b"..#.."), // v
    glyph!(b"#...#" b"#...#" b"#...#" b"#.#.#" b"#.#.#" b"##.##" b"#...#"), // w
    glyph!(b"#...#" b"#...#" b".#.#." b"..#.." b".#.#." b"#...#" b"#...#"), // x
    glyph!(b"#...#" b"#...#" b".#.#." b"..#.." b"..#.." b"..#.." b"..#.."), // y
    glyph!(b"#####" b"....#" b"...#." b"..#.." b".#..." b"#...." b"#####"), // z
    glyph!(b".###." b"#...#" b"#..##" b"#.#.#" b"##..#" b"#...#" b".###."), // 0
    glyph!(b"..#.." b".##.." b"..#.." b"..#.." b"..#.." b"..#.." b".###."), // 1
    glyph!(b".###." b"#...#" b"....#" b"...#." b"..#.." b".#..." b"#####"), // 2
    glyph!(b".###." b"#...#" b"....#" b"..##." b"....#" b"#...#" b".###."), // 3
    glyph!(b"...#." b"..##." b".#.#." b"#..#." b"#####" b"...#." b"...#."), // 4
    glyph!(b"#####" b"#...." b"####." b"....#" b"....#" b"#...#" b".###."), // 5
    glyph!(b".###." b"#...." b"#...." b"####." b"#...#" b"#...#" b".###."), // 6
    glyph!(b"#####" b"....#" b"...#." b"..#.." b"..#.." b"..#.." b"..#.."), // 7
    glyph!(b".###." b"#...#" b"#...#" b".###." b"#...#" b"#...#" b".###."), // 8
    glyph!(b".###." b"#...#" b"#...#" b".####" b"....#" b"....#" b".###."), // 9
    glyph!(b"....." b"....." b"....." b"#####" b"....." b"....." b"....."), // -
    glyph!(b"....." b"....." b"....." b"....." b"....." b".##.." b".##.."), // .
    glyph!(b"....." b".##.." b".##.." b"....." b".##.." b".##.." b"....."), // :
    glyph!(b"....#" b"....#" b"...#." b"..#.." b".#..." b"#...." b"#...."), // /
    glyph!(b".###." b"#...#" b"#.###" b"#.#.#" b"#.###" b"#...." b".###."), // @
    glyph!(b".###." b"#...#" b"....#" b"...#." b"..#.." b"....." b"..#.."), // ?
    glyph!(b"..#.." b"..#.." b"..#.." b"..#.." b"..#.." b"....." b"..#.."), // !
    glyph!(b"....." b"....." b"....." b"....." b".##.." b"..#.." b".#..."), // ,
    glyph!(b"..#.." b".####" b"#.#.." b".###." b"..#.#" b"####." b"..#.."), // $
    glyph!(b".##.." b"#..#." b"#.#.." b".#..." b"#.#.#" b"#..#." b".##.#"), // &
    glyph!(b"..#.." b"..#.." b"....." b"....." b"....." b"....." b"....."), // '
    glyph!(b"....." b"....." b"....." b"....." b"....." b"....." b"....."), // space
];

/// Returns the glyph for `c` (case-folded); unknown characters map to `?`.
pub fn glyph_for(c: char) -> &'static Glyph {
    let c = c.to_ascii_lowercase();
    match CHARSET.find(c) {
        Some(i) => &GLYPHS[i],
        // `?` is pinned into CHARSET by the charset_covers_fallback test;
        // falling back to glyph 0 keeps this total even if it ever moves.
        None => CHARSET.find('?').map_or(&GLYPHS[0], |q| &GLYPHS[q]),
    }
}

/// Index of `c` inside [`CHARSET`], if covered.
pub fn charset_index(c: char) -> Option<usize> {
    CHARSET.find(c.to_ascii_lowercase())
}

/// Character at a charset index.
pub fn charset_char(i: usize) -> char {
    CHARSET.as_bytes()[i] as char
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charset_and_table_aligned() {
        assert_eq!(CHARSET.len(), GLYPHS.len());
    }

    #[test]
    fn glyphs_are_unique() {
        // OCR template matching needs injective glyphs (except space which
        // must be the only empty cell).
        for (i, gi) in GLYPHS.iter().enumerate() {
            for (j, gj) in GLYPHS.iter().enumerate().skip(i + 1) {
                assert_ne!(
                    gi,
                    gj,
                    "glyphs for {:?} and {:?} collide",
                    charset_char(i),
                    charset_char(j)
                );
            }
        }
    }

    #[test]
    fn o_differs_from_zero() {
        let o = glyph_for('o');
        let zero = glyph_for('0');
        assert_ne!(o, zero);
    }

    #[test]
    fn unknown_chars_map_to_question_mark() {
        assert_eq!(glyph_for('€'), glyph_for('?'));
        assert_eq!(glyph_for('…'), glyph_for('?'));
    }

    #[test]
    fn charset_covers_fallback() {
        // glyph_for's unknown-character path relies on this.
        assert!(CHARSET.contains('?'));
    }

    #[test]
    fn case_folding() {
        assert_eq!(glyph_for('A'), glyph_for('a'));
        assert_eq!(glyph_for('Z'), glyph_for('z'));
    }

    #[test]
    fn space_is_blank() {
        assert!(glyph_for(' ').iter().all(|&r| r == 0));
    }

    #[test]
    fn every_visible_glyph_has_ink() {
        for (i, g) in GLYPHS.iter().enumerate() {
            let c = charset_char(i);
            if c != ' ' {
                assert!(g.iter().any(|&r| r != 0), "glyph {c:?} is blank");
            }
        }
    }

    #[test]
    fn rows_fit_five_bits() {
        for g in &GLYPHS {
            for &r in g {
                assert_eq!(r & !0b11111, 0);
            }
        }
    }
}
