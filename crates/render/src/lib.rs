//! Screenshot substrate: a deterministic rasterizer for the synthetic web.
//!
//! The paper crawls pages with headless Chrome and takes screenshots; the
//! OCR/visual features (§5.1) and the layout-obfuscation measurement
//! (§4.2) both work on those screenshots. This crate replaces the browser
//! with a small deterministic pipeline:
//!
//! * [`font`] — an embedded 5×7 bitmap font,
//! * [`canvas`] — a grayscale bitmap with rect/text/border primitives,
//! * [`layout`] — a block layout engine: DOM → screenshot. Title bar,
//!   headers as "logos", paragraphs, link rows, form boxes with
//!   placeholder text and buttons, and image boxes that can carry
//!   *rendered-only* text (the `data-text` attribute — how we model the
//!   paper's "brand text moved into images" evasion),
//! * [`ascii`] — ASCII-art dump of a bitmap (Figure 14 stand-in).
//!
//! Intensity convention: 0 = white background, 255 = full ink. Decoration
//! (borders, fills) stays below 140 so OCR can threshold text at 200.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod canvas;
pub mod font;
pub mod layout;

pub use canvas::Bitmap;
pub use layout::{render_page, try_render_page, RenderError, RenderOptions};
