//! Grayscale bitmap canvas.

use crate::font::{glyph_for, ADVANCE, GLYPH_H, GLYPH_W};

/// Ink level used for body text.
pub const INK_TEXT: u8 = 255;
/// Ink level used for decoration (borders, fills) — kept below the OCR
/// threshold so only text survives thresholding.
pub const INK_DECOR: u8 = 110;
/// Light fill for panels.
pub const INK_PANEL: u8 = 40;

/// A grayscale image: 0 = white, 255 = full ink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Bitmap {
    /// Blank (white) bitmap.
    pub fn new(width: usize, height: usize) -> Self {
        Bitmap {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw pixel buffer, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at (x, y); out-of-bounds reads return 0.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x]
        } else {
            0
        }
    }

    /// Sets a pixel to `max(current, ink)`; out-of-bounds writes are
    /// silently clipped.
    pub fn put(&mut self, x: usize, y: usize, ink: u8) {
        if x < self.width && y < self.height {
            let p = &mut self.pixels[y * self.width + x];
            *p = (*p).max(ink);
        }
    }

    /// Fills a rectangle.
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, ink: u8) {
        for yy in y..y.saturating_add(h) {
            for xx in x..x.saturating_add(w) {
                self.put(xx, yy, ink);
            }
        }
    }

    /// Draws a 1px rectangle outline.
    pub fn draw_border(&mut self, x: usize, y: usize, w: usize, h: usize, ink: u8) {
        if w == 0 || h == 0 {
            return;
        }
        for xx in x..x + w {
            self.put(xx, y, ink);
            self.put(xx, y + h - 1, ink);
        }
        for yy in y..y + h {
            self.put(x, yy, ink);
            self.put(x + w - 1, yy, ink);
        }
    }

    /// Draws text at (x, y) with integer `scale`; returns the x position
    /// just past the last glyph. Text never wraps — the layout engine is
    /// responsible for line breaking.
    pub fn draw_text(&mut self, x: usize, y: usize, text: &str, scale: usize, ink: u8) -> usize {
        let scale = scale.max(1);
        let mut cx = x;
        for c in text.chars() {
            let g = glyph_for(c);
            for (gy, &bits) in g.iter().enumerate() {
                for gx in 0..GLYPH_W {
                    if bits & (1 << (GLYPH_W - 1 - gx)) != 0 {
                        self.fill_rect(cx + gx * scale, y + gy * scale, scale, scale, ink);
                    }
                }
            }
            cx += ADVANCE * scale;
        }
        cx
    }

    /// Width in pixels a string occupies at `scale`.
    pub fn text_width(text: &str, scale: usize) -> usize {
        text.chars().count() * ADVANCE * scale.max(1)
    }

    /// Height in pixels of one text line at `scale`.
    pub fn text_height(scale: usize) -> usize {
        GLYPH_H * scale.max(1)
    }

    /// Mean intensity over the whole bitmap.
    pub fn mean(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Nearest-neighbor resample to `w`×`h` (used by perceptual hashing).
    pub fn resample(&self, w: usize, h: usize) -> Bitmap {
        let mut out = Bitmap::new(w, h);
        if self.width == 0 || self.height == 0 || w == 0 || h == 0 {
            return out;
        }
        // Box-average per target cell for stability.
        for ty in 0..h {
            let y0 = ty * self.height / h;
            let y1 = (((ty + 1) * self.height).div_ceil(h)).max(y0 + 1);
            for tx in 0..w {
                let x0 = tx * self.width / w;
                let x1 = (((tx + 1) * self.width).div_ceil(w)).max(x0 + 1);
                let mut sum = 0usize;
                let mut n = 0usize;
                for y in y0..y1.min(self.height) {
                    for x in x0..x1.min(self.width) {
                        sum += self.pixels[y * self.width + x] as usize;
                        n += 1;
                    }
                }
                out.pixels[ty * w + tx] = (sum / n.max(1)) as u8;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_canvas_is_white() {
        let b = Bitmap::new(10, 10);
        assert_eq!(b.mean(), 0.0);
        assert_eq!(b.get(5, 5), 0);
    }

    #[test]
    fn out_of_bounds_is_safe() {
        let mut b = Bitmap::new(4, 4);
        b.put(100, 100, 255);
        assert_eq!(b.get(100, 100), 0);
        b.fill_rect(2, 2, 10, 10, 50); // clipped
        assert_eq!(b.get(3, 3), 50);
    }

    #[test]
    fn draw_text_leaves_ink() {
        let mut b = Bitmap::new(200, 20);
        let end = b.draw_text(2, 2, "paypal", 1, INK_TEXT);
        assert_eq!(end, 2 + 6 * ADVANCE);
        assert!(b.mean() > 0.0);
        // 'p' top-left pixel is inked.
        assert_eq!(b.get(2, 2), INK_TEXT);
    }

    #[test]
    fn scaled_text_is_bigger() {
        let mut a = Bitmap::new(300, 40);
        a.draw_text(0, 0, "abc", 1, INK_TEXT);
        let mut c = Bitmap::new(300, 40);
        c.draw_text(0, 0, "abc", 2, INK_TEXT);
        let ink = |bm: &Bitmap| bm.pixels().iter().filter(|&&p| p > 0).count();
        assert!(ink(&c) > ink(&a) * 3);
    }

    #[test]
    fn border_outlines() {
        let mut b = Bitmap::new(10, 10);
        b.draw_border(1, 1, 8, 8, INK_DECOR);
        assert_eq!(b.get(1, 1), INK_DECOR);
        assert_eq!(b.get(8, 8), INK_DECOR);
        assert_eq!(b.get(4, 4), 0);
    }

    #[test]
    fn resample_preserves_mean_roughly() {
        let mut b = Bitmap::new(64, 64);
        b.fill_rect(0, 0, 32, 64, 200);
        let small = b.resample(8, 8);
        assert!(
            (small.mean() - b.mean()).abs() < 10.0,
            "{} vs {}",
            small.mean(),
            b.mean()
        );
        assert_eq!(small.width(), 8);
    }

    #[test]
    fn put_keeps_max_ink() {
        let mut b = Bitmap::new(2, 2);
        b.put(0, 0, 200);
        b.put(0, 0, 100);
        assert_eq!(b.get(0, 0), 200);
    }
}
