//! Block layout engine: DOM → screenshot bitmap.
//!
//! A deliberately simple, deterministic layout model (everything the OCR
//! and image-hash features need, nothing more):
//!
//! * `title` renders into a browser-chrome title bar at the top,
//! * `h1`/`h2` render large (the "logo" area),
//! * `p` and `a` render as body text lines, wrapped at the page width,
//! * `img` renders as a decorated box; an `alt` or `data-text` attribute
//!   renders as text *inside* the box — visible to OCR but absent from the
//!   lexical HTML text, which is exactly the string-obfuscation evasion,
//! * `form` renders as a bordered panel; each `input` becomes an outlined
//!   field showing its `placeholder`, buttons show their label,
//! * `div` with a `data-fill` attribute renders as a decorative band
//!   (layout-obfuscation knob: moving/recoloring bands changes the image
//!   hash without changing the text).

use crate::canvas::{Bitmap, INK_DECOR, INK_PANEL, INK_TEXT};
use crate::font::LINE_ADVANCE;
use squatphi_html::{Document, Node};

/// Page geometry knobs.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Page width in pixels.
    pub width: usize,
    /// Maximum page height in pixels (content past this is clipped, like a
    /// above-the-fold screenshot).
    pub max_height: usize,
    /// Left/right margin.
    pub margin: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 360,
            max_height: 520,
            margin: 8,
        }
    }
}

/// Geometry that cannot be rendered (the layout subtractions would
/// underflow and panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderError {
    /// `width` or `max_height` is zero.
    EmptyViewport,
    /// The margins leave no room for content: `width` must be at least
    /// `2 * margin + 18` (one form field with its padding).
    ViewportNarrowerThanMargins {
        /// The offending width.
        width: usize,
        /// The offending margin.
        margin: usize,
    },
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::EmptyViewport => f.write_str("render: width and max_height must be > 0"),
            RenderError::ViewportNarrowerThanMargins { width, margin } => write!(
                f,
                "render: width {width} leaves no content room inside margin {margin} \
                 (need width >= 2*margin + 18)"
            ),
        }
    }
}

impl std::error::Error for RenderError {}

struct Cursor {
    y: usize,
    margin: usize,
    width: usize,
}

/// Fallible [`render_page`]: validates the geometry instead of
/// panicking on underflowing layout arithmetic.
pub fn try_render_page(doc: &Document, opts: &RenderOptions) -> Result<Bitmap, RenderError> {
    if opts.width == 0 || opts.max_height == 0 {
        return Err(RenderError::EmptyViewport);
    }
    if opts.width < 2 * opts.margin + 18 {
        return Err(RenderError::ViewportNarrowerThanMargins {
            width: opts.width,
            margin: opts.margin,
        });
    }
    Ok(render_page(doc, opts))
}

/// Renders a parsed page to a screenshot.
pub fn render_page(doc: &Document, opts: &RenderOptions) -> Bitmap {
    let mut bmp = Bitmap::new(opts.width, opts.max_height);
    let mut cur = Cursor {
        y: 0,
        margin: opts.margin,
        width: opts.width,
    };

    // Title bar (browser chrome).
    let title = doc
        .elements_named("title")
        .next()
        .map(|id| doc.subtree_text(id))
        .unwrap_or_default();
    bmp.fill_rect(0, 0, opts.width, 14, INK_PANEL);
    bmp.draw_text(
        opts.margin,
        3,
        &truncate_to(&title, opts.width - 2 * opts.margin, 1),
        1,
        INK_TEXT,
    );
    cur.y = 18;

    render_children(doc, Document::ROOT, &mut bmp, &mut cur);
    bmp
}

fn render_children(doc: &Document, id: usize, bmp: &mut Bitmap, cur: &mut Cursor) {
    for &c in doc.children(id) {
        if cur.y >= bmp.height() {
            return;
        }
        match doc.node(c) {
            Node::Element(e) => match e.name.as_str() {
                "title" | "head" => {
                    // Title already drawn; skip head entirely except title.
                }
                "h1" | "h2" => {
                    let text = doc.subtree_text(c);
                    let scale = if e.name == "h1" { 3 } else { 2 };
                    bmp.draw_text(
                        cur.margin,
                        cur.y,
                        &truncate_to(&text, cur.width - 2 * cur.margin, scale),
                        scale,
                        INK_TEXT,
                    );
                    cur.y += LINE_ADVANCE * scale + 2;
                }
                "h3" | "h4" | "h5" | "h6" => {
                    let text = doc.subtree_text(c);
                    draw_wrapped(bmp, cur, &text, 1);
                    cur.y += 2;
                }
                "p" | "a" | "span" | "li" => {
                    let text = doc.subtree_text(c);
                    draw_wrapped(bmp, cur, &text, 1);
                }
                "img" => {
                    let w = attr_usize(e.attr("width"), 120).min(cur.width - 2 * cur.margin);
                    let h = attr_usize(e.attr("height"), 40);
                    bmp.fill_rect(cur.margin, cur.y, w, h, INK_PANEL);
                    bmp.draw_border(cur.margin, cur.y, w, h, INK_DECOR);
                    // Text baked into the image: visible to OCR only.
                    let baked = e.attr("data-text").or_else(|| e.attr("alt")).unwrap_or("");
                    if !baked.is_empty() {
                        let scale = if h >= 30 { 2 } else { 1 };
                        bmp.draw_text(
                            cur.margin + 4,
                            cur.y + (h.saturating_sub(7 * scale)) / 2,
                            &truncate_to(baked, w.saturating_sub(8), scale),
                            scale,
                            INK_TEXT,
                        );
                    }
                    cur.y += h + 4;
                }
                "form" => {
                    render_form(doc, c, bmp, cur);
                }
                "div" => {
                    if let Some(fill) = e.attr("data-fill") {
                        let h = attr_usize(Some(fill), 16);
                        bmp.fill_rect(0, cur.y, cur.width, h, INK_PANEL);
                        cur.y += h + 3;
                    }
                    render_children(doc, c, bmp, cur);
                }
                "br" => cur.y += LINE_ADVANCE,
                "script" | "style" => {}
                _ => render_children(doc, c, bmp, cur),
            },
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    draw_wrapped(bmp, cur, t, 1);
                }
            }
            _ => {}
        }
    }
}

fn render_form(doc: &Document, id: usize, bmp: &mut Bitmap, cur: &mut Cursor) {
    let panel_x = cur.margin;
    let panel_w = cur.width - 2 * cur.margin;
    let top = cur.y;
    cur.y += 6;
    render_form_fields(doc, id, bmp, cur, panel_x + 6, panel_w - 12);
    let bottom = (cur.y + 4).min(bmp.height().saturating_sub(1));
    bmp.draw_border(panel_x, top, panel_w, bottom.saturating_sub(top), INK_DECOR);
    cur.y = bottom + 6;
}

fn render_form_fields(
    doc: &Document,
    id: usize,
    bmp: &mut Bitmap,
    cur: &mut Cursor,
    x: usize,
    w: usize,
) {
    for &c in doc.children(id) {
        match doc.node(c) {
            Node::Element(e) => match e.name.as_str() {
                "input" => {
                    let ty = e.attr("type").unwrap_or("text");
                    if ty == "hidden" {
                        continue;
                    }
                    if ty == "submit" {
                        let label = e.attr("value").unwrap_or("submit");
                        draw_button(bmp, cur, x, label);
                    } else {
                        let placeholder = e.attr("placeholder").unwrap_or("");
                        bmp.draw_border(x, cur.y, w, 14, INK_DECOR);
                        bmp.draw_text(
                            x + 3,
                            cur.y + 3,
                            &truncate_to(placeholder, w - 6, 1),
                            1,
                            INK_TEXT,
                        );
                        cur.y += 18;
                    }
                }
                "button" => {
                    let label = doc.subtree_text(c);
                    draw_button(bmp, cur, x, &label);
                }
                "label" => {
                    let text = doc.subtree_text(c);
                    bmp.draw_text(x, cur.y, &truncate_to(&text, w, 1), 1, INK_TEXT);
                    cur.y += LINE_ADVANCE;
                }
                _ => render_form_fields(doc, c, bmp, cur, x, w),
            },
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    bmp.draw_text(x, cur.y, &truncate_to(t, w, 1), 1, INK_TEXT);
                    cur.y += LINE_ADVANCE;
                }
            }
            _ => {}
        }
    }
}

fn draw_button(bmp: &mut Bitmap, cur: &mut Cursor, x: usize, label: &str) {
    let bw = Bitmap::text_width(label, 1) + 10;
    bmp.fill_rect(x, cur.y, bw, 14, INK_PANEL);
    bmp.draw_border(x, cur.y, bw, 14, INK_DECOR);
    bmp.draw_text(x + 5, cur.y + 3, label, 1, INK_TEXT);
    cur.y += 18;
}

fn draw_wrapped(bmp: &mut Bitmap, cur: &mut Cursor, text: &str, scale: usize) {
    let usable = cur.width.saturating_sub(2 * cur.margin);
    let per_line = (usable / (6 * scale)).max(1);
    let words: Vec<&str> = text.split_whitespace().collect();
    let mut line = String::new();
    let flush = |line: &mut String, bmp: &mut Bitmap, cur: &mut Cursor| {
        if !line.is_empty() {
            bmp.draw_text(cur.margin, cur.y, line, scale, INK_TEXT);
            cur.y += LINE_ADVANCE * scale;
            line.clear();
        }
    };
    for w in words {
        if !line.is_empty() && line.chars().count() + 1 + w.chars().count() > per_line {
            flush(&mut line, bmp, cur);
        }
        if !line.is_empty() {
            line.push(' ');
        }
        // A single over-long word is hard-truncated.
        let mut w = w.to_string();
        if w.chars().count() > per_line {
            w = w.chars().take(per_line).collect();
        }
        line.push_str(&w);
    }
    flush(&mut line, bmp, cur);
}

fn truncate_to(text: &str, width_px: usize, scale: usize) -> String {
    let max_chars = width_px / (6 * scale.max(1));
    text.chars().take(max_chars).collect()
}

fn attr_usize(v: Option<&str>, default: usize) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_html::parse;

    const LOGIN: &str = r#"
        <html><head><title>paypal login</title></head><body>
        <h1>paypal</h1>
        <p>welcome back to your account</p>
        <form action="/signin">
          <input type="email" placeholder="email or mobile">
          <input type="password" placeholder="password">
          <button type="submit">log in</button>
        </form>
        </body></html>"#;

    #[test]
    fn renders_nonempty_page() {
        let bmp = render_page(&parse(LOGIN), &RenderOptions::default());
        assert!(bmp.mean() > 1.0, "page looks blank: mean {}", bmp.mean());
    }

    #[test]
    fn deterministic() {
        let a = render_page(&parse(LOGIN), &RenderOptions::default());
        let b = render_page(&parse(LOGIN), &RenderOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_pages_render_differently() {
        let a = render_page(&parse(LOGIN), &RenderOptions::default());
        let other = LOGIN.replace("paypal", "facebook");
        let b = render_page(&parse(&other), &RenderOptions::default());
        assert_ne!(a, b);
    }

    #[test]
    fn image_baked_text_is_rendered() {
        let with_img = r#"<body><img width="200" height="40" data-text="paypal"></body>"#;
        let without = r#"<body><img width="200" height="40"></body>"#;
        let a = render_page(&parse(with_img), &RenderOptions::default());
        let b = render_page(&parse(without), &RenderOptions::default());
        assert_ne!(a, b, "baked image text must leave ink");
    }

    #[test]
    fn decorative_bands_change_pixels_only() {
        let plain = r#"<body><p>hello world</p></body>"#;
        let banded = r#"<body><div data-fill="24"></div><p>hello world</p></body>"#;
        let a = render_page(&parse(plain), &RenderOptions::default());
        let b = render_page(&parse(banded), &RenderOptions::default());
        assert_ne!(a, b);
    }

    #[test]
    fn clips_overflowing_content() {
        let mut html = String::from("<body>");
        for i in 0..500 {
            html.push_str(&format!("<p>line number {i} with several words</p>"));
        }
        html.push_str("</body>");
        let opts = RenderOptions::default();
        let bmp = render_page(&parse(&html), &opts);
        assert_eq!(bmp.height(), opts.max_height);
    }

    #[test]
    fn try_render_rejects_impossible_geometry() {
        let doc = parse(LOGIN);
        assert_eq!(
            try_render_page(
                &doc,
                &RenderOptions {
                    width: 0,
                    ..RenderOptions::default()
                }
            ),
            Err(RenderError::EmptyViewport)
        );
        assert_eq!(
            try_render_page(
                &doc,
                &RenderOptions {
                    width: 100,
                    max_height: 0,
                    margin: 8,
                }
            ),
            Err(RenderError::EmptyViewport)
        );
        assert_eq!(
            try_render_page(
                &doc,
                &RenderOptions {
                    width: 20,
                    max_height: 100,
                    margin: 8,
                }
            ),
            Err(RenderError::ViewportNarrowerThanMargins {
                width: 20,
                margin: 8
            })
        );
        let ok = try_render_page(&doc, &RenderOptions::default()).unwrap();
        assert_eq!(ok, render_page(&doc, &RenderOptions::default()));
    }

    #[test]
    fn empty_document_renders_title_bar_only() {
        let bmp = render_page(&parse(""), &RenderOptions::default());
        // Title bar panel ink only.
        assert!(bmp.mean() > 0.0 && bmp.mean() < 20.0);
    }
}
