//! ASCII-art dump of a bitmap — the reproduction's stand-in for the
//! screenshot figures (Figure 14).

use crate::canvas::Bitmap;

/// Renders the bitmap as ASCII art, downsampling to at most `cols`
/// characters per row. Each character cell takes the *maximum* intensity
/// of its pixel block (max-pooling) so thin text strokes survive the
/// reduction; intensity maps to the ` .:*#` ramp.
pub fn to_ascii(bmp: &Bitmap, cols: usize) -> String {
    if bmp.width() == 0 || bmp.height() == 0 {
        return String::new();
    }
    let cols = cols.max(8).min(bmp.width());
    // Terminal cells are ~2x taller than wide; halve the row count.
    let rows = ((bmp.height() * cols) / bmp.width() / 2).max(1);
    let ramp = [b' ', b'.', b':', b'*', b'#'];
    let mut out = String::with_capacity((cols + 1) * rows);
    for ty in 0..rows {
        let y0 = ty * bmp.height() / rows;
        let y1 = (((ty + 1) * bmp.height()).div_ceil(rows))
            .max(y0 + 1)
            .min(bmp.height());
        for tx in 0..cols {
            let x0 = tx * bmp.width() / cols;
            let x1 = (((tx + 1) * bmp.width()).div_ceil(cols))
                .max(x0 + 1)
                .min(bmp.width());
            let mut v = 0u8;
            for y in y0..y1 {
                for x in x0..x1 {
                    v = v.max(bmp.get(x, y));
                }
            }
            out.push(ramp[(v as usize * (ramp.len() - 1) + 127) / 255] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_is_spaces() {
        let art = to_ascii(&Bitmap::new(64, 32), 32);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn ink_shows_up() {
        let mut b = Bitmap::new(64, 32);
        b.fill_rect(0, 0, 64, 32, 255);
        let art = to_ascii(&b, 32);
        assert!(art.contains('#'));
    }

    #[test]
    fn respects_column_budget() {
        let b = Bitmap::new(360, 520);
        let art = to_ascii(&b, 80);
        for line in art.lines() {
            assert!(line.chars().count() <= 80);
        }
    }

    #[test]
    fn zero_sized_bitmap_is_empty() {
        assert_eq!(to_ascii(&Bitmap::new(0, 0), 80), "");
    }
}
