//! Point-in-time view of a [`Registry`](crate::Registry): a sorted map from
//! dotted metric names to values, plus the single workspace-wide rule for
//! which names count as timing data.

use std::collections::BTreeMap;

use crate::json::Json;

/// A metric value. Counters and histogram buckets are `U64`; gauges may carry
/// any variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn zeroed(&self) -> Value {
        match self {
            Value::U64(_) => Value::U64(0),
            Value::I64(_) => Value::I64(0),
            Value::F64(_) => Value::F64(0.0),
            Value::Bool(b) => Value::Bool(*b),
            Value::Str(s) => Value::Str(s.clone()),
        }
    }

    /// The value as a [`Json`] leaf.
    pub fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::U64(*v),
            Value::I64(v) => Json::I64(*v),
            Value::F64(v) => Json::F64(*v),
            Value::Bool(v) => Json::Bool(*v),
            Value::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// The one `--timings` rule, applied by every CLI surface.
///
/// A metric name is timing data when any dot-separated segment ends with
/// `_nanos`, `_durations`, or `_per_sec`, or equals `wall` or `elapsed`.
/// Timing values are measured from the host's monotonic clock, so they vary
/// run to run; stripping them (zeroing, not removing, so the schema is
/// stable) is what makes default `--json` output two-run byte-identical.
///
/// Deliberately *not* timing data: `_ns` names like `transport.backoff_ns`,
/// which count **virtual** (simulated-clock) time and are fully
/// deterministic — they have always appeared in byte-identity-checked
/// output and must keep doing so.
pub fn is_timing_name(name: &str) -> bool {
    name.split('.').any(|segment| {
        segment == "wall"
            || segment == "elapsed"
            || segment.ends_with("_nanos")
            || segment.ends_with("_durations")
            || segment.ends_with("_per_sec")
    })
}

/// Sorted, immutable-by-convention view of a registry at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: BTreeMap<String, Value>,
}

impl Snapshot {
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, value: Value) {
        self.entries.insert(name.into(), value);
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Counter/gauge lookup as u64. Missing names and non-numeric values
    /// resolve to `None`.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        match self.entries.get(name)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Like [`Snapshot::get_u64`] but missing names read as zero — the
    /// resolution rule invariant terms use.
    pub fn u64_or_zero(&self, name: &str) -> u64 {
        self.get_u64(name).unwrap_or(0)
    }

    pub fn get_f64(&self, name: &str) -> Option<f64> {
        match self.entries.get(name)? {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Zero every timing entry (per [`is_timing_name`]). Keys stay in place so
    /// stripped and unstripped output share a schema.
    pub fn strip_timings(&mut self) {
        for (name, value) in self.entries.iter_mut() {
            if is_timing_name(name) {
                *value = value.zeroed();
            }
        }
    }

    /// Copy of this snapshot with entries failing the predicate removed.
    /// Used by invariance tests to drop execution-shape scopes (worker
    /// breakdowns) that legitimately differ with thread count.
    pub fn retain(&self, mut keep: impl FnMut(&str) -> bool) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, value)| (name.clone(), value.clone()))
                .collect(),
        }
    }

    /// Render the snapshot as a nested JSON tree: names split on `.` become
    /// object paths, siblings sorted lexicographically (BTreeMap order).
    pub fn to_json(&self) -> Json {
        let mut root = Tree::default();
        for (name, value) in &self.entries {
            root.insert(name.split('.').collect::<Vec<_>>().as_slice(), value);
        }
        root.to_json()
    }

    /// Convenience: nested-tree render via the shared encoder.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// One entry as a [`Json`] leaf (`Json::Null` when absent) — for
    /// encoders that lay out snapshot values in a bespoke field order.
    pub fn json_value(&self, name: &str) -> Json {
        self.entries
            .get(name)
            .map(Value::to_json)
            .unwrap_or(Json::Null)
    }
}

/// Intermediate trie for nested rendering. A name that is both a leaf and a
/// prefix (`a` and `a.b`) keeps the leaf under the reserved key `_value`.
#[derive(Default)]
struct Tree<'a> {
    value: Option<&'a Value>,
    children: BTreeMap<&'a str, Tree<'a>>,
}

impl<'a> Tree<'a> {
    fn insert(&mut self, path: &[&'a str], value: &'a Value) {
        match path {
            [] => self.value = Some(value),
            [head, rest @ ..] => self.children.entry(head).or_default().insert(rest, value),
        }
    }

    fn to_json(&self) -> Json {
        if self.children.is_empty() {
            return self.value.map(Value::to_json).unwrap_or(Json::Null);
        }
        let mut obj = Json::obj();
        if let Some(value) = self.value {
            obj.push("_value", value.to_json());
        }
        for (key, child) in &self.children {
            obj.push(key, child.to_json());
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_rule_matches_by_segment() {
        assert!(is_timing_name("scan.wall"));
        assert!(is_timing_name("analysis.parse_nanos"));
        assert!(is_timing_name("scan.exec.worker_durations.le_1024"));
        assert!(is_timing_name("scan.records_per_sec"));
        assert!(!is_timing_name("scan.records"));
        assert!(!is_timing_name("watch.counters.injected"));
        // Virtual-clock totals are deterministic and must survive stripping.
        assert!(!is_timing_name("transport.backoff_ns"));
        // A segment merely containing the suffix mid-word does not match.
        assert!(!is_timing_name("scan.wallpaper"));
    }

    #[test]
    fn strip_zeroes_timing_values_but_keeps_keys() {
        let mut snap = Snapshot::new();
        snap.insert("a.records", Value::U64(10));
        snap.insert("a.wall_nanos", Value::U64(12345));
        snap.insert("a.rate_per_sec", Value::F64(88.5));
        snap.strip_timings();
        assert_eq!(snap.get_u64("a.records"), Some(10));
        assert_eq!(snap.get_u64("a.wall_nanos"), Some(0));
        assert_eq!(snap.get_f64("a.rate_per_sec"), Some(0.0));
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn nested_render_is_sorted_and_stable() {
        let mut snap = Snapshot::new();
        snap.insert("b.y", Value::U64(2));
        snap.insert("b.x", Value::U64(1));
        snap.insert("a", Value::Bool(true));
        let text = snap.render();
        assert_eq!(
            text,
            "{\n  \"a\": true,\n  \"b\": {\n    \"x\": 1,\n    \"y\": 2\n  }\n}"
        );
        assert_eq!(text, snap.render());
    }

    #[test]
    fn retain_filters_scopes() {
        let mut snap = Snapshot::new();
        snap.insert("scan.records", Value::U64(5));
        snap.insert("scan.exec.workers", Value::U64(8));
        let core = snap.retain(|name| !name.starts_with("scan.exec."));
        assert_eq!(core.len(), 1);
        assert_eq!(core.get_u64("scan.records"), Some(5));
    }
}
