//! Declarative conservation identities.
//!
//! Every pipeline stage conserves *something*: records in equals records out,
//! pages equal cache hits plus misses, detections split exactly into crawl
//! outcomes. Before this crate those identities were re-derived by hand in 15
//! scattered `reconciles()` methods. Here an identity is data — two lists of
//! terms that must sum equal against a snapshot — and a failed check is a
//! structured [`Violation`] naming each term's resolved value, not a bare
//! `false`.

use std::fmt;

use crate::snapshot::Snapshot;

/// One side's addend: a metric name resolved against the snapshot (missing
/// names read as zero), or a literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Metric(String),
    Const(u64),
}

impl Term {
    fn resolve(&self, snap: &Snapshot) -> (String, u64) {
        match self {
            Term::Metric(name) => (name.clone(), snap.u64_or_zero(name)),
            Term::Const(v) => (format!("const:{v}"), *v),
        }
    }
}

/// A named identity `sum(lhs) == sum(rhs)` over snapshot metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Invariant {
    pub name: String,
    pub lhs: Vec<Term>,
    pub rhs: Vec<Term>,
}

impl Invariant {
    /// The common case: every term is a metric name.
    pub fn sum_eq(name: &str, lhs: &[&str], rhs: &[&str]) -> Invariant {
        Invariant {
            name: name.to_string(),
            lhs: lhs.iter().map(|n| Term::Metric((*n).to_string())).collect(),
            rhs: rhs.iter().map(|n| Term::Metric((*n).to_string())).collect(),
        }
    }

    pub fn check(&self, snap: &Snapshot) -> Result<(), Violation> {
        let lhs: Vec<(String, u64)> = self.lhs.iter().map(|t| t.resolve(snap)).collect();
        let rhs: Vec<(String, u64)> = self.rhs.iter().map(|t| t.resolve(snap)).collect();
        let lhs_total: u64 = lhs.iter().map(|(_, v)| *v).sum();
        let rhs_total: u64 = rhs.iter().map(|(_, v)| *v).sum();
        if lhs_total == rhs_total {
            Ok(())
        } else {
            Err(Violation {
                invariant: self.name.clone(),
                lhs,
                rhs,
                lhs_total,
                rhs_total,
            })
        }
    }

    pub fn holds(&self, snap: &Snapshot) -> bool {
        self.check(snap).is_ok()
    }
}

/// A failed identity with every term's resolved value — enough context to
/// diagnose which counter leaked without re-running under a debugger.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub invariant: String,
    pub lhs: Vec<(String, u64)>,
    pub rhs: Vec<(String, u64)>,
    pub lhs_total: u64,
    pub rhs_total: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant {} violated: {} != {} (",
            self.invariant, self.lhs_total, self.rhs_total
        )?;
        for (i, (name, value)) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, " vs ")?;
        for (i, (name, value)) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for Violation {}

/// An ordered collection of invariants checked together against one snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvariantSet {
    invariants: Vec<Invariant>,
}

impl InvariantSet {
    pub fn new() -> InvariantSet {
        InvariantSet::default()
    }

    pub fn push(&mut self, invariant: Invariant) -> &mut InvariantSet {
        self.invariants.push(invariant);
        self
    }

    pub fn with(mut self, invariant: Invariant) -> InvariantSet {
        self.invariants.push(invariant);
        self
    }

    pub fn iter(&self) -> impl Iterator<Item = &Invariant> {
        self.invariants.iter()
    }

    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Check every invariant; `Err` carries every violation, not just the
    /// first, so one report covers the whole reconciliation.
    pub fn check_all(&self, snap: &Snapshot) -> Result<(), Vec<Violation>> {
        let violations: Vec<Violation> = self
            .invariants
            .iter()
            .filter_map(|inv| inv.check(snap).err())
            .collect();
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// True when every identity holds — the drop-in replacement for the old
    /// boolean `reconciles()` surfaces.
    pub fn all_hold(&self, snap: &Snapshot) -> bool {
        self.check_all(snap).is_ok()
    }
}

impl FromIterator<Invariant> for InvariantSet {
    fn from_iter<I: IntoIterator<Item = Invariant>>(iter: I) -> InvariantSet {
        InvariantSet {
            invariants: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Value;

    fn snap(pairs: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::new();
        for (name, value) in pairs {
            s.insert(*name, Value::U64(*value));
        }
        s
    }

    #[test]
    fn holding_invariant_passes() {
        let s = snap(&[("injected", 10), ("accepted", 7), ("dropped", 3)]);
        let inv = Invariant::sum_eq("ingest", &["injected"], &["accepted", "dropped"]);
        assert!(inv.check(&s).is_ok());
    }

    #[test]
    fn violation_names_every_term() {
        let s = snap(&[("pages", 10), ("hits", 4), ("misses", 5)]);
        let inv = Invariant::sum_eq("cache", &["pages"], &["hits", "misses"]);
        let violation = inv.check(&s).unwrap_err();
        assert_eq!(violation.lhs_total, 10);
        assert_eq!(violation.rhs_total, 9);
        assert_eq!(
            violation.rhs,
            vec![("hits".to_string(), 4), ("misses".to_string(), 5)]
        );
        let text = violation.to_string();
        assert!(text.contains("invariant cache violated: 10 != 9"));
        assert!(text.contains("hits=4 + misses=5"));
    }

    #[test]
    fn missing_metric_reads_as_zero() {
        let s = snap(&[("total", 0)]);
        let inv = Invariant::sum_eq("empty", &["total"], &["absent_a", "absent_b"]);
        assert!(inv.check(&s).is_ok());
    }

    #[test]
    fn set_reports_all_violations() {
        let s = snap(&[("a", 1), ("b", 2), ("c", 3)]);
        let set = InvariantSet::new()
            .with(Invariant::sum_eq("good", &["c"], &["a", "b"]))
            .with(Invariant::sum_eq("bad1", &["a"], &["b"]))
            .with(Invariant::sum_eq("bad2", &["b"], &["c"]));
        let violations = set.check_all(&s).unwrap_err();
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].invariant, "bad1");
        assert_eq!(violations[1].invariant, "bad2");
        assert!(!set.all_hold(&s));
    }

    #[test]
    fn const_terms_resolve() {
        let s = snap(&[("x", 5)]);
        let inv = Invariant {
            name: "const".to_string(),
            lhs: vec![Term::Metric("x".to_string())],
            rhs: vec![Term::Const(5)],
        };
        assert!(inv.holds(&s));
    }
}
