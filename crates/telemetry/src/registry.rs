//! The registry: a process-local, thread-safe home for every metric a run
//! produces. Snapshots are deterministic — names are sorted and values read
//! atomically — so two identical runs snapshot byte-identically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::snapshot::{Snapshot, Value};

/// Log2 bucket upper bounds (nanoseconds) for duration histograms: 1us, 16us,
/// 256us, 4ms, 65ms, 1s, and overflow. Coarse on purpose — buckets exist to
/// spot order-of-magnitude shifts, not to replace a profiler.
const BUCKET_BOUNDS_NANOS: [u64; 6] = [1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30];

#[derive(Default)]
struct State {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Value>,
    histograms: BTreeMap<String, Arc<HistogramCells>>,
}

/// Shared metric registry. Cheap to clone; clones observe the same metrics.
#[derive(Clone, Default)]
pub struct Registry {
    state: Arc<Mutex<State>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter with this dotted name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut state = self.state.lock().expect("telemetry registry poisoned");
        let cell = state
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell }
    }

    /// Get or create a duration histogram with this dotted name. By the
    /// workspace timing rule the name's last segment must end in
    /// `_durations` so `--timings` stripping covers its buckets.
    pub fn histogram(&self, name: &str) -> Histogram {
        debug_assert!(
            name.rsplit('.')
                .next()
                .is_some_and(|leaf| leaf.ends_with("_durations")),
            "histogram names must end in _durations: {name}"
        );
        let mut state = self.state.lock().expect("telemetry registry poisoned");
        let cells = state
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCells::default()))
            .clone();
        Histogram { cells }
    }

    /// Set a gauge. Last write wins; snapshots read the current value.
    pub fn set_u64(&self, name: &str, value: u64) {
        self.set(name, Value::U64(value));
    }

    pub fn set_i64(&self, name: &str, value: i64) {
        self.set(name, Value::I64(value));
    }

    pub fn set_f64(&self, name: &str, value: f64) {
        self.set(name, Value::F64(value));
    }

    pub fn set_bool(&self, name: &str, value: bool) {
        self.set(name, Value::Bool(value));
    }

    pub fn set_str(&self, name: &str, value: &str) {
        self.set(name, Value::Str(value.to_string()));
    }

    fn set(&self, name: &str, value: Value) {
        let mut state = self.state.lock().expect("telemetry registry poisoned");
        state.gauges.insert(name.to_string(), value);
    }

    /// A view of this registry that prefixes every metric name with
    /// `prefix.`. Scopes nest: `reg.scope("watch").scope("counters")`.
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// Start a span timer; on drop it adds its elapsed monotonic nanos to the
    /// counter `<name>_nanos`. Spans nest by name: `span.child("parse")`
    /// records under `<name>.parse_nanos`.
    pub fn span(&self, name: &str) -> Span {
        Span {
            registry: self.clone(),
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// Sorted point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.state.lock().expect("telemetry registry poisoned");
        let mut snap = Snapshot::new();
        // Gauges first so a counter registered under the same name wins —
        // counters are the stronger (monotonic) claim to a name.
        for (name, value) in &state.gauges {
            snap.insert(name.clone(), value.clone());
        }
        for (name, cell) in &state.counters {
            snap.insert(name.clone(), Value::U64(cell.load(Ordering::SeqCst)));
        }
        for (name, cells) in &state.histograms {
            snap.insert(
                format!("{name}.count"),
                Value::U64(cells.count.load(Ordering::SeqCst)),
            );
            snap.insert(
                format!("{name}.sum_nanos"),
                Value::U64(cells.sum_nanos.load(Ordering::SeqCst)),
            );
            for (i, bucket) in cells.buckets.iter().enumerate() {
                let label = bucket_label(i);
                snap.insert(
                    format!("{name}.{label}"),
                    Value::U64(bucket.load(Ordering::SeqCst)),
                );
            }
        }
        snap
    }
}

fn bucket_label(index: usize) -> String {
    match BUCKET_BOUNDS_NANOS.get(index) {
        Some(bound) => format!("le_{bound}"),
        None => "le_inf".to_string(),
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("telemetry registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &state.counters.len())
            .field("gauges", &state.gauges.len())
            .field("histograms", &state.histograms.len())
            .finish()
    }
}

/// Handle to a monotonic counter. Clone-able, lock-free on the hot path.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

#[derive(Default)]
struct HistogramCells {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKET_BOUNDS_NANOS.len() + 1],
}

/// Handle to a duration histogram.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Histogram {
    pub fn record_nanos(&self, nanos: u64) {
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        let idx = BUCKET_BOUNDS_NANOS
            .iter()
            .position(|bound| nanos <= *bound)
            .unwrap_or(BUCKET_BOUNDS_NANOS.len());
        self.cells.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_nanos(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::SeqCst)
    }
}

/// Name-prefixing view of a registry; see [`Registry::scope`].
#[derive(Clone)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    fn full(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.full(name))
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(&self.full(name))
    }

    pub fn set_u64(&self, name: &str, value: u64) {
        self.registry.set_u64(&self.full(name), value);
    }

    pub fn set_i64(&self, name: &str, value: i64) {
        self.registry.set_i64(&self.full(name), value);
    }

    pub fn set_f64(&self, name: &str, value: f64) {
        self.registry.set_f64(&self.full(name), value);
    }

    pub fn set_bool(&self, name: &str, value: bool) {
        self.registry.set_bool(&self.full(name), value);
    }

    pub fn set_str(&self, name: &str, value: &str) {
        self.registry.set_str(&self.full(name), value);
    }

    pub fn scope(&self, prefix: &str) -> Scope {
        self.registry.scope(&self.full(prefix))
    }

    pub fn span(&self, name: &str) -> Span {
        self.registry.span(&self.full(name))
    }
}

/// RAII span timer; see [`Registry::span`]. Dropping records elapsed nanos.
pub struct Span {
    registry: Registry,
    name: String,
    started: Instant,
}

impl Span {
    /// Nested child span recording under `<parent>.<name>_nanos`.
    pub fn child(&self, name: &str) -> Span {
        self.registry.span(&format!("{}.{name}", self.name))
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry
            .counter(&format!("{}_nanos", self.name))
            .add(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_across_clones_and_threads() {
        let reg = Registry::new();
        let counter = reg.counter("test.hits");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("test.hits").get(), 4000);
        assert_eq!(reg.snapshot().get_u64("test.hits"), Some(4000));
    }

    #[test]
    fn scopes_prefix_names() {
        let reg = Registry::new();
        let scope = reg.scope("watch").scope("counters");
        scope.counter("injected").add(7);
        scope.set_bool("interrupted", false);
        let snap = reg.snapshot();
        assert_eq!(snap.get_u64("watch.counters.injected"), Some(7));
        assert_eq!(
            snap.get("watch.counters.interrupted"),
            Some(&Value::Bool(false))
        );
    }

    #[test]
    fn span_records_nanos_counter() {
        let reg = Registry::new();
        {
            let span = reg.span("stage.scan");
            let _child = span.child("parse");
        }
        let snap = reg.snapshot();
        assert!(snap.get_u64("stage.scan_nanos").is_some());
        assert!(snap.get_u64("stage.scan.parse_nanos").is_some());
        // Both names fall under the timing rule, so default output strips them.
        let mut stripped = snap.clone();
        stripped.strip_timings();
        assert_eq!(stripped.get_u64("stage.scan_nanos"), Some(0));
    }

    #[test]
    fn histogram_buckets_are_cumulative_free_and_stripped() {
        let reg = Registry::new();
        let hist = reg.histogram("scan.exec.worker_durations");
        hist.record_nanos(500); // le_1024
        hist.record_nanos(2_000_000); // le_4194304
        hist.record_nanos(u64::MAX); // le_inf
        let snap = reg.snapshot();
        assert_eq!(snap.get_u64("scan.exec.worker_durations.count"), Some(3));
        assert_eq!(snap.get_u64("scan.exec.worker_durations.le_1024"), Some(1));
        assert_eq!(
            snap.get_u64("scan.exec.worker_durations.le_4194304"),
            Some(1)
        );
        assert_eq!(snap.get_u64("scan.exec.worker_durations.le_inf"), Some(1));
        let mut stripped = snap;
        stripped.strip_timings();
        assert_eq!(
            stripped.get_u64("scan.exec.worker_durations.count"),
            Some(0)
        );
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        reg.set_u64("a.depth", 3);
        reg.set_u64("a.depth", 9);
        assert_eq!(reg.snapshot().get_u64("a.depth"), Some(9));
    }
}
