//! The workspace's conservation identities, in one audited place.
//!
//! Each pipeline surface exports its counters into a canonical registry
//! scope (`scan.`, `analysis.`, `supervision.`, `watch.`, `crawl.`); the
//! sets below name the identities those scopes must satisfy. The legacy
//! `reconciles()` methods on the view structs delegate here, so adding or
//! auditing an identity is an edit to this file, not a hunt across 15
//! call sites.

use crate::invariant::{Invariant, InvariantSet};

/// Scan-stage identities (`scan.` scope, exported by
/// `dnsdb::{ScanOutcome, ScanMetrics}`):
///
/// * every surviving match is counted in exactly one type bucket,
/// * every surviving match is counted in exactly one brand bucket
///   (`scan.by_brand_total` is the pre-summed brand histogram),
/// * the per-worker ledger accounts for every scanned record,
/// * matches found by workers equal matches kept plus dedupe drops.
pub fn scan_invariants() -> InvariantSet {
    InvariantSet::new()
        .with(Invariant::sum_eq(
            "scan.matches_by_type",
            &["scan.matches"],
            &[
                "scan.by_type.homograph",
                "scan.by_type.bits",
                "scan.by_type.typo",
                "scan.by_type.combo",
                "scan.by_type.wrong_tld",
            ],
        ))
        .with(Invariant::sum_eq(
            "scan.matches_by_brand",
            &["scan.matches"],
            &["scan.by_brand_total"],
        ))
        .with(Invariant::sum_eq(
            "scan.records_accounted",
            &["scan.scanned"],
            &["scan.exec.records"],
        ))
        .with(Invariant::sum_eq(
            "scan.invalid_accounted",
            &["scan.invalid"],
            &["scan.exec.invalid"],
        ))
}

/// Page-analysis identities (`analysis.` scope, exported by
/// `squatphi::AnalysisSnapshot`): every page is a cache hit or a miss.
pub fn analysis_invariants() -> InvariantSet {
    InvariantSet::new().with(Invariant::sum_eq(
        "analysis.cache_conservation",
        &["analysis.pages"],
        &["analysis.cache_hits", "analysis.cache_misses"],
    ))
}

/// Supervision identities (`supervision.` scope, exported by
/// `squatphi::SupervisionReport`): every injected fault lands exactly once
/// as quarantined, recovered, degraded or truncated.
pub fn supervision_invariants() -> InvariantSet {
    InvariantSet::new()
        .with(Invariant::sum_eq(
            "supervision.panics_accounted",
            &["supervision.injected.analyzer_panics"],
            &["supervision.quarantined_injected", "supervision.recovered"],
        ))
        .with(Invariant::sum_eq(
            "supervision.poisons_accounted",
            &["supervision.degraded"],
            &[
                "supervision.injected.poisoned_pages",
                "supervision.degraded_natural",
            ],
        ))
        .with(Invariant::sum_eq(
            "supervision.truncations_accounted",
            &["supervision.injected.truncated_records"],
            &["supervision.truncated"],
        ))
}

/// Crawl identities (`crawl.` scope, exported by
/// `crawler::CrawlStats`): every live fetch has exactly one redirect class.
pub fn crawl_invariants() -> InvariantSet {
    InvariantSet::new()
        .with(Invariant::sum_eq(
            "crawl.web_redirect_split",
            &["crawl.web_live"],
            &[
                "crawl.web_no_redirect",
                "crawl.web_redirect_original",
                "crawl.web_redirect_market",
                "crawl.web_redirect_other",
            ],
        ))
        .with(Invariant::sum_eq(
            "crawl.mobile_redirect_split",
            &["crawl.mobile_live"],
            &[
                "crawl.mobile_no_redirect",
                "crawl.mobile_redirect_original",
                "crawl.mobile_redirect_market",
                "crawl.mobile_redirect_other",
            ],
        ))
}

/// Watch-daemon identities (`watch.counters.` and `watch.queues.` scopes,
/// exported by `squatphi::WatchSummary`): the five queue-conservation
/// identities the streaming stage has always guaranteed.
pub fn watch_invariants() -> InvariantSet {
    InvariantSet::new()
        .with(Invariant::sum_eq(
            "watch.ingest_conservation",
            &["watch.counters.injected"],
            &[
                "watch.counters.accepted",
                "watch.counters.dropped_registrations",
                "watch.counters.dropped_churn",
                "watch.counters.dropped_feed",
            ],
        ))
        .with(Invariant::sum_eq(
            "watch.detect_conservation",
            &["watch.counters.accepted"],
            &["watch.counters.processed", "watch.queues.ingest_depth"],
        ))
        .with(Invariant::sum_eq(
            "watch.processed_by_kind",
            &["watch.counters.processed"],
            &[
                "watch.counters.registrations",
                "watch.counters.churn_hits",
                "watch.counters.churn_misses",
                "watch.counters.feed_hits",
                "watch.counters.feed_misses",
            ],
        ))
        .with(Invariant::sum_eq(
            "watch.candidate_conservation",
            &["watch.counters.detected"],
            &[
                "watch.counters.first_crawls",
                "watch.counters.purged_candidates",
                "watch.counters.duplicate_candidates",
                "watch.queues.candidate_depth",
            ],
        ))
        .with(Invariant::sum_eq(
            "watch.crawl_jobs_split",
            &["watch.counters.crawl_jobs"],
            &["watch.counters.first_crawls", "watch.counters.recrawls"],
        ))
}

/// Visual-similarity index identities (`phash.index.` scope, exported by
/// `imghash::index::HashIndex`): every candidate the index examines is
/// either verified (within the radius) or pruned — the probe ledger leaks
/// nothing, on the multi-index path and the BK-tree fallback alike.
pub fn phash_index_invariants() -> InvariantSet {
    InvariantSet::new().with(Invariant::sum_eq(
        "phash.index.probe_conservation",
        &["phash.index.probes"],
        &["phash.index.verified", "phash.index.pruned"],
    ))
}

/// Durable-state identities (`durability.` scope, exported by
/// `squatphi_durability::DurabilityStats`): every checkpoint read
/// resolves to exactly one outcome — served by the newest generation,
/// recovered from an older one, recomputed (cold start or stale
/// config), or reported unrecoverable. A read that fell through the
/// classifier without being accounted is exactly the "silent corruption
/// fallback" failure mode this scope exists to rule out.
pub fn durability_invariants() -> InvariantSet {
    InvariantSet::new().with(Invariant::sum_eq(
        "durability.reads_accounted",
        &["durability.reads"],
        &[
            "durability.valid",
            "durability.recovered",
            "durability.recomputed",
            "durability.unrecoverable",
        ],
    ))
}

/// Every identity the batch pipeline must satisfy end-to-end — what
/// `PipelineResult::check_invariants` runs.
pub fn pipeline_invariants() -> InvariantSet {
    scan_invariants()
        .iter()
        .chain(analysis_invariants().iter())
        .chain(supervision_invariants().iter())
        .chain(crawl_invariants().iter())
        .chain(phash_index_invariants().iter())
        .chain(durability_invariants().iter())
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Snapshot, Value};

    #[test]
    fn sets_are_nonempty_and_named_by_scope() {
        for (set, scope) in [
            (scan_invariants(), "scan."),
            (analysis_invariants(), "analysis."),
            (supervision_invariants(), "supervision."),
            (crawl_invariants(), "crawl."),
            (watch_invariants(), "watch."),
            (phash_index_invariants(), "phash.index."),
            (durability_invariants(), "durability."),
        ] {
            assert!(!set.is_empty());
            for inv in set.iter() {
                assert!(inv.name.starts_with(scope), "{}", inv.name);
            }
        }
        assert_eq!(
            pipeline_invariants().len(),
            scan_invariants().len()
                + analysis_invariants().len()
                + supervision_invariants().len()
                + crawl_invariants().len()
                + phash_index_invariants().len()
                + durability_invariants().len()
        );
    }

    #[test]
    fn unaccounted_durability_read_is_caught() {
        let mut snap = Snapshot::new();
        snap.insert("durability.reads", Value::U64(3));
        snap.insert("durability.valid", Value::U64(1));
        snap.insert("durability.recovered", Value::U64(1));
        // One read neither valid, recovered, recomputed nor unrecoverable.
        let violations = durability_invariants().check_all(&snap).unwrap_err();
        assert_eq!(violations[0].invariant, "durability.reads_accounted");
    }

    #[test]
    fn empty_snapshot_trivially_reconciles() {
        // All identities are sums of zeros over an empty registry.
        let snap = Snapshot::new();
        assert!(pipeline_invariants().all_hold(&snap));
        assert!(watch_invariants().all_hold(&snap));
    }

    #[test]
    fn leaked_index_probe_is_caught() {
        let mut snap = Snapshot::new();
        snap.insert("phash.index.probes", Value::U64(10));
        snap.insert("phash.index.verified", Value::U64(6));
        snap.insert("phash.index.pruned", Value::U64(3));
        // One probe neither verified nor pruned.
        let violations = phash_index_invariants().check_all(&snap).unwrap_err();
        assert_eq!(violations[0].invariant, "phash.index.probe_conservation");
    }

    #[test]
    fn leaked_watch_event_is_caught() {
        let mut snap = Snapshot::new();
        snap.insert("watch.counters.injected", Value::U64(5));
        snap.insert("watch.counters.accepted", Value::U64(4));
        // One injected event neither accepted nor dropped.
        let violations = watch_invariants().check_all(&snap).unwrap_err();
        assert_eq!(violations[0].invariant, "watch.ingest_conservation");
    }
}
