//! The one JSON encoder every metrics surface in the workspace emits through.
//!
//! The workspace builds offline with no serde; before this crate existed each
//! metrics struct hand-rolled its own encoder (ten copies, each with its own
//! escaping and float rules). `Json` is an ordered document value: objects
//! preserve insertion order, so callers control field layout explicitly and
//! two runs of the same code render byte-identical output.

use std::fmt::Write as _;

/// An ordered JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    /// Rendered with [`fmt_f64`]: fixed precision, non-finite values map to 0.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object; keys are rendered in the order pushed.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object, ready for [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object. Panics if `self` is not an object: that
    /// is a programming error in an encoder, not a data condition.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::push on non-object"),
        }
        self
    }

    /// Render as pretty-printed JSON: two-space indent, `"key": value`,
    /// trailing newline omitted (callers add one when writing files).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Deterministic float formatting: six fractional digits, and non-finite
/// values (NaN, ±inf from empty-denominator rates) render as `0.000000` so
/// output never contains tokens JSON parsers reject.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_object_in_insertion_order() {
        let mut inner = Json::obj();
        inner.push("b", Json::U64(2));
        inner.push("a", Json::U64(1));
        let mut doc = Json::obj();
        doc.push("z", inner);
        doc.push("list", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"z\": {\n    \"b\": 2,\n    \"a\": 1\n  },\n  \"list\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }

    #[test]
    fn non_finite_floats_render_as_zero() {
        assert_eq!(fmt_f64(f64::NAN), "0.000000");
        assert_eq!(fmt_f64(f64::INFINITY), "0.000000");
        assert_eq!(fmt_f64(0.25), "0.250000");
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::obj().render(), "{}");
        assert_eq!(Json::Arr(vec![]).render(), "[]");
    }
}
