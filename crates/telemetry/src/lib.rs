//! # squatphi-telemetry — the deterministic telemetry core
//!
//! Every metrics surface in the workspace — scan workers, the crawl
//! transport stack, the page-analysis cache, the supervised pipeline, the
//! watch daemon, the bench baselines — speaks through this crate:
//!
//! * [`Registry`] — thread-safe counters, gauges, duration [`Histogram`]s
//!   and RAII [`Span`] timers under dotted names, with [`Scope`] prefixing.
//! * [`Snapshot`] — a sorted point-in-time copy; renders as a stable nested
//!   JSON tree, so two identical runs produce byte-identical output.
//! * [`Json`] — the one hand-rolled JSON encoder (the workspace builds
//!   offline, serde-free); ordered objects, deterministic float formatting.
//! * [`Invariant`] / [`InvariantSet`] — conservation identities as data,
//!   checked centrally with a structured [`Violation`] report; the
//!   workspace's canonical sets live in [`invariants`].
//! * [`is_timing_name`] — the single `--timings` rule: names matching it
//!   are zeroed by [`Snapshot::strip_timings`] unless the user asked for
//!   timing output, which is what keeps default `--json` two-run
//!   byte-identical and thread-count invariant.
//!
//! The legacy structs (`ClassifyStats`, `ScanMetrics`, `CrawlStats`,
//! `TransportSnapshot`, `AnalysisSnapshot`, `SupervisionReport`,
//! `WatchCounters`, …) survive as thin typed views that `export` into a
//! registry scope and whose `reconciles()` delegate to [`invariants`].

mod invariant;
pub mod invariants;
mod json;
mod registry;
mod snapshot;

pub use invariant::{Invariant, InvariantSet, Term, Violation};
pub use json::{escape, fmt_f64, Json};
pub use registry::{Counter, Histogram, Registry, Scope, Span};
pub use snapshot::{is_timing_name, Snapshot, Value};
