//! End-to-end determinism guarantees of the exported registries: the
//! properties the CI `telemetry` job checks on the release binaries,
//! asserted here at the library layer so a regression fails fast in
//! `cargo test`.
//!
//! Two guarantees, per ROADMAP: (1) two identical runs export
//! byte-identical snapshots once timings are stripped; (2) worker-thread
//! count never leaks into the exported numbers outside the explicitly
//! execution-shaped `scan.exec.` scope.

use squatphi::{SquatPhi, WatchConfig, WatchOptions};
use squatphi_dnsdb::{scan_with_metrics, synth, SnapshotConfig};
use squatphi_squat::{BrandRegistry, SquatDetector};
use squatphi_telemetry::{invariants, Registry, Snapshot};

fn scan_snapshot(threads: usize) -> Snapshot {
    let registry = BrandRegistry::with_size(24);
    let detector = SquatDetector::new(&registry);
    let cfg = SnapshotConfig {
        benign_records: 4_000,
        squatting_records: 60,
        subdomain_fraction: 0.25,
        seed: 11,
    };
    let (store, _) = synth::generate(&cfg, &registry);
    let (outcome, metrics) = scan_with_metrics(&store, &registry, &detector, threads);
    let reg = Registry::new();
    let scope = reg.scope("scan");
    outcome.export(&scope);
    metrics.export(&scope);
    reg.snapshot()
}

fn watch_snapshot(threads: usize) -> Snapshot {
    let config = WatchConfig::builder()
        .seed(7)
        .events(300)
        .brands(12)
        .threads(threads)
        .build()
        .expect("valid watch config");
    let summary = SquatPhi::try_watch(&config, &WatchOptions::default()).expect("watch runs clean");
    summary.telemetry().snapshot()
}

#[test]
fn scan_registry_two_runs_are_byte_identical() {
    let mut a = scan_snapshot(4);
    let mut b = scan_snapshot(4);
    a.strip_timings();
    b.strip_timings();
    assert_eq!(a.render(), b.render());
    // The timing keys survive stripping (zeroed, not removed).
    assert_eq!(a.get_u64("scan.wall_nanos"), Some(0));
}

#[test]
fn scan_registry_is_thread_invariant_outside_exec_scope() {
    let renders: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&threads| {
            let snap = scan_snapshot(threads);
            // Every identity must hold at every thread count.
            assert!(
                invariants::scan_invariants().all_hold(&snap),
                "scan invariants violated at {threads} threads"
            );
            let mut core = snap.retain(|name| !name.starts_with("scan.exec."));
            core.strip_timings();
            core.render()
        })
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 4 threads");
    assert_eq!(renders[1], renders[2], "4 vs 8 threads");
}

#[test]
fn watch_registry_two_runs_are_byte_identical() {
    let a = watch_snapshot(2);
    let b = watch_snapshot(2);
    assert_eq!(a.render(), b.render());
    // Virtual-clock backoff totals are deterministic, so they are present
    // unstripped in byte-identity-checked output.
    assert!(a.get_u64("watch.transport.backoff_ns").is_some());
}

#[test]
fn watch_registry_is_thread_invariant() {
    // The watch pipeline promises thread count affects nothing observable
    // at all — no exec-style carve-out needed.
    let renders: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&threads| {
            let snap = watch_snapshot(threads);
            assert!(
                invariants::watch_invariants().all_hold(&snap),
                "watch invariants violated at {threads} threads"
            );
            snap.render()
        })
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 4 threads");
    assert_eq!(renders[1], renders[2], "4 vs 8 threads");
}
