//! Structured-error behavior of the invariant layer: a broken identity
//! produces a `Violation` carrying the resolved value of every term, not
//! just a boolean, so an operator can see *which* side leaked and by how
//! much.

use squatphi_telemetry::{Invariant, InvariantSet, Snapshot, Term, Value};

fn snap(entries: &[(&str, u64)]) -> Snapshot {
    let mut s = Snapshot::new();
    for (name, v) in entries {
        s.insert(*name, Value::U64(*v));
    }
    s
}

#[test]
fn violation_reports_every_resolved_term() {
    let inv = Invariant::sum_eq("ingest_conservation", &["accepted", "dropped"], &["events"]);
    let s = snap(&[("accepted", 90), ("dropped", 5), ("events", 100)]);
    let violation = inv.check(&s).expect_err("5 events are unaccounted for");
    assert_eq!(violation.invariant, "ingest_conservation");
    assert_eq!(violation.lhs_total, 95);
    assert_eq!(violation.rhs_total, 100);
    // Per-term resolution: name and value of each side, in order.
    assert_eq!(
        violation.lhs,
        vec![("accepted".to_string(), 90), ("dropped".to_string(), 5)]
    );
    assert_eq!(violation.rhs, vec![("events".to_string(), 100)]);
    // The Display form is a complete report, usable as an error message.
    let msg = violation.to_string();
    assert!(
        msg.contains("invariant ingest_conservation violated: 95 != 100"),
        "{msg}"
    );
    assert!(msg.contains("accepted=90 + dropped=5"), "{msg}");
    assert!(msg.contains("events=100"), "{msg}");
    // And it is a std error, so it threads through `?` chains.
    let as_error: &dyn std::error::Error = &violation;
    assert!(as_error.to_string().contains("ingest_conservation"));
}

#[test]
fn missing_metrics_resolve_to_zero_not_error() {
    let inv = Invariant::sum_eq("absent_terms", &["never_exported"], &[]);
    assert!(inv.check(&Snapshot::new()).is_ok());
}

#[test]
fn const_terms_mix_with_metrics() {
    let inv = Invariant {
        name: "floor".to_string(),
        lhs: vec![Term::Metric("x".to_string()), Term::Const(3)],
        rhs: vec![Term::Const(10)],
    };
    assert!(inv.holds(&snap(&[("x", 7)])));
    let violation = inv.check(&snap(&[("x", 8)])).unwrap_err();
    assert_eq!(violation.lhs_total, 11);
    assert!(violation.to_string().contains("const:3=3"));
}

#[test]
fn check_all_collects_every_violation() {
    let set: InvariantSet = [
        Invariant::sum_eq("holds", &["x"], &["x"]),
        Invariant::sum_eq("broken_a", &["x"], &["seven"]),
        Invariant::sum_eq("broken_b", &["x", "x"], &["three"]),
    ]
    .into_iter()
    .collect();
    let s = snap(&[("x", 1), ("seven", 7), ("three", 3)]);
    let violations = set.check_all(&s).expect_err("two identities fail");
    assert_eq!(violations.len(), 2);
    assert_eq!(violations[0].invariant, "broken_a");
    assert_eq!(violations[1].invariant, "broken_b");
    assert!(!set.all_hold(&s));
    // Fixing one identity is not enough: broken_b still fails.
    let fixed_a = snap(&[("x", 7), ("seven", 7), ("three", 3)]);
    assert_eq!(set.check_all(&fixed_a).unwrap_err().len(), 1);
}
