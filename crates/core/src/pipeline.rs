//! The end-to-end SquatPhi pipeline (paper §3-§6).

use crate::artifact::AnalysisSnapshot;
use crate::config::SimConfig;
use crate::features::FeatureExtractor;
use crate::train::{self, EvalReport};
use squatphi_crawler::{crawl_all, CrawlConfig, CrawlRecord, CrawlStats, InProcessTransport};
use squatphi_dnsdb::{scan_with_metrics, synth, ScanMetrics, ScanOutcome};
use squatphi_feeds::{FeedConfig, GroundTruthFeed};
use squatphi_ml::{Classifier, RandomForest};
use squatphi_squat::{BrandRegistry, SquatDetector, SquatType};
use squatphi_web::{Device, SiteBehavior, WebWorld};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One page flagged by the classifier.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Squatting domain.
    pub domain: String,
    /// Impersonated brand.
    pub brand: usize,
    /// Squatting type.
    pub squat_type: SquatType,
    /// Device profile the page was captured with.
    pub device: Device,
    /// Classifier score.
    pub score: f64,
    /// Survived manual verification (i.e. is truly phishing).
    pub confirmed: bool,
}

/// Wall-clock time per pipeline stage (the four stages of
/// [`SquatPhi::run`]), aggregated from the stages' own instrumentation
/// where available.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Stage 1: snapshot synthesis, detector index build and the scan.
    pub scan: Duration,
    /// Stage 2: web-world build and crawl.
    pub crawl: Duration,
    /// Stage 3: ground truth, feature extraction and training.
    pub train: Duration,
    /// Stage 4: in-the-wild detection for both device profiles.
    pub detect: Duration,
}

impl StageTimings {
    /// End-to-end pipeline wall clock.
    pub fn total(&self) -> Duration {
        self.scan + self.crawl + self.train + self.detect
    }
}

/// Everything the pipeline produced — the inputs to every §6 table and
/// figure.
pub struct PipelineResult {
    /// The monitored brands.
    pub registry: BrandRegistry,
    /// The squatting-scan outcome over the DNS snapshot (Figures 2-4).
    pub scan: ScanOutcome,
    /// Per-worker scan instrumentation (throughput, probes, allocations
    /// avoided, dedupe collisions).
    pub scan_metrics: ScanMetrics,
    /// Wall-clock time per pipeline stage.
    pub timings: StageTimings,
    /// The synthetic web the crawl ran against (ground truth oracle).
    pub world: Arc<WebWorld>,
    /// Per-domain crawl records, snapshot 0 (Tables 2-4).
    pub crawl: Vec<CrawlRecord>,
    /// Crawl aggregate stats.
    pub crawl_stats: CrawlStats,
    /// The ground-truth feed (Figures 5-7, Table 5).
    pub feed: GroundTruthFeed,
    /// Training-set class balance: (positives, negatives) as assembled
    /// by `build_training_set` (§5.3's verified feed pages + sampled
    /// benign squats).
    pub train_split: (usize, usize),
    /// Classifier cross-validation report (Table 7, Figure 10).
    pub eval: EvalReport,
    /// The deployed model.
    pub model: RandomForest,
    /// The shared feature extractor.
    pub extractor: FeatureExtractor,
    /// Web-profile detections after manual verification (Table 8).
    pub web_detections: Vec<Detection>,
    /// Mobile-profile detections.
    pub mobile_detections: Vec<Detection>,
    /// Page-analysis counters (cache hits/misses, per-stage nanos) from
    /// the shared analyzer, snapshotted after the detect stage.
    pub analysis: AnalysisSnapshot,
}

impl PipelineResult {
    /// Confirmed phishing domains (union of web and mobile).
    pub fn confirmed_domains(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .web_detections
            .iter()
            .chain(&self.mobile_detections)
            .filter(|d| d.confirmed)
            .map(|d| d.domain.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Confirmed detections for one device.
    pub fn confirmed(&self, device: Device) -> Vec<&Detection> {
        let set = match device {
            Device::Web => &self.web_detections,
            Device::Mobile => &self.mobile_detections,
        };
        set.iter().filter(|d| d.confirmed).collect()
    }
}

/// The system façade.
pub struct SquatPhi;

impl SquatPhi {
    /// Runs the full pipeline under `config`.
    pub fn run(config: &SimConfig) -> PipelineResult {
        let mut timings = StageTimings::default();
        let registry = BrandRegistry::with_size(config.brands);

        // Stage 1 — squatting detection over the DNS snapshot (§3.1).
        let stage = Instant::now();
        let (store, _stats) = synth::generate(&config.snapshot, &registry);
        let detector = SquatDetector::new(&registry);
        let (scan_outcome, scan_metrics) =
            scan_with_metrics(&store, &registry, &detector, config.threads);
        timings.scan = stage.elapsed();

        // Stage 2 — build the web world over the scan hits and crawl it
        // (§3.2).
        let stage = Instant::now();
        let squats: Vec<(String, usize, SquatType, std::net::Ipv4Addr)> = scan_outcome
            .matches
            .iter()
            .map(|m| (m.domain.registrable(), m.brand, m.squat_type, m.ip))
            .collect();
        let world = Arc::new(WebWorld::build(&squats, &registry, &config.world));
        let transport = InProcessTransport::new(world.clone());
        let jobs: Vec<(String, usize, SquatType)> = squats
            .iter()
            .map(|(d, b, t, _)| (d.clone(), *b, *t))
            .collect();
        let crawl_cfg = CrawlConfig::builder()
            .workers(config.threads.max(1))
            .snapshot(0)
            .build()
            .expect("workers is clamped to >= 1, defaults cover the rest");
        let (crawl_records, crawl_stats) = crawl_all(&jobs, &registry, &transport, &crawl_cfg);
        timings.crawl = stage.elapsed();

        // Stage 3 — ground truth (§4.1) and classifier training (§5).
        let stage = Instant::now();
        let feed = GroundTruthFeed::generate(
            &registry,
            &FeedConfig {
                total_urls: config.feed.total_urls,
                seed: config.feed.seed,
            },
        );
        let extractor = if config.analysis_cache {
            FeatureExtractor::new(&registry)
        } else {
            FeatureExtractor::uncached(&registry)
        };
        let (dataset, train_split) =
            build_training_set(&extractor, &feed, &crawl_records, &world, &registry, config);
        let eval = train::train_and_evaluate(&dataset, config.cv_folds, config.seed);
        let model = train::fit_final_model(&dataset, config.seed);
        timings.train = stage.elapsed();

        // Stage 4 — in-the-wild detection (§6.1) with manual-verification
        // simulation.
        let stage = Instant::now();
        let web_detections = detect_device(
            &crawl_records,
            &extractor,
            &model,
            &world,
            Device::Web,
            config.threads,
        );
        let mobile_detections = detect_device(
            &crawl_records,
            &extractor,
            &model,
            &world,
            Device::Mobile,
            config.threads,
        );
        timings.detect = stage.elapsed();
        let analysis = extractor.analyzer().metrics();

        PipelineResult {
            registry,
            scan: scan_outcome,
            scan_metrics,
            timings,
            world,
            crawl: crawl_records,
            crawl_stats,
            feed,
            train_split,
            eval,
            model,
            extractor,
            web_detections,
            mobile_detections,
            analysis,
        }
    }
}

/// Assembles the training set: the top-8 manually-verified feed pages
/// (positives = still-phishing, negatives = taken-down/benign) plus
/// `sampled_benign` easy-to-confuse live squatting pages (§5.3's 1,565).
fn build_training_set(
    extractor: &FeatureExtractor,
    feed: &GroundTruthFeed,
    crawl: &[CrawlRecord],
    world: &WebWorld,
    registry: &BrandRegistry,
    config: &SimConfig,
) -> (squatphi_ml::Dataset, (usize, usize)) {
    let mut pages: Vec<(&str, bool)> = Vec::new();
    // The feed carries brand ids from the pipeline's own registry, so the
    // `top8` lookup uses it directly (previously this rebuilt an identical
    // registry per training-set assembly).
    let top8 = feed.top8(registry);
    for e in &top8 {
        pages.push((e.html.as_str(), e.still_phishing));
    }
    // Sampled benign squatting pages: live, not phishing per the world's
    // ground truth (the paper manually verified these).
    let mut sampled = 0usize;
    for r in crawl {
        if sampled >= config.sampled_benign {
            break;
        }
        let Some(web) = &r.web else { continue };
        if web.html.is_empty() {
            continue;
        }
        let is_phishing = world
            .site(&r.domain)
            .map(|s| s.behavior.is_phishing())
            .unwrap_or(false);
        if !is_phishing {
            pages.push((web.html.as_str(), false));
            sampled += 1;
        }
    }
    let pos = pages.iter().filter(|(_, y)| *y).count();
    let neg = pages.len() - pos;
    (extractor.build_dataset(&pages, config.threads), (pos, neg))
}

/// Classifies every crawled page of one device profile and simulates the
/// manual verification pass (§6.1: "we manually examined each of the
/// detected phishing pages" — our oracle is the world's ground truth).
fn detect_device(
    crawl: &[CrawlRecord],
    extractor: &FeatureExtractor,
    model: &RandomForest,
    world: &WebWorld,
    device: Device,
    threads: usize,
) -> Vec<Detection> {
    // Collect candidate pages.
    let mut candidates: Vec<(&CrawlRecord, &str)> = Vec::new();
    for r in crawl {
        let cap = match device {
            Device::Web => r.web.as_ref(),
            Device::Mobile => r.mobile.as_ref(),
        };
        if let Some(cap) = cap {
            // Pages that redirected off-domain are the destination's
            // content, not the squat's — the paper still records them; we
            // classify whatever HTML was captured.
            if !cap.html.is_empty() {
                candidates.push((r, cap.html.as_str()));
            }
        }
    }
    let htmls: Vec<&str> = candidates.iter().map(|(_, h)| *h).collect();
    let vectors = extractor.extract_batch(&htmls, threads);
    let mut out = Vec::new();
    for ((record, _), v) in candidates.iter().zip(vectors) {
        let score = model.score(&v);
        if score >= 0.5 {
            // Manual verification: flag survives iff the page is truly a
            // phishing page serving this device at snapshot 0.
            let confirmed = world
                .site(&record.domain)
                .map(|s| match &s.behavior {
                    SiteBehavior::Phishing(p) => {
                        p.lifetime.phishing_live(0)
                            && !matches!(
                                (p.cloaking, device),
                                (squatphi_web::Cloaking::MobileOnly, Device::Web)
                                    | (squatphi_web::Cloaking::WebOnly, Device::Mobile)
                            )
                    }
                    _ => false,
                })
                .unwrap_or(false);
            out.push(Detection {
                domain: record.domain.clone(),
                brand: record.brand,
                squat_type: record.squat_type,
                device,
                score,
                confirmed,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared tiny run: the pipeline is the expensive object, so the
    // integration-style assertions share it.
    fn run() -> &'static PipelineResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<PipelineResult> = OnceLock::new();
        RESULT.get_or_init(|| SquatPhi::run(&SimConfig::tiny()))
    }

    #[test]
    fn scan_finds_squatting_domains() {
        let r = run();
        assert!(
            r.scan.total_matches() > 400,
            "only {} matches",
            r.scan.total_matches()
        );
        assert!(r.scan.count(SquatType::Combo) > r.scan.count(SquatType::Homograph));
    }

    #[test]
    fn stage_timings_and_scan_metrics_populated() {
        let r = run();
        assert!(r.timings.scan > Duration::ZERO);
        assert!(r.timings.total() >= r.timings.scan);
        assert_eq!(r.scan_metrics.records(), r.scan.scanned);
        assert_eq!(r.scan_metrics.invalid(), r.scan.invalid);
        assert!(r.scan_metrics.probes() > 0);
        assert!(r.scan_metrics.allocations_avoided() > 0);
    }

    #[test]
    fn analysis_metrics_reconcile_and_split_carried() {
        let r = run();
        let m = &r.analysis;
        assert!(m.pages > 0, "pipeline analyzed no pages");
        assert!(m.reconciles(), "pages {} != hits+misses", m.pages);
        // Web + mobile detect passes share the cache, and uncloaked
        // template sites serve byte-identical captures — hits must occur.
        assert!(m.cache_hits > 0, "device passes never hit the cache");
        assert!(m.stage_nanos() > 0);
        // The training split matches what training actually saw.
        let (pos, neg) = r.train_split;
        assert_eq!((pos, neg), r.eval.train_shape);
        assert!(pos > 0 && neg > 0, "degenerate split ({pos}, {neg})");
    }

    #[test]
    fn crawl_covers_scan() {
        let r = run();
        assert_eq!(r.crawl.len(), r.scan.total_matches());
        assert!(r.crawl_stats.web_live > 0);
    }

    #[test]
    fn classifier_quality() {
        let r = run();
        let rf = r
            .eval
            .models
            .iter()
            .find(|m| m.name == "RandomForest")
            .unwrap();
        assert!(rf.metrics.auc > 0.85, "RF AUC {}", rf.metrics.auc);
        assert!(rf.metrics.fpr < 0.15, "RF FPR {}", rf.metrics.fpr);
    }

    #[test]
    fn detections_exist_and_confirmed_subset() {
        let r = run();
        assert!(!r.web_detections.is_empty() || !r.mobile_detections.is_empty());
        let confirmed = r.confirmed_domains().len();
        let flagged: std::collections::HashSet<&str> = r
            .web_detections
            .iter()
            .chain(&r.mobile_detections)
            .map(|d| d.domain.as_str())
            .collect();
        assert!(confirmed <= flagged.len());
        assert!(confirmed > 0, "no confirmed phishing at all");
    }

    #[test]
    fn confirmed_detections_match_world_truth() {
        let r = run();
        for d in r.confirmed(Device::Web) {
            let site = r.world.site(&d.domain).expect("site exists");
            assert!(
                site.behavior.is_phishing(),
                "{} confirmed but not phishing",
                d.domain
            );
        }
    }

    #[test]
    fn detection_recall_reasonable() {
        let r = run();
        // How many live, uncloaked phishing pages did the classifier+
        // verification pipeline recover?
        let mut live_phish = 0usize;
        for s in r.world.sites() {
            if let SiteBehavior::Phishing(p) = &s.behavior {
                if p.lifetime.phishing_live(0) {
                    live_phish += 1;
                }
            }
        }
        let confirmed = r.confirmed_domains().len();
        assert!(
            confirmed * 2 >= live_phish,
            "recovered {confirmed} of {live_phish} live phishing domains"
        );
    }
}
