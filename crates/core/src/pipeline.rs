//! The end-to-end SquatPhi pipeline (paper §3-§6).
//!
//! [`SquatPhi::try_run`] is the supervised entry point: every stage runs
//! under a [`Supervisor`] that isolates per-record analyzer panics,
//! degrades pages whose visual path fails, and (when a checkpoint
//! directory is configured) persists completed stage outputs so an
//! interrupted run resumes without recomputation. The panicking
//! [`SquatPhi::run`] wrapper is deprecated in favor of `try_run`.

use crate::artifact::{content_key, AnalysisSnapshot};
use crate::checkpoint::{CheckpointStore, Loaded};
use crate::config::SimConfig;
use crate::features::FeatureExtractor;
use crate::supervise::{
    PageJob, PipelineError, PipelineErrorKind, PipelineStage, RunOptions, SupervisionReport,
    Supervisor,
};
use crate::train::{self, EvalReport};
use squatphi_crawler::{crawl_all, CrawlConfig, CrawlRecord, CrawlStats, InProcessTransport};
use squatphi_dnsdb::{synth, try_scan_with_metrics, ScanMetrics, ScanOutcome};
use squatphi_durability::DurabilityStats;
use squatphi_feeds::{FeedConfig, GroundTruthFeed};
use squatphi_ml::{Classifier, Dataset, RandomForest};
use squatphi_squat::{BrandRegistry, SquatDetector, SquatType};
use squatphi_web::{Device, SiteBehavior, WebWorld};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One page flagged by the classifier.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Squatting domain.
    pub domain: String,
    /// Impersonated brand.
    pub brand: usize,
    /// Squatting type.
    pub squat_type: SquatType,
    /// Device profile the page was captured with.
    pub device: Device,
    /// Classifier score.
    pub score: f64,
    /// Survived manual verification (i.e. is truly phishing).
    pub confirmed: bool,
}

/// Wall-clock time per pipeline stage (the four stages of
/// [`SquatPhi::try_run`]), aggregated from the stages' own
/// instrumentation where available.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Stage 1: snapshot synthesis, detector index build and the scan.
    pub scan: Duration,
    /// Stage 2: web-world build and crawl.
    pub crawl: Duration,
    /// Stage 3: ground truth, feature extraction and training.
    pub train: Duration,
    /// Stage 4: in-the-wild detection for both device profiles.
    pub detect: Duration,
}

impl StageTimings {
    /// End-to-end pipeline wall clock.
    pub fn total(&self) -> Duration {
        self.scan + self.crawl + self.train + self.detect
    }

    /// Publishes the stage wall clocks into a telemetry scope (canonically
    /// `timings`). All names carry the `_nanos` timing suffix, so the
    /// unified `--timings` rule strips them from default output.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        let nanos = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        scope.set_u64("scan_nanos", nanos(self.scan));
        scope.set_u64("crawl_nanos", nanos(self.crawl));
        scope.set_u64("train_nanos", nanos(self.train));
        scope.set_u64("detect_nanos", nanos(self.detect));
        scope.set_u64("total_nanos", nanos(self.total()));
    }
}

/// Everything the pipeline produced — the inputs to every §6 table and
/// figure.
pub struct PipelineResult {
    /// The monitored brands.
    pub registry: BrandRegistry,
    /// The squatting-scan outcome over the DNS snapshot (Figures 2-4).
    pub scan: ScanOutcome,
    /// Per-worker scan instrumentation (throughput, probes, allocations
    /// avoided, dedupe collisions).
    pub scan_metrics: ScanMetrics,
    /// Wall-clock time per pipeline stage.
    pub timings: StageTimings,
    /// The synthetic web the crawl ran against (ground truth oracle).
    pub world: Arc<WebWorld>,
    /// Per-domain crawl records, snapshot 0 (Tables 2-4).
    pub crawl: Vec<CrawlRecord>,
    /// Crawl aggregate stats.
    pub crawl_stats: CrawlStats,
    /// The ground-truth feed (Figures 5-7, Table 5).
    pub feed: GroundTruthFeed,
    /// Training-set class balance: (positives, negatives) as assembled
    /// by `build_training_set` (§5.3's verified feed pages + sampled
    /// benign squats), counted after quarantine exclusions.
    pub train_split: (usize, usize),
    /// Classifier cross-validation report (Table 7, Figure 10).
    pub eval: EvalReport,
    /// The deployed model.
    pub model: RandomForest,
    /// The shared feature extractor.
    pub extractor: FeatureExtractor,
    /// Web-profile detections after manual verification (Table 8).
    pub web_detections: Vec<Detection>,
    /// Mobile-profile detections.
    pub mobile_detections: Vec<Detection>,
    /// Page-analysis counters (cache hits/misses, per-stage nanos) from
    /// the shared analyzer, snapshotted after the detect stage.
    pub analysis: AnalysisSnapshot,
    /// Fault / quarantine / checkpoint accounting for this run.
    pub supervision: SupervisionReport,
    /// Durable-store ledger for the run's checkpoint directory (zero
    /// when checkpointing is off). Like the timings, this is bookkeeping
    /// about *how* the run persisted, not *what* it computed — excluded
    /// from [`PipelineResult::fingerprint`].
    pub durability: DurabilityStats,
    /// Whether visual-similarity consumers (fig8/fig9, Tables 6/11, the
    /// snapshot re-classifier) route through `imghash::index::HashIndex`
    /// or the preserved linear oracle (`SimConfig::phash_index`). Results
    /// are set-identical either way.
    pub phash_index: bool,
}

impl PipelineResult {
    /// Confirmed phishing domains (union of web and mobile).
    pub fn confirmed_domains(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .web_detections
            .iter()
            .chain(&self.mobile_detections)
            .filter(|d| d.confirmed)
            .map(|d| d.domain.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Confirmed detections for one device.
    pub fn confirmed(&self, device: Device) -> Vec<&Detection> {
        let set = match device {
            Device::Web => &self.web_detections,
            Device::Mobile => &self.mobile_detections,
        };
        set.iter().filter(|d| d.confirmed).collect()
    }

    /// Order-stable digest over every deterministic output field —
    /// scan matches, crawl captures, training split, evaluation metrics
    /// (as exact f64 bit patterns), the deployed model, detections, and
    /// the supervision counters. Wall-clock timings, analyzer nano
    /// counters and checkpoint bookkeeping are excluded, so two runs of
    /// the same config (resumed or not, any thread count) must agree.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, bytes: &[u8]) -> u64 {
            content_key(h, bytes)
        }
        fn mix_u64(h: u64, v: u64) -> u64 {
            mix(h, &v.to_le_bytes())
        }
        fn mix_str(h: u64, s: &str) -> u64 {
            mix(mix_u64(h, s.len() as u64), s.as_bytes())
        }
        let mut h = 0x5171_2018u64;
        h = mix_u64(h, self.scan.scanned as u64);
        h = mix_u64(h, self.scan.invalid as u64);
        for &c in &self.scan.by_type {
            h = mix_u64(h, c as u64);
        }
        for m in &self.scan.matches {
            h = mix_str(h, &m.domain.registrable());
            h = mix_u64(h, m.brand as u64);
            h = mix_str(h, m.squat_type.name());
            h = mix(h, &m.ip.octets());
        }
        for r in &self.crawl {
            h = mix_str(h, &r.domain);
            h = mix_u64(h, r.brand as u64);
            h = mix_str(h, r.squat_type.name());
            h = mix_u64(h, r.web_redirect as u64);
            h = mix_u64(h, r.mobile_redirect as u64);
            for cap in [&r.web, &r.mobile] {
                match cap {
                    None => h = mix_u64(h, 0),
                    Some(c) => {
                        h = mix_u64(h, 1);
                        h = mix_str(h, &c.final_host);
                        h = mix_str(h, &c.html);
                        for red in &c.redirects {
                            h = mix_str(h, red);
                        }
                    }
                }
            }
        }
        h = mix_u64(h, self.train_split.0 as u64);
        h = mix_u64(h, self.train_split.1 as u64);
        h = mix_u64(h, self.eval.train_shape.0 as u64);
        h = mix_u64(h, self.eval.train_shape.1 as u64);
        for m in &self.eval.models {
            h = mix_str(h, m.name);
            h = mix_u64(h, m.metrics.fpr.to_bits());
            h = mix_u64(h, m.metrics.fnr.to_bits());
            h = mix_u64(h, m.metrics.auc.to_bits());
            h = mix_u64(h, m.metrics.accuracy.to_bits());
            for (x, y) in &m.roc.points {
                h = mix_u64(h, x.to_bits());
                h = mix_u64(h, y.to_bits());
            }
        }
        h = mix_str(h, &self.model.encode());
        for set in [&self.web_detections, &self.mobile_detections] {
            h = mix_u64(h, set.len() as u64);
            for d in set {
                h = mix_str(h, &d.domain);
                h = mix_u64(h, d.brand as u64);
                h = mix_str(h, d.squat_type.name());
                h = mix_u64(h, d.score.to_bits());
                h = mix_u64(h, u64::from(d.confirmed));
            }
        }
        let s = &self.supervision;
        for v in [
            s.injected.analyzer_panics,
            s.injected.poisoned_pages,
            s.injected.truncated_records,
            s.recovered,
            s.recovered_natural,
            s.degraded,
            s.degraded_natural,
            s.truncated,
            s.retries,
        ] {
            h = mix_u64(h, v);
        }
        for q in &s.quarantined {
            h = mix_str(h, q.stage.name());
            h = mix_str(h, &q.key);
            h = mix_str(h, &q.cause);
            h = mix_u64(h, u64::from(q.attempts));
            h = mix_u64(h, u64::from(q.injected));
        }
        h
    }

    /// Exports every metrics surface of the run into one fresh telemetry
    /// registry: `scan.`, `crawl.` (with `crawl.transport.`), `analysis.`,
    /// `supervision.` and `timings.`. This is the registry the `repro`
    /// summary, the conformance harness and the bench writers read from.
    pub fn telemetry(&self) -> squatphi_telemetry::Registry {
        let reg = squatphi_telemetry::Registry::new();
        let scan = reg.scope("scan");
        self.scan.export(&scan);
        self.scan_metrics.export(&scan);
        self.crawl_stats.export(&reg.scope("crawl"));
        self.analysis.export(&reg.scope("analysis"));
        self.supervision.export(&reg.scope("supervision"));
        self.timings.export(&reg.scope("timings"));
        self.durability.export(&reg.scope("durability"));
        reg
    }

    /// Checks every pipeline conservation identity against the exported
    /// telemetry in one central pass; `Err` lists all violations.
    pub fn check_invariants(&self) -> Result<(), Vec<squatphi_telemetry::Violation>> {
        squatphi_telemetry::invariants::pipeline_invariants()
            .check_all(&self.telemetry().snapshot())
    }
}

/// The system façade.
pub struct SquatPhi;

fn fail(
    stage: PipelineStage,
    completed: &[PipelineStage],
    kind: PipelineErrorKind,
) -> PipelineError {
    PipelineError {
        stage,
        kind,
        completed: completed.to_vec(),
    }
}

impl SquatPhi {
    /// Runs the full pipeline under `config` with supervised stages.
    ///
    /// Per-record analyzer panics in the train/detect stages are caught,
    /// retried within `opts.retry_budget`, and quarantined
    /// deterministically; pages whose visual analysis fails degrade to a
    /// lexical+form feature vector instead of being dropped. With
    /// `opts.checkpoint_dir` set, completed scan/crawl/train outputs are
    /// persisted and — with `opts.resume` — replayed, producing a
    /// [`PipelineResult`] with an identical [`PipelineResult::fingerprint`].
    /// `opts.stop_after` interrupts after the named stage with
    /// [`PipelineErrorKind::Interrupted`] (a deterministic kill stand-in).
    pub fn try_run(config: &SimConfig, opts: &RunOptions) -> Result<PipelineResult, PipelineError> {
        let mut completed: Vec<PipelineStage> = Vec::new();
        if config.brands == 0 {
            return Err(fail(
                PipelineStage::Scan,
                &completed,
                PipelineErrorKind::Config("brands must be >= 1".into()),
            ));
        }
        if config.cv_folds < 2 {
            return Err(fail(
                PipelineStage::Train,
                &completed,
                PipelineErrorKind::Config("cv_folds must be >= 2".into()),
            ));
        }
        let supervisor = Supervisor::new(opts);
        let store = match &opts.checkpoint_dir {
            Some(dir) => Some(
                CheckpointStore::open(dir, config, &opts.faults, &opts.disk_faults).map_err(
                    |e| {
                        fail(
                            PipelineStage::Scan,
                            &completed,
                            PipelineErrorKind::Checkpoint(e),
                        )
                    },
                )?,
            ),
            None => None,
        };
        let ckpt_err = |stage: PipelineStage,
                        completed: &[PipelineStage],
                        e: crate::checkpoint::CheckpointError| {
            fail(stage, completed, PipelineErrorKind::Checkpoint(e))
        };
        let mut timings = StageTimings::default();
        let registry = BrandRegistry::with_size(config.brands);

        // Stage 1 — squatting detection over the DNS snapshot (§3.1).
        let stage = Instant::now();
        let (scan_outcome, scan_metrics) = {
            let mut resumed = None;
            if opts.resume {
                if let Some(store) = &store {
                    match store
                        .load_scan()
                        .map_err(|e| ckpt_err(PipelineStage::Scan, &completed, e))?
                    {
                        Loaded::Value(v) => {
                            supervisor.note_resumed(PipelineStage::Scan);
                            resumed = Some(v);
                        }
                        Loaded::Recovered(v, detail) => {
                            supervisor.note_resumed(PipelineStage::Scan);
                            supervisor.note_recovered_checkpoint(PipelineStage::Scan, detail);
                            resumed = Some(v);
                        }
                        Loaded::Stale => supervisor.note_invalidated(PipelineStage::Scan),
                        Loaded::Missing => {}
                    }
                }
            }
            match resumed {
                Some(v) => v,
                None => {
                    let (snapshot, _stats) = synth::generate(&config.snapshot, &registry);
                    let detector = SquatDetector::new(&registry);
                    // A worker panic surfaces as a structured StagePanic
                    // naming the failing shard instead of taking the
                    // process down (PR 5 supervision contract).
                    let out =
                        try_scan_with_metrics(&snapshot, &registry, &detector, config.threads)
                            .map_err(|e| {
                                fail(
                                    PipelineStage::Scan,
                                    &completed,
                                    PipelineErrorKind::StagePanic {
                                        key: format!("scan shard {}", e.shard),
                                        cause: e.cause,
                                    },
                                )
                            })?;
                    if let Some(store) = &store {
                        store
                            .save_scan(&out.0, &out.1)
                            .map_err(|e| ckpt_err(PipelineStage::Scan, &completed, e))?;
                        supervisor.note_checkpointed(PipelineStage::Scan);
                    }
                    out
                }
            }
        };
        timings.scan = stage.elapsed();
        completed.push(PipelineStage::Scan);
        if opts.stop_after == Some(PipelineStage::Scan) {
            return Err(fail(
                PipelineStage::Scan,
                &completed,
                PipelineErrorKind::Interrupted,
            ));
        }

        // Stage 2 — build the web world over the scan hits and crawl it
        // (§3.2). The world itself rebuilds deterministically from the
        // scan output, so only the crawl records are checkpointed.
        let stage = Instant::now();
        let squats: Vec<(String, usize, SquatType, std::net::Ipv4Addr)> = scan_outcome
            .matches
            .iter()
            .map(|m| (m.domain.registrable(), m.brand, m.squat_type, m.ip))
            .collect();
        let world = Arc::new(WebWorld::build(&squats, &registry, &config.world));
        let (crawl_records, crawl_stats) = {
            let mut resumed = None;
            if opts.resume {
                if let Some(store) = &store {
                    match store
                        .load_crawl()
                        .map_err(|e| ckpt_err(PipelineStage::Crawl, &completed, e))?
                    {
                        Loaded::Value((records, stats, truncated)) => {
                            supervisor.note_resumed(PipelineStage::Crawl);
                            // Replay the fault accounting of the run that
                            // wrote the checkpoint (the records are
                            // already truncated on disk).
                            supervisor.note_truncated_bulk(truncated);
                            resumed = Some((records, stats));
                        }
                        Loaded::Recovered((records, stats, truncated), detail) => {
                            supervisor.note_resumed(PipelineStage::Crawl);
                            supervisor.note_recovered_checkpoint(PipelineStage::Crawl, detail);
                            supervisor.note_truncated_bulk(truncated);
                            resumed = Some((records, stats));
                        }
                        Loaded::Stale => supervisor.note_invalidated(PipelineStage::Crawl),
                        Loaded::Missing => {}
                    }
                }
            }
            match resumed {
                Some(v) => v,
                None => {
                    let transport = InProcessTransport::new(world.clone());
                    let jobs: Vec<(String, usize, SquatType)> = squats
                        .iter()
                        .map(|(d, b, t, _)| (d.clone(), *b, *t))
                        .collect();
                    let crawl_cfg = CrawlConfig::builder()
                        .workers(config.threads.max(1))
                        .snapshot(0)
                        .build()
                        .map_err(|e| {
                            fail(
                                PipelineStage::Crawl,
                                &completed,
                                PipelineErrorKind::Config(e.to_string()),
                            )
                        })?;
                    let (mut records, mut stats) =
                        crawl_all(&jobs, &registry, &transport, &crawl_cfg);
                    let mut truncated = 0u64;
                    if !opts.faults.is_none() {
                        for r in &mut records {
                            if !supervisor.truncates(&r.domain) {
                                continue;
                            }
                            let mut cut_any = false;
                            for cap in [&mut r.web, &mut r.mobile] {
                                let Some(c) = cap else { continue };
                                if c.html.is_empty() {
                                    continue;
                                }
                                let mut cut = c.html.len() / 3;
                                while cut > 0 && !c.html.is_char_boundary(cut) {
                                    cut -= 1;
                                }
                                c.html.truncate(cut);
                                cut_any = true;
                            }
                            if cut_any {
                                supervisor.note_truncated();
                                truncated += 1;
                            }
                        }
                        if truncated > 0 {
                            // Re-aggregate over the mutated records so a
                            // resumed run (which recomputes stats from
                            // the checkpointed records) sees the same
                            // numbers as this one.
                            let transport_counters = stats.transport.clone();
                            stats = CrawlStats::from_records(&records);
                            stats.transport = transport_counters;
                        }
                    }
                    if let Some(store) = &store {
                        store
                            .save_crawl(&records, &stats, truncated)
                            .map_err(|e| ckpt_err(PipelineStage::Crawl, &completed, e))?;
                        supervisor.note_checkpointed(PipelineStage::Crawl);
                    }
                    (records, stats)
                }
            }
        };
        timings.crawl = stage.elapsed();
        completed.push(PipelineStage::Crawl);
        if opts.stop_after == Some(PipelineStage::Crawl) {
            return Err(fail(
                PipelineStage::Crawl,
                &completed,
                PipelineErrorKind::Interrupted,
            ));
        }

        // Stage 3 — ground truth (§4.1) and classifier training (§5).
        let stage = Instant::now();
        let feed = GroundTruthFeed::generate(
            &registry,
            &FeedConfig {
                total_urls: config.feed.total_urls,
                seed: config.feed.seed,
            },
        );
        let extractor = if config.analysis_cache {
            FeatureExtractor::new(&registry)
        } else {
            FeatureExtractor::uncached(&registry)
        };
        let (train_split, eval, model) = {
            let mut resumed = None;
            if opts.resume {
                if let Some(store) = &store {
                    match store
                        .load_train()
                        .map_err(|e| ckpt_err(PipelineStage::Train, &completed, e))?
                    {
                        Loaded::Value(v) => {
                            supervisor.note_resumed(PipelineStage::Train);
                            resumed = Some(v);
                        }
                        Loaded::Recovered(v, detail) => {
                            supervisor.note_resumed(PipelineStage::Train);
                            supervisor.note_recovered_checkpoint(PipelineStage::Train, detail);
                            resumed = Some(v);
                        }
                        Loaded::Stale => supervisor.note_invalidated(PipelineStage::Train),
                        Loaded::Missing => {}
                    }
                }
            }
            match resumed {
                Some(v) => v,
                None => {
                    let (dataset, split) = build_training_set(
                        &supervisor,
                        &extractor,
                        &feed,
                        &crawl_records,
                        &world,
                        &registry,
                        config,
                    )
                    .map_err(|kind| fail(PipelineStage::Train, &completed, kind))?;
                    if split.0 == 0 || split.1 == 0 {
                        return Err(fail(
                            PipelineStage::Train,
                            &completed,
                            PipelineErrorKind::StageInvariant(format!(
                                "degenerate training split after quarantine: \
                                 {} positives, {} negatives",
                                split.0, split.1
                            )),
                        ));
                    }
                    let eval = train::train_and_evaluate(&dataset, config.cv_folds, config.seed);
                    let model = train::fit_final_model(&dataset, config.seed);
                    if let Some(store) = &store {
                        store
                            .save_train(split, &eval, &model)
                            .map_err(|e| ckpt_err(PipelineStage::Train, &completed, e))?;
                        supervisor.note_checkpointed(PipelineStage::Train);
                    }
                    (split, eval, model)
                }
            }
        };
        timings.train = stage.elapsed();
        completed.push(PipelineStage::Train);
        if opts.stop_after == Some(PipelineStage::Train) {
            return Err(fail(
                PipelineStage::Train,
                &completed,
                PipelineErrorKind::Interrupted,
            ));
        }

        // Stage 4 — in-the-wild detection (§6.1) with manual-verification
        // simulation. Detections are cheap to recompute and depend on the
        // checkpointed model, so this stage is never checkpointed.
        let stage = Instant::now();
        let web_detections = detect_device(
            &supervisor,
            &crawl_records,
            &extractor,
            &model,
            &world,
            Device::Web,
            config.threads,
        )
        .map_err(|kind| fail(PipelineStage::Detect, &completed, kind))?;
        let mobile_detections = detect_device(
            &supervisor,
            &crawl_records,
            &extractor,
            &model,
            &world,
            Device::Mobile,
            config.threads,
        )
        .map_err(|kind| fail(PipelineStage::Detect, &completed, kind))?;
        timings.detect = stage.elapsed();
        completed.push(PipelineStage::Detect);
        if opts.stop_after == Some(PipelineStage::Detect) {
            return Err(fail(
                PipelineStage::Detect,
                &completed,
                PipelineErrorKind::Interrupted,
            ));
        }
        let analysis = extractor.analyzer().metrics();
        let supervision = supervisor.report();
        let durability = store
            .as_ref()
            .map(CheckpointStore::stats)
            .unwrap_or_default();

        Ok(PipelineResult {
            registry,
            scan: scan_outcome,
            scan_metrics,
            timings,
            world,
            crawl: crawl_records,
            crawl_stats,
            feed,
            train_split,
            eval,
            model,
            extractor,
            web_detections,
            mobile_detections,
            analysis,
            supervision,
            durability,
            phash_index: config.phash_index,
        })
    }
}

/// Assembles the training set: the top-8 manually-verified feed pages
/// (positives = still-phishing, negatives = taken-down/benign) plus
/// `sampled_benign` easy-to-confuse live squatting pages (§5.3's 1,565).
///
/// Extraction runs under the supervisor: quarantined pages yield `None`
/// vectors and are excluded from both the dataset and the returned
/// (positives, negatives) split, so `train_split` always matches what
/// training actually saw.
fn build_training_set(
    supervisor: &Supervisor,
    extractor: &FeatureExtractor,
    feed: &GroundTruthFeed,
    crawl: &[CrawlRecord],
    world: &WebWorld,
    registry: &BrandRegistry,
    config: &SimConfig,
) -> Result<(Dataset, (usize, usize)), PipelineErrorKind> {
    let mut jobs: Vec<PageJob<'_>> = Vec::new();
    let mut labels: Vec<bool> = Vec::new();
    // The feed carries brand ids from the pipeline's own registry, so the
    // `top8` lookup uses it directly (previously this rebuilt an identical
    // registry per training-set assembly).
    let top8 = feed.top8(registry);
    for (i, e) in top8.iter().enumerate() {
        jobs.push(PageJob {
            key: format!("train:feed:{i}"),
            html: e.html.as_str(),
        });
        labels.push(e.still_phishing);
    }
    // Sampled benign squatting pages: live, not phishing per the world's
    // ground truth (the paper manually verified these).
    let mut sampled = 0usize;
    for r in crawl {
        if sampled >= config.sampled_benign {
            break;
        }
        let Some(web) = &r.web else { continue };
        if web.html.is_empty() {
            continue;
        }
        let is_phishing = world
            .site(&r.domain)
            .map(|s| s.behavior.is_phishing())
            .unwrap_or(false);
        if !is_phishing {
            jobs.push(PageJob {
                key: format!("train:benign:{}", r.domain),
                html: web.html.as_str(),
            });
            labels.push(false);
            sampled += 1;
        }
    }
    let vectors =
        supervisor.extract_vectors(PipelineStage::Train, extractor, &jobs, config.threads)?;
    let mut dataset = Dataset::new(extractor.dim());
    let (mut pos, mut neg) = (0usize, 0usize);
    for (v, &label) in vectors.into_iter().zip(&labels) {
        let Some(v) = v else { continue };
        if label {
            pos += 1;
        } else {
            neg += 1;
        }
        dataset.push(v, label);
    }
    Ok((dataset, (pos, neg)))
}

/// Classifies every crawled page of one device profile and simulates the
/// manual verification pass (§6.1: "we manually examined each of the
/// detected phishing pages" — our oracle is the world's ground truth).
///
/// Quarantined pages are skipped; a candidates/vectors length mismatch is
/// a hard [`PipelineErrorKind::StageInvariant`] rather than the silent
/// truncation a bare `zip` would allow.
fn detect_device(
    supervisor: &Supervisor,
    crawl: &[CrawlRecord],
    extractor: &FeatureExtractor,
    model: &RandomForest,
    world: &WebWorld,
    device: Device,
    threads: usize,
) -> Result<Vec<Detection>, PipelineErrorKind> {
    // Collect candidate pages.
    let mut candidates: Vec<(&CrawlRecord, &str)> = Vec::new();
    for r in crawl {
        let cap = match device {
            Device::Web => r.web.as_ref(),
            Device::Mobile => r.mobile.as_ref(),
        };
        if let Some(cap) = cap {
            // Pages that redirected off-domain are the destination's
            // content, not the squat's — the paper still records them; we
            // classify whatever HTML was captured.
            if !cap.html.is_empty() {
                candidates.push((r, cap.html.as_str()));
            }
        }
    }
    let tag = match device {
        Device::Web => "web",
        Device::Mobile => "mobile",
    };
    let jobs: Vec<PageJob<'_>> = candidates
        .iter()
        .map(|(r, h)| PageJob {
            key: format!("detect:{tag}:{}", r.domain),
            html: h,
        })
        .collect();
    let vectors = supervisor.extract_vectors(PipelineStage::Detect, extractor, &jobs, threads)?;
    if vectors.len() != candidates.len() {
        return Err(PipelineErrorKind::StageInvariant(format!(
            "detect/{tag}: {} candidate pages but {} feature vectors",
            candidates.len(),
            vectors.len(),
        )));
    }
    let mut out = Vec::new();
    for ((record, _), v) in candidates.iter().zip(vectors) {
        let Some(v) = v else { continue };
        let score = model.score(&v);
        if score >= 0.5 {
            // Manual verification: flag survives iff the page is truly a
            // phishing page serving this device at snapshot 0.
            let confirmed = world
                .site(&record.domain)
                .map(|s| match &s.behavior {
                    SiteBehavior::Phishing(p) => {
                        p.lifetime.phishing_live(0)
                            && !matches!(
                                (p.cloaking, device),
                                (squatphi_web::Cloaking::MobileOnly, Device::Web)
                                    | (squatphi_web::Cloaking::WebOnly, Device::Mobile)
                            )
                    }
                    _ => false,
                })
                .unwrap_or(false);
            out.push(Detection {
                domain: record.domain.clone(),
                brand: record.brand,
                squat_type: record.squat_type,
                device,
                score,
                confirmed,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared tiny run: the pipeline is the expensive object, so the
    // integration-style assertions share it.
    fn run() -> &'static PipelineResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<PipelineResult> = OnceLock::new();
        RESULT.get_or_init(|| {
            SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
                .expect("tiny pipeline runs clean")
        })
    }

    #[test]
    fn pipeline_invariants_hold_centrally() {
        let r = run();
        if let Err(violations) = r.check_invariants() {
            for v in &violations {
                eprintln!("{v}");
            }
            panic!("{} invariant violations", violations.len());
        }
        // The exported registry carries every stage scope.
        let snap = r.telemetry().snapshot();
        for name in [
            "scan.matches",
            "crawl.web_live",
            "crawl.transport.attempts",
            "analysis.pages",
            "supervision.retries",
            "timings.total_nanos",
        ] {
            assert!(snap.get_u64(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn scan_finds_squatting_domains() {
        let r = run();
        assert!(
            r.scan.total_matches() > 400,
            "only {} matches",
            r.scan.total_matches()
        );
        assert!(r.scan.count(SquatType::Combo) > r.scan.count(SquatType::Homograph));
    }

    #[test]
    fn stage_timings_and_scan_metrics_populated() {
        let r = run();
        assert!(r.timings.scan > Duration::ZERO);
        assert!(r.timings.total() >= r.timings.scan);
        assert_eq!(r.scan_metrics.records(), r.scan.scanned);
        assert_eq!(r.scan_metrics.invalid(), r.scan.invalid);
        assert!(r.scan_metrics.probes() > 0);
        assert!(r.scan_metrics.allocations_avoided() > 0);
    }

    #[test]
    fn analysis_metrics_reconcile_and_split_carried() {
        let r = run();
        let m = &r.analysis;
        assert!(m.pages > 0, "pipeline analyzed no pages");
        assert!(m.reconciles(), "pages {} != hits+misses", m.pages);
        // Web + mobile detect passes share the cache, and uncloaked
        // template sites serve byte-identical captures — hits must occur.
        assert!(m.cache_hits > 0, "device passes never hit the cache");
        assert!(m.stage_nanos() > 0);
        // The training split matches what training actually saw.
        let (pos, neg) = r.train_split;
        assert_eq!((pos, neg), r.eval.train_shape);
        assert!(pos > 0 && neg > 0, "degenerate split ({pos}, {neg})");
    }

    #[test]
    fn unfaulted_run_reports_clean_supervision() {
        let r = run();
        let s = &r.supervision;
        assert!(s.injected.total() == 0, "default run injected faults");
        assert!(s.quarantined.is_empty(), "default run quarantined pages");
        assert_eq!(s.degraded, s.degraded_natural);
        assert!(s.reconciles(), "clean run must reconcile");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let r = run();
        assert_eq!(r.fingerprint(), r.fingerprint());
        assert_ne!(r.fingerprint(), 0);
    }

    #[test]
    fn crawl_covers_scan() {
        let r = run();
        assert_eq!(r.crawl.len(), r.scan.total_matches());
        assert!(r.crawl_stats.web_live > 0);
    }

    #[test]
    fn classifier_quality() {
        let r = run();
        let rf = r
            .eval
            .models
            .iter()
            .find(|m| m.name == "RandomForest")
            .unwrap();
        assert!(rf.metrics.auc > 0.85, "RF AUC {}", rf.metrics.auc);
        assert!(rf.metrics.fpr < 0.15, "RF FPR {}", rf.metrics.fpr);
    }

    #[test]
    fn detections_exist_and_confirmed_subset() {
        let r = run();
        assert!(!r.web_detections.is_empty() || !r.mobile_detections.is_empty());
        let confirmed = r.confirmed_domains().len();
        let flagged: std::collections::HashSet<&str> = r
            .web_detections
            .iter()
            .chain(&r.mobile_detections)
            .map(|d| d.domain.as_str())
            .collect();
        assert!(confirmed <= flagged.len());
        assert!(confirmed > 0, "no confirmed phishing at all");
    }

    #[test]
    fn confirmed_detections_match_world_truth() {
        let r = run();
        for d in r.confirmed(Device::Web) {
            let site = r.world.site(&d.domain).expect("site exists");
            assert!(
                site.behavior.is_phishing(),
                "{} confirmed but not phishing",
                d.domain
            );
        }
    }

    #[test]
    fn detection_recall_reasonable() {
        let r = run();
        // How many live, uncloaked phishing pages did the classifier+
        // verification pipeline recover?
        let mut live_phish = 0usize;
        for s in r.world.sites() {
            if let SiteBehavior::Phishing(p) = &s.behavior {
                if p.lifetime.phishing_live(0) {
                    live_phish += 1;
                }
            }
        }
        let confirmed = r.confirmed_domains().len();
        assert!(
            confirmed * 2 >= live_phish,
            "recovered {confirmed} of {live_phish} live phishing domains"
        );
    }

    #[test]
    fn stop_after_interrupts_with_completed_stages() {
        let opts = RunOptions {
            stop_after: Some(PipelineStage::Scan),
            ..RunOptions::default()
        };
        let Err(err) = SquatPhi::try_run(&SimConfig::tiny(), &opts) else {
            panic!("stop_after scan did not interrupt");
        };
        assert!(err.is_interrupted());
        assert_eq!(err.stage, PipelineStage::Scan);
        assert_eq!(err.completed, vec![PipelineStage::Scan]);
    }

    #[test]
    fn invalid_config_is_a_structured_error() {
        let mut cfg = SimConfig::tiny();
        cfg.cv_folds = 1;
        let Err(err) = SquatPhi::try_run(&cfg, &RunOptions::default()) else {
            panic!("cv_folds = 1 was accepted");
        };
        assert!(matches!(err.kind, PipelineErrorKind::Config(_)));
        assert!(err.completed.is_empty());
    }
}
