//! Snapshot re-crawls (paper §3.2 / §6.3).
//!
//! The paper crawls one full snapshot (April 01-08), then re-crawls only
//! the detected phishing domains in three weekly follow-ups and
//! *re-applies the classifier* to decide whether each page is still
//! phishing (Figure 17, Table 13). This module does exactly that against
//! the world oracle-free: liveness comes from the classifier, not the
//! ground truth.
//!
//! Re-classification goes through the pipeline's shared
//! [`crate::artifact::PageAnalyzer`], so snapshot pages whose HTML is
//! unchanged since the original crawl cost a cache probe, not a
//! re-render.

use crate::features::FeatureExtractor;
use crate::pipeline::PipelineResult;
use crate::supervise::{PipelineError, PipelineErrorKind, PipelineStage};
use squatphi_crawler::{crawl_all, CrawlConfig, InProcessTransport};
use squatphi_ml::Classifier;
use squatphi_web::Device;

/// Classifier-confirmed liveness of the detected phishing set per
/// snapshot: `[(web_live, mobile_live); 4]`.
pub type SnapshotSeries = [(usize, usize); 4];

/// Re-crawls every confirmed phishing domain in all four snapshots and
/// re-classifies the captured pages, exactly like the paper's follow-up
/// crawls. Returns the per-snapshot live counts.
///
/// Panicking wrapper over [`try_recrawl_and_classify`].
pub fn recrawl_and_classify(result: &PipelineResult, threads: usize) -> SnapshotSeries {
    match try_recrawl_and_classify(result, threads) {
        Ok(series) => series,
        Err(e) => panic!("snapshot re-crawl failed: {e}"),
    }
}

/// Fallible snapshot re-crawl: crawl-configuration problems surface as a
/// structured [`PipelineError`] attributed to the crawl stage instead of
/// panicking mid-series.
pub fn try_recrawl_and_classify(
    result: &PipelineResult,
    threads: usize,
) -> Result<SnapshotSeries, PipelineError> {
    let extractor = &result.extractor;
    let transport = InProcessTransport::new(result.world.clone());

    // The follow-up jobs: one per confirmed phishing domain, keeping the
    // brand/type metadata the crawler expects.
    let confirmed: std::collections::HashSet<&str> =
        result.confirmed_domains().into_iter().collect();
    let jobs: Vec<(String, usize, squatphi_squat::SquatType)> = result
        .crawl
        .iter()
        .filter(|r| confirmed.contains(r.domain.as_str()))
        .map(|r| (r.domain.clone(), r.brand, r.squat_type))
        .collect();

    let mut series = [(0usize, 0usize); 4];
    for (snapshot, slot) in series.iter_mut().enumerate() {
        let cfg = CrawlConfig::builder()
            .workers(threads.max(1))
            .snapshot(snapshot as u8)
            .build()
            .map_err(|e| PipelineError {
                stage: PipelineStage::Crawl,
                kind: PipelineErrorKind::Config(e.to_string()),
                completed: PipelineStage::ALL.to_vec(),
            })?;
        let (records, _) = crawl_all(&jobs, &result.registry, &transport, &cfg);
        *slot = classify_live(&records, extractor, result, threads);
    }
    Ok(series)
}

fn classify_live(
    records: &[squatphi_crawler::CrawlRecord],
    extractor: &FeatureExtractor,
    result: &PipelineResult,
    threads: usize,
) -> (usize, usize) {
    let mut live = (0usize, 0usize);
    for device in [Device::Web, Device::Mobile] {
        let htmls: Vec<&str> = records
            .iter()
            .filter_map(|r| match device {
                Device::Web => r.web.as_ref(),
                Device::Mobile => r.mobile.as_ref(),
            })
            .filter(|c| !c.html.is_empty())
            .map(|c| c.html.as_str())
            .collect();
        let vectors = extractor.extract_batch(&htmls, threads);
        let count = vectors
            .iter()
            .filter(|v| result.model.score(v) >= 0.5)
            .count();
        match device {
            Device::Web => live.0 = count,
            Device::Mobile => live.1 = count,
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunOptions, SimConfig, SquatPhi};

    #[test]
    fn recrawl_series_decays_but_survives() {
        let result = SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
            .expect("tiny pipeline runs clean");
        let hits_before = result.extractor.analyzer().metrics().cache_hits;
        let series = recrawl_and_classify(&result, 4);
        // Unchanged snapshot pages are served from the shared cache.
        assert!(
            result.extractor.analyzer().metrics().cache_hits > hits_before,
            "snapshot re-crawl never hit the analysis cache"
        );
        let first = series[0].0 + series[0].1;
        let last = series[3].0 + series[3].1;
        assert!(first > 0, "no live phishing at the first snapshot");
        assert!(last <= first, "liveness grew over time: {series:?}");
        // Paper: ~80% survive the month; allow a broad band at tiny scale.
        assert!(
            last * 10 >= first * 5,
            "survival collapsed: {first} -> {last} ({series:?})"
        );
    }
}
