//! Snapshot re-crawls (paper §3.2 / §6.3).
//!
//! The paper crawls one full snapshot (April 01-08), then re-crawls only
//! the detected phishing domains in three weekly follow-ups and
//! *re-applies the classifier* to decide whether each page is still
//! phishing (Figure 17, Table 13). This module does exactly that against
//! the world oracle-free: liveness comes from the classifier, not the
//! ground truth.
//!
//! Re-classification goes through the pipeline's shared
//! [`crate::artifact::PageAnalyzer`], so snapshot pages whose HTML is
//! unchanged since the original crawl cost a cache probe, not a
//! re-render.

use crate::artifact::BrandHashIndex;
use crate::features::FeatureExtractor;
use crate::pipeline::PipelineResult;
use crate::supervise::{PipelineError, PipelineErrorKind, PipelineStage};
use squatphi_crawler::{crawl_all, CrawlConfig, InProcessTransport};
use squatphi_ml::Classifier;
use squatphi_web::Device;

/// Classifier-confirmed liveness of the detected phishing set per
/// snapshot: `[(web_live, mobile_live); 4]`.
pub type SnapshotSeries = [(usize, usize); 4];

/// A classifier-live page counts as a *visual* brand match when some
/// monitored brand page sits within this pHash radius — the same band the
/// paper's Figure 8 example puts a lightly-obfuscated clone in.
pub const VISUAL_MATCH_RADIUS: u32 = 8;

/// Everything the follow-up crawls produce: the classifier liveness
/// series plus, per snapshot, how many classifier-live pages still
/// visually match a monitored brand page (via [`BrandHashIndex`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Classifier-confirmed liveness per snapshot.
    pub series: SnapshotSeries,
    /// Per snapshot, classifier-live web pages within
    /// [`VISUAL_MATCH_RADIUS`] of some brand page.
    pub visual_matches: [usize; 4],
    /// Brand pages indexed for the visual-match lookups.
    pub indexed_brands: usize,
}

/// Re-crawls every confirmed phishing domain in all four snapshots and
/// re-classifies the captured pages, exactly like the paper's follow-up
/// crawls. Returns the per-snapshot live counts.
///
/// Panicking wrapper over [`try_recrawl_and_classify`].
pub fn recrawl_and_classify(result: &PipelineResult, threads: usize) -> SnapshotSeries {
    match try_recrawl_and_classify(result, threads) {
        Ok(series) => series,
        Err(e) => panic!("snapshot re-crawl failed: {e}"),
    }
}

/// Fallible snapshot re-crawl: crawl-configuration problems surface as a
/// structured [`PipelineError`] attributed to the crawl stage instead of
/// panicking mid-series. Thin wrapper over
/// [`try_recrawl_and_classify_detailed`] for callers that only want the
/// liveness series.
pub fn try_recrawl_and_classify(
    result: &PipelineResult,
    threads: usize,
) -> Result<SnapshotSeries, PipelineError> {
    try_recrawl_and_classify_detailed(result, threads).map(|report| report.series)
}

/// The full follow-up-crawl report: classifier liveness per snapshot plus
/// visual brand-match counts through a [`BrandHashIndex`] built once over
/// the monitored brands' login pages (analyzed through the shared,
/// cache-fronted analyzer, so the brand pages cost cache probes).
pub fn try_recrawl_and_classify_detailed(
    result: &PipelineResult,
    threads: usize,
) -> Result<SnapshotReport, PipelineError> {
    let extractor = &result.extractor;
    let transport = InProcessTransport::new(result.world.clone());

    // The follow-up jobs: one per confirmed phishing domain, keeping the
    // brand/type metadata the crawler expects.
    let confirmed: std::collections::HashSet<&str> =
        result.confirmed_domains().into_iter().collect();
    let jobs: Vec<(String, usize, squatphi_squat::SquatType)> = result
        .crawl
        .iter()
        .filter(|r| confirmed.contains(r.domain.as_str()))
        .map(|r| (r.domain.clone(), r.brand, r.squat_type))
        .collect();

    let analyzer = extractor.analyzer();
    let brand_index = BrandHashIndex::build(result.registry.brands().iter().filter_map(|b| {
        let page = result.world.brand_page(b.id)?;
        let artifact = analyzer.analyze(page);
        (!artifact.degraded).then_some((b.id, artifact.image_hash))
    }));

    let mut report = SnapshotReport {
        series: [(0, 0); 4],
        visual_matches: [0; 4],
        indexed_brands: brand_index.len(),
    };
    for snapshot in 0..4 {
        let cfg = CrawlConfig::builder()
            .workers(threads.max(1))
            .snapshot(snapshot as u8)
            .build()
            .map_err(|e| PipelineError {
                stage: PipelineStage::Crawl,
                kind: PipelineErrorKind::Config(e.to_string()),
                completed: PipelineStage::ALL.to_vec(),
            })?;
        let (records, _) = crawl_all(&jobs, &result.registry, &transport, &cfg);
        let (live, visual) = classify_live(&records, extractor, result, &brand_index, threads);
        report.series[snapshot] = live;
        report.visual_matches[snapshot] = visual;
    }
    Ok(report)
}

fn classify_live(
    records: &[squatphi_crawler::CrawlRecord],
    extractor: &FeatureExtractor,
    result: &PipelineResult,
    brand_index: &BrandHashIndex,
    threads: usize,
) -> ((usize, usize), usize) {
    let mut live = (0usize, 0usize);
    let mut visual = 0usize;
    for device in [Device::Web, Device::Mobile] {
        let htmls: Vec<&str> = records
            .iter()
            .filter_map(|r| match device {
                Device::Web => r.web.as_ref(),
                Device::Mobile => r.mobile.as_ref(),
            })
            .filter(|c| !c.html.is_empty())
            .map(|c| c.html.as_str())
            .collect();
        let vectors = extractor.extract_batch(&htmls, threads);
        let count = vectors
            .iter()
            .filter(|v| result.model.score(v) >= 0.5)
            .count();
        match device {
            Device::Web => {
                live.0 = count;
                // Visual confirmation (web profile only — the mobile
                // capture shares the template): a live page whose
                // screenshot still sits within VISUAL_MATCH_RADIUS of a
                // brand page is an unambiguous ongoing impersonation.
                let analyzer = extractor.analyzer();
                visual = htmls
                    .iter()
                    .zip(&vectors)
                    .filter(|(_, v)| result.model.score(v) >= 0.5)
                    .filter(|(html, _)| {
                        let artifact = analyzer.analyze(html);
                        !artifact.degraded
                            && !brand_index
                                .brands_within(&artifact.image_hash, VISUAL_MATCH_RADIUS)
                                .is_empty()
                    })
                    .count();
            }
            Device::Mobile => live.1 = count,
        }
    }
    (live, visual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunOptions, SimConfig, SquatPhi};

    #[test]
    fn recrawl_series_decays_but_survives() {
        let result = SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
            .expect("tiny pipeline runs clean");
        let hits_before = result.extractor.analyzer().metrics().cache_hits;
        let report =
            try_recrawl_and_classify_detailed(&result, 4).expect("detailed re-crawl runs clean");
        let series = report.series;
        // The brand index covered the registry and visual matches can
        // never exceed the classifier-live web pages they refine.
        assert!(report.indexed_brands > 0, "no brand pages indexed");
        for (snapshot, &visual) in report.visual_matches.iter().enumerate() {
            assert!(
                visual <= series[snapshot].0,
                "snapshot {snapshot}: {visual} visual matches > {} live",
                series[snapshot].0
            );
        }
        assert!(
            report.visual_matches[0] > 0,
            "no first-snapshot phishing page visually matches its brand"
        );
        // Unchanged snapshot pages are served from the shared cache.
        assert!(
            result.extractor.analyzer().metrics().cache_hits > hits_before,
            "snapshot re-crawl never hit the analysis cache"
        );
        let first = series[0].0 + series[0].1;
        let last = series[3].0 + series[3].1;
        assert!(first > 0, "no live phishing at the first snapshot");
        assert!(last <= first, "liveness grew over time: {series:?}");
        // Paper: ~80% survive the month; allow a broad band at tiny scale.
        assert!(
            last * 10 >= first * 5,
            "survival collapsed: {first} -> {last} ({series:?})"
        );
    }
}
