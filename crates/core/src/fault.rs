//! Seeded end-to-end fault injection for the pipeline (the supervision
//! analogue of the crawler's transport chaos plans).
//!
//! A [`PipelineFaultPlan`] plants faults *above* the transport layer:
//! analyzer panics (persistent or first-attempt-only), poisoned pages
//! whose visual derivation is forced to fail, and truncated crawl
//! records. Every decision is a pure function of the plan's seed and a
//! stable, stage-qualified record key — never of thread interleaving or
//! processing order — so the same plan afflicts the same records under
//! any worker count, and the supervision report can reconcile injected
//! counts against quarantined/degraded/recovered outcomes exactly.
//!
//! Plans parse from the `repro --faults` grammar: a comma-separated list
//! of `CLASS-permille-P` clauses (`P` in 0..=1000), e.g.
//! `panic-permille-60,poison-permille-50`. `none` is the empty plan.

use crate::artifact::content_key;

/// Per-class salts so one record never draws correlated faults across
/// classes from the same hash.
const SALT_PANIC: u64 = 0x70a1;
const SALT_FLAKY: u64 = 0xf1a2;
const SALT_POISON: u64 = 0x9013;
const SALT_TRUNCATE: u64 = 0x7254;

/// What a fault plan decided for one page record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// Panic on the first `failing_attempts` attempts. `u32::MAX` means
    /// the panic is persistent and the record ends in quarantine; `1`
    /// models a flaky analyzer that recovers on retry.
    Panic {
        /// Number of leading attempts that panic.
        failing_attempts: u32,
    },
    /// Force the visual derivation (render → pHash → OCR) to fail so the
    /// page takes the degraded lexical+form-only path.
    Poison,
}

/// Injected-fault counters, grouped the way [`reconciles`] consumes them.
///
/// [`reconciles`]: crate::supervise::SupervisionReport::reconciles
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Records afflicted with an injected analyzer panic (persistent or
    /// flaky), counted once per afflicted record at processing time.
    pub analyzer_panics: u64,
    /// Pages whose visual derivation was forcibly poisoned.
    pub poisoned_pages: u64,
    /// Crawl records whose captured HTML was truncated.
    pub truncated_records: u64,
}

impl FaultCounts {
    /// Total injected faults across all classes.
    pub fn total(&self) -> u64 {
        self.analyzer_panics + self.poisoned_pages + self.truncated_records
    }
}

/// A seeded, deterministic pipeline fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineFaultPlan {
    seed: u64,
    panic_permille: u16,
    flaky_permille: u16,
    poison_permille: u16,
    truncate_permille: u16,
}

impl Default for PipelineFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl PipelineFaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        PipelineFaultPlan {
            seed: 0,
            panic_permille: 0,
            flaky_permille: 0,
            poison_permille: 0,
            truncate_permille: 0,
        }
    }

    /// Re-seeds the plan (the record population it afflicts shifts).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Plants persistent analyzer panics into `permille`/1000 of pages.
    pub fn analyzer_panics(mut self, permille: u16) -> Self {
        self.panic_permille = permille.min(1000);
        self
    }

    /// Plants first-attempt-only panics (recoverable given a retry
    /// budget ≥ 1) into `permille`/1000 of pages.
    pub fn flaky_panics(mut self, permille: u16) -> Self {
        self.flaky_permille = permille.min(1000);
        self
    }

    /// Poisons the visual derivation of `permille`/1000 of pages.
    pub fn poisons(mut self, permille: u16) -> Self {
        self.poison_permille = permille.min(1000);
        self
    }

    /// Truncates the captured HTML of `permille`/1000 of crawl records.
    pub fn truncations(mut self, permille: u16) -> Self {
        self.truncate_permille = permille.min(1000);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.panic_permille == 0
            && self.flaky_permille == 0
            && self.poison_permille == 0
            && self.truncate_permille == 0
    }

    /// Parses the `--faults` grammar: `none` or a comma-separated list of
    /// `panic-permille-P` / `flaky-permille-P` / `poison-permille-P` /
    /// `truncate-permille-P` clauses (`P` ∈ 0..=1000). Tokenization is
    /// the shared seeded-plan grammar in [`squatphi_durability::grammar`]
    /// (the same one `DiskFaultPlan` uses), so error wording names the
    /// offending clause consistently across both fault surfaces.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::none();
        for clause in squatphi_durability::grammar::parse_clauses("fault", spec)? {
            let permille = u16::try_from(clause.value)
                .ok()
                .filter(|p| *p <= 1000)
                .ok_or_else(|| format!("fault clause {:?}: permille exceeds 1000", clause.text))?;
            match clause.kind.as_str() {
                "panic-permille" => plan.panic_permille = permille,
                "flaky-permille" => plan.flaky_permille = permille,
                "poison-permille" => plan.poison_permille = permille,
                "truncate-permille" => plan.truncate_permille = permille,
                other => {
                    return Err(format!(
                        "fault clause {:?}: unknown class {other:?} \
                         (expected panic|flaky|poison|truncate -permille)",
                        clause.text
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Canonical spec string — part of the checkpoint config hash, so a
    /// checkpoint taken under one plan never replays under another.
    pub fn canonical(&self) -> String {
        format!(
            "seed={},panic={},flaky={},poison={},truncate={}",
            self.seed,
            self.panic_permille,
            self.flaky_permille,
            self.poison_permille,
            self.truncate_permille
        )
    }

    fn draws(&self, salt: u64, key: &str, permille: u16) -> bool {
        permille > 0 && content_key(self.seed ^ salt, key.as_bytes()) % 1000 < u64::from(permille)
    }

    /// Decides the fault (if any) for one page record. `key` must be a
    /// stable stage-qualified identifier (e.g. `detect:web:dom.com`);
    /// classes are checked in fixed precedence order (persistent panic >
    /// flaky panic > poison) so each record draws at most one fault.
    pub fn decide_page(&self, key: &str) -> Option<PageFault> {
        if self.draws(SALT_PANIC, key, self.panic_permille) {
            return Some(PageFault::Panic {
                failing_attempts: u32::MAX,
            });
        }
        if self.draws(SALT_FLAKY, key, self.flaky_permille) {
            return Some(PageFault::Panic {
                failing_attempts: 1,
            });
        }
        if self.draws(SALT_POISON, key, self.poison_permille) {
            return Some(PageFault::Poison);
        }
        None
    }

    /// Decides whether one crawl record's captured HTML gets truncated.
    pub fn truncates(&self, domain: &str) -> bool {
        self.draws(SALT_TRUNCATE, domain, self.truncate_permille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_class() {
        let plan = PipelineFaultPlan::parse(
            "panic-permille-60,flaky-permille-40,poison-permille-50,truncate-permille-30",
        )
        .unwrap();
        assert_eq!(plan.panic_permille, 60);
        assert_eq!(plan.flaky_permille, 40);
        assert_eq!(plan.poison_permille, 50);
        assert_eq!(plan.truncate_permille, 30);
        assert!(!plan.is_none());
        assert!(PipelineFaultPlan::parse("none").unwrap().is_none());
        assert!(PipelineFaultPlan::parse("").unwrap().is_none());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(PipelineFaultPlan::parse("panic-permille-1001").is_err());
        assert!(PipelineFaultPlan::parse("panic-permille-x").is_err());
        assert!(PipelineFaultPlan::parse("explode-permille-5").is_err());
        assert!(PipelineFaultPlan::parse("panic").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_key_sensitive() {
        let plan = PipelineFaultPlan::none().analyzer_panics(500).with_seed(7);
        let keys: Vec<String> = (0..200).map(|i| format!("detect:web:d{i}.com")).collect();
        let first: Vec<_> = keys.iter().map(|k| plan.decide_page(k)).collect();
        let second: Vec<_> = keys.iter().map(|k| plan.decide_page(k)).collect();
        assert_eq!(first, second);
        let afflicted = first.iter().filter(|f| f.is_some()).count();
        assert!(
            (50..150).contains(&afflicted),
            "500‰ afflicted {afflicted}/200"
        );
        // A different seed shifts the afflicted population.
        let reseeded = plan.with_seed(8);
        assert!(keys
            .iter()
            .any(|k| plan.decide_page(k) != reseeded.decide_page(k)));
    }

    #[test]
    fn precedence_makes_faults_exclusive() {
        let plan = PipelineFaultPlan::none()
            .analyzer_panics(1000)
            .poisons(1000);
        // With both classes at 100%, the persistent panic always wins.
        for i in 0..50 {
            assert_eq!(
                plan.decide_page(&format!("k{i}")),
                Some(PageFault::Panic {
                    failing_attempts: u32::MAX
                })
            );
        }
    }

    #[test]
    fn canonical_distinguishes_plans() {
        let a = PipelineFaultPlan::none().analyzer_panics(10);
        let b = PipelineFaultPlan::none().poisons(10);
        assert_ne!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), a.canonical());
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = PipelineFaultPlan::none();
        for i in 0..100 {
            assert_eq!(plan.decide_page(&format!("k{i}")), None);
            assert!(!plan.truncates(&format!("d{i}.com")));
        }
    }
}
