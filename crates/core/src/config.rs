//! Simulation-scale configuration shared by the whole pipeline.

use squatphi_dnsdb::SnapshotConfig;
use squatphi_feeds::FeedConfig;
use squatphi_web::WorldConfig;

/// All the scale knobs of one reproduction run.
///
/// The haystack (DNS records, squatting population) scales down by a
/// divisor while the small-count populations (phishing domains, the
/// ground-truth feed) stay near paper scale, so the shape of every table
/// survives scaling.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// DNS snapshot shape.
    pub snapshot: SnapshotConfig,
    /// Web-world behavior mix.
    pub world: WorldConfig,
    /// Ground-truth feed shape.
    pub feed: FeedConfig,
    /// Brands monitored (the paper's 702).
    pub brands: usize,
    /// Scan / crawl / feature-extraction worker threads.
    pub threads: usize,
    /// Number of "easy-to-confuse" benign squatting pages added to the
    /// training negatives (paper: 1,565).
    pub sampled_benign: usize,
    /// Cross-validation folds (paper: 10).
    pub cv_folds: usize,
    /// Front page analysis with the content-addressed artifact cache
    /// (off = re-derive every page; outputs are byte-identical either
    /// way, only speed and the hit/miss counters change).
    pub analysis_cache: bool,
    /// Visual-similarity lookups through the multi-index Hamming-space
    /// `imghash::index::HashIndex` (off = the preserved linear scan;
    /// results are set-identical either way, only speed and the
    /// `phash.index.*` counters change).
    pub phash_index: bool,
    /// Master seed.
    pub seed: u64,
}

impl SimConfig {
    /// Paper scale divided by `divisor` for the haystack; everything
    /// small stays full-size.
    pub fn paper_scale(divisor: usize) -> Self {
        SimConfig {
            snapshot: SnapshotConfig::paper_scale(divisor),
            world: WorldConfig::default(),
            feed: FeedConfig::default(),
            brands: 702,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            sampled_benign: 1_565,
            cv_folds: 10,
            analysis_cache: true,
            phash_index: true,
            seed: 2018,
        }
    }

    /// The smallest configuration that still exercises every stage —
    /// sized for oracles that run the full pipeline many times per
    /// invocation (the conformance supervision oracle, chaos matrices).
    pub fn micro() -> Self {
        SimConfig {
            snapshot: SnapshotConfig {
                benign_records: 800,
                squatting_records: 300,
                subdomain_fraction: 0.2,
                seed: 11,
            },
            world: WorldConfig {
                phishing_domains: 40,
                seed: 12,
                ..WorldConfig::default()
            },
            feed: FeedConfig {
                total_urls: 200,
                seed: 13,
            },
            brands: 24,
            threads: 2,
            sampled_benign: 60,
            cv_folds: 3,
            analysis_cache: true,
            phash_index: true,
            seed: 14,
        }
    }

    /// A configuration small enough for unit tests (seconds, not minutes).
    pub fn tiny() -> Self {
        SimConfig {
            snapshot: SnapshotConfig {
                benign_records: 3_000,
                squatting_records: 900,
                subdomain_fraction: 0.2,
                seed: 11,
            },
            world: WorldConfig {
                phishing_domains: 120,
                seed: 12,
                ..WorldConfig::default()
            },
            feed: FeedConfig {
                total_urls: 700,
                seed: 13,
            },
            brands: 60,
            threads: 4,
            sampled_benign: 150,
            cv_folds: 5,
            analysis_cache: true,
            phash_index: true,
            seed: 14,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_scales_haystack_only() {
        let full = SimConfig::paper_scale(1);
        let scaled = SimConfig::paper_scale(100);
        assert_eq!(
            scaled.snapshot.benign_records,
            full.snapshot.benign_records / 100
        );
        assert_eq!(scaled.world.phishing_domains, full.world.phishing_domains);
        assert_eq!(scaled.feed.total_urls, full.feed.total_urls);
        assert_eq!(scaled.brands, 702);
    }

    #[test]
    fn tiny_is_small() {
        let t = SimConfig::tiny();
        assert!(t.snapshot.benign_records <= 5_000);
        assert!(t.brands <= 100);
    }
}
