//! The shared page-analysis layer (paper §5.1-§5.2).
//!
//! Every downstream consumer of a crawled page — feature extraction,
//! evasion measurement (§4.2), the weekly re-classification (§6.3),
//! classifier reinforcement, the experiment tables and the `page` CLI
//! subcommand — needs the same derived products: parsed DOM text, form
//! structure, JavaScript indicators, a rendered screenshot, its
//! perceptual hash, and the OCR'd text. Historically each consumer
//! re-derived them from raw HTML, so the same page was parsed, rendered
//! and OCR'd up to five times per pipeline run and nothing guaranteed the
//! copies agreed.
//!
//! [`PageAnalyzer::analyze`] performs the whole derivation **exactly
//! once**, producing an immutable [`PageArtifact`]. A seeded,
//! content-addressed [`AnalysisCache`] (sharded for concurrent access)
//! fronts the analyzer, so template-identical squat pages, the
//! byte-identical web/mobile captures of uncloaked sites, and unchanged
//! snapshot re-crawls all cost a single hash probe instead of a render +
//! OCR pass. [`AnalysisMetrics`] counts pages, cache hits/misses and
//! per-stage nanos; [`AnalysisSnapshot`] is the read side surfaced
//! through `PipelineResult` into the `repro` report and `--json`
//! summary, matching the `ScanMetrics` / `TransportMetrics` pattern.

use crate::supervise::QuietGuard;
use parking_lot::Mutex;
use squatphi_html::{extract, js, parse, Document, JsIndicators};
use squatphi_imghash::{perceptual_hash, ImageHash};
use squatphi_nlp::{remove_stopwords, tokenize};
use squatphi_ocr::{try_recognize, OcrConfig};
use squatphi_render::{render_page, try_render_page, Bitmap, RenderOptions};
use squatphi_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default seed of the content-address hash. Seeding keys the hash per
/// cache instance so a crafted page cannot target a fixed collision.
pub const DEFAULT_CACHE_SEED: u64 = 0x5eed_cafe_2018;

/// Default shard count of the cache (power of two, so shard selection is
/// a mask of the already-computed content key).
pub const DEFAULT_CACHE_SHARDS: usize = 16;

const FX_K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Seeded FxHash-style content key over a byte string. Length is mixed
/// in first so prefixes of each other do not trivially collide.
pub fn content_key(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = (seed ^ bytes.len() as u64).wrapping_mul(FX_K);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes"));
        h = (h.rotate_left(5) ^ word).wrapping_mul(FX_K);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(FX_K);
    }
    h
}

/// Everything the pipeline ever derives from one page's HTML, computed
/// in a single pass and immutable afterwards. One parse means the
/// evasion hashes (Figures 8-9) and the classifier's OCR features can
/// never disagree about the same page.
#[derive(Debug, Clone, PartialEq)]
pub struct PageArtifact {
    /// Seeded content hash of the HTML bytes (the cache address).
    pub content_key: u64,
    /// First `<title>` text, when present.
    pub title: Option<String>,
    /// Whole-page lower-cased visible text (the §4.2 string-obfuscation
    /// substrate).
    pub text_lower: String,
    /// Lexical tokens: tokenized, stopword-filtered visible text.
    pub lexical_tokens: Vec<String>,
    /// Number of `<form>` elements.
    pub form_count: usize,
    /// Inputs with `type="password"`.
    pub password_inputs: usize,
    /// Non-password, non-submit inputs.
    pub text_inputs: usize,
    /// Submit controls.
    pub submit_controls: usize,
    /// Form tokens: tokenized, stopword-filtered input types, names,
    /// placeholders and submit texts.
    pub form_tokens: Vec<String>,
    /// JavaScript obfuscation indicators (§4.2 "Code Obfuscation").
    pub js: JsIndicators,
    /// Perceptual hash of the rendered screenshot (§4.2 "Layout
    /// Obfuscation").
    pub image_hash: ImageHash,
    /// Raw OCR transcript of the rendered screenshot.
    pub ocr_text: String,
    /// OCR tokens: tokenized, stopword-filtered transcript. Spell
    /// correction is *not* applied here — it depends on the consumer's
    /// brand dictionary, so `FeatureExtractor` applies it at embed time.
    pub ocr_tokens: Vec<String>,
    /// True when the visual derivation (render → pHash → OCR) failed or
    /// was forcibly poisoned: the visual block above is zero-filled
    /// (`ImageHash(0)`, empty OCR) and only the lexical+form features
    /// carry signal — the paper's §5 missing-modality fallback.
    pub degraded: bool,
}

struct CacheEntry {
    html: Box<str>,
    artifact: Arc<PageArtifact>,
}

/// Content-addressed artifact cache, sharded for concurrent access.
///
/// Hits are verified against the stored HTML, so a 64-bit key collision
/// degrades to a counted miss instead of serving the wrong artifact —
/// cache-on and cache-off runs are byte-identical by construction.
pub struct AnalysisCache {
    seed: u64,
    shards: Vec<Mutex<HashMap<u64, CacheEntry>>>,
}

enum Lookup {
    Hit(Arc<PageArtifact>),
    Collision,
    Miss,
}

impl AnalysisCache {
    /// Builds a cache with `shards` shards (clamped to ≥ 1, rounded up
    /// to a power of two) keyed by `seed`.
    pub fn new(seed: u64, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        AnalysisCache {
            seed,
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, CacheEntry>> {
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    fn lookup(&self, key: u64, html: &str) -> Lookup {
        match self.shard(key).lock().get(&key) {
            Some(e) if &*e.html == html => Lookup::Hit(e.artifact.clone()),
            Some(_) => Lookup::Collision,
            None => Lookup::Miss,
        }
    }

    fn insert(&self, key: u64, html: &str, artifact: Arc<PageArtifact>) {
        self.shard(key).lock().insert(
            key,
            CacheEntry {
                html: html.into(),
                artifact,
            },
        );
    }

    /// Number of cached artifacts across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared counters behind [`AnalysisSnapshot`], homed in a telemetry
/// [`Registry`] under the `analysis.` scope.
struct AnalysisMetrics {
    registry: Registry,
    pages: Counter,
    hits: Counter,
    misses: Counter,
    collisions: Counter,
    parse_nanos: Counter,
    extract_nanos: Counter,
    render_nanos: Counter,
    hash_nanos: Counter,
    ocr_nanos: Counter,
    embed_nanos: Counter,
}

impl Default for AnalysisMetrics {
    fn default() -> Self {
        let registry = Registry::new();
        let scope = registry.scope("analysis");
        AnalysisMetrics {
            pages: scope.counter("pages"),
            hits: scope.counter("cache_hits"),
            misses: scope.counter("cache_misses"),
            collisions: scope.counter("key_collisions"),
            parse_nanos: scope.counter("parse_nanos"),
            extract_nanos: scope.counter("extract_nanos"),
            render_nanos: scope.counter("render_nanos"),
            hash_nanos: scope.counter("hash_nanos"),
            ocr_nanos: scope.counter("ocr_nanos"),
            embed_nanos: scope.counter("embed_nanos"),
            registry,
        }
    }
}

impl AnalysisMetrics {
    fn add_nanos(counter: &Counter, d: Duration) {
        counter.add(d.as_nanos() as u64);
    }
}

/// Point-in-time read of the analysis counters, reconciling exactly:
/// `pages == cache_hits + cache_misses` always holds (a disabled cache
/// counts every page as a miss).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisSnapshot {
    /// Pages requested through [`PageAnalyzer::analyze`].
    pub pages: u64,
    /// Requests served from the cache.
    pub cache_hits: u64,
    /// Requests that ran the full derivation.
    pub cache_misses: u64,
    /// Content-key collisions detected by the HTML verify (counted
    /// inside `cache_misses`).
    pub key_collisions: u64,
    /// Nanoseconds spent parsing HTML.
    pub parse_nanos: u64,
    /// Nanoseconds spent on text/form/JS extraction and tokenization.
    pub extract_nanos: u64,
    /// Nanoseconds spent rendering screenshots.
    pub render_nanos: u64,
    /// Nanoseconds spent perceptual-hashing screenshots.
    pub hash_nanos: u64,
    /// Nanoseconds spent OCR-ing screenshots.
    pub ocr_nanos: u64,
    /// Nanoseconds spent embedding tokens into feature vectors (recorded
    /// by `FeatureExtractor`, the layer above the analyzer).
    pub embed_nanos: u64,
}

impl AnalysisSnapshot {
    /// The reconciliation invariant: every page is either a hit or a
    /// miss, nothing double-counts and nothing is lost. Checked
    /// declaratively against the exported telemetry
    /// (`analysis.cache_conservation`).
    pub fn reconciles(&self) -> bool {
        let reg = Registry::new();
        self.export(&reg.scope("analysis"));
        squatphi_telemetry::invariants::analysis_invariants().all_hold(&reg.snapshot())
    }

    /// Publishes the snapshot into a telemetry scope (canonically
    /// `analysis`). The nano counters use timing-rule names, so default
    /// `--json` output zeroes them.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        scope.set_u64("pages", self.pages);
        scope.set_u64("cache_hits", self.cache_hits);
        scope.set_u64("cache_misses", self.cache_misses);
        scope.set_u64("key_collisions", self.key_collisions);
        scope.set_u64("parse_nanos", self.parse_nanos);
        scope.set_u64("extract_nanos", self.extract_nanos);
        scope.set_u64("render_nanos", self.render_nanos);
        scope.set_u64("hash_nanos", self.hash_nanos);
        scope.set_u64("ocr_nanos", self.ocr_nanos);
        scope.set_u64("embed_nanos", self.embed_nanos);
    }

    /// Reads a snapshot back from an exported scope — the inverse of
    /// [`AnalysisSnapshot::export`].
    pub fn from_snapshot(snap: &squatphi_telemetry::Snapshot, prefix: &str) -> AnalysisSnapshot {
        let get = |leaf: &str| snap.u64_or_zero(&format!("{prefix}.{leaf}"));
        AnalysisSnapshot {
            pages: get("pages"),
            cache_hits: get("cache_hits"),
            cache_misses: get("cache_misses"),
            key_collisions: get("key_collisions"),
            parse_nanos: get("parse_nanos"),
            extract_nanos: get("extract_nanos"),
            render_nanos: get("render_nanos"),
            hash_nanos: get("hash_nanos"),
            ocr_nanos: get("ocr_nanos"),
            embed_nanos: get("embed_nanos"),
        }
    }

    /// Fraction of analyze calls served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.pages as f64
        }
    }

    /// Sum of all per-stage nanos (parse through embed).
    pub fn stage_nanos(&self) -> u64 {
        self.parse_nanos
            + self.extract_nanos
            + self.render_nanos
            + self.hash_nanos
            + self.ocr_nanos
            + self.embed_nanos
    }

    /// One-line human report, for CLI/stderr surfaces.
    pub fn report_line(&self) -> String {
        let ms = |n: u64| n as f64 / 1e6;
        format!(
            "{} pages ({} cache hits, {} misses, {:.1}% hit rate, {} collisions); \
             parse {:.1}ms, extract {:.1}ms, render {:.1}ms, hash {:.1}ms, ocr {:.1}ms, embed {:.1}ms",
            self.pages,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
            self.key_collisions,
            ms(self.parse_nanos),
            ms(self.extract_nanos),
            ms(self.render_nanos),
            ms(self.hash_nanos),
            ms(self.ocr_nanos),
            ms(self.embed_nanos),
        )
    }
}

/// The single entry point for page analysis: owns the render and OCR
/// configuration, the cache, and the metrics counters. Shared across
/// threads (and consumers) behind an `Arc`.
pub struct PageAnalyzer {
    render: RenderOptions,
    ocr: OcrConfig,
    cache: Option<AnalysisCache>,
    metrics: AnalysisMetrics,
}

impl std::fmt::Debug for PageAnalyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageAnalyzer")
            .field("cache_enabled", &self.cache.is_some())
            .field("cached_artifacts", &self.cached_artifacts())
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl Default for PageAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl PageAnalyzer {
    /// Cached analyzer with the default seed and shard count.
    pub fn new() -> Self {
        Self::with_seed(DEFAULT_CACHE_SEED)
    }

    /// Cached analyzer with an explicit content-key seed.
    pub fn with_seed(seed: u64) -> Self {
        PageAnalyzer {
            render: RenderOptions::default(),
            ocr: OcrConfig::default(),
            cache: Some(AnalysisCache::new(seed, DEFAULT_CACHE_SHARDS)),
            metrics: AnalysisMetrics::default(),
        }
    }

    /// Analyzer with the cache disabled: every page runs the full
    /// derivation (the baseline the byte-equality tests compare against).
    pub fn uncached() -> Self {
        PageAnalyzer {
            render: RenderOptions::default(),
            ocr: OcrConfig::default(),
            cache: None,
            metrics: AnalysisMetrics::default(),
        }
    }

    /// Whether a cache fronts this analyzer.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Artifacts currently held by the cache (0 when disabled).
    pub fn cached_artifacts(&self) -> usize {
        self.cache.as_ref().map(AnalysisCache::len).unwrap_or(0)
    }

    /// Analyzes one page, via the cache when possible. The returned
    /// artifact is shared, never recomputed, and identical to what an
    /// uncached analyzer would produce.
    pub fn analyze(&self, html: &str) -> Arc<PageArtifact> {
        self.metrics.pages.inc();
        let Some(cache) = &self.cache else {
            self.metrics.misses.inc();
            return Arc::new(self.derive(content_key(DEFAULT_CACHE_SEED, html.as_bytes()), html));
        };
        let key = content_key(cache.seed, html.as_bytes());
        match cache.lookup(key, html) {
            Lookup::Hit(artifact) => {
                self.metrics.hits.inc();
                artifact
            }
            found => {
                if matches!(found, Lookup::Collision) {
                    self.metrics.collisions.inc();
                }
                self.metrics.misses.inc();
                let artifact = Arc::new(self.derive(key, html));
                cache.insert(key, html, artifact.clone());
                artifact
            }
        }
    }

    /// Analyzes one page with the visual derivation forcibly disabled —
    /// the supervised pipeline routes fault-plan-poisoned pages here. The
    /// result is always `degraded` and deliberately bypasses the cache in
    /// both directions, so a poisoned artifact can never be served to (or
    /// shadow) an unpoisoned request for the same HTML. Counts as one
    /// page and one miss, keeping `AnalysisSnapshot::reconciles` exact.
    pub fn analyze_forced_degraded(&self, html: &str) -> Arc<PageArtifact> {
        self.metrics.pages.inc();
        self.metrics.misses.inc();
        let seed = self
            .cache
            .as_ref()
            .map(|c| c.seed)
            .unwrap_or(DEFAULT_CACHE_SEED);
        Arc::new(self.derive_degraded(content_key(seed, html.as_bytes()), html))
    }

    /// Renders a page to a bitmap through the analyzer's single render
    /// path (for ASCII screenshots à la Figure 14). Bitmaps are large, so
    /// they are deliberately *not* retained in artifacts or the cache.
    pub fn screenshot(&self, html: &str) -> Bitmap {
        let t = Instant::now();
        let doc = parse(html);
        AnalysisMetrics::add_nanos(&self.metrics.parse_nanos, t.elapsed());
        let t = Instant::now();
        let bmp = render_page(&doc, &self.render);
        AnalysisMetrics::add_nanos(&self.metrics.render_nanos, t.elapsed());
        bmp
    }

    /// Records embed time from the feature-extraction layer, so the
    /// snapshot covers the full parse→embed stage ladder.
    pub fn note_embed(&self, d: Duration) {
        AnalysisMetrics::add_nanos(&self.metrics.embed_nanos, d);
    }

    /// Reads the counters.
    pub fn metrics(&self) -> AnalysisSnapshot {
        let m = &self.metrics;
        AnalysisSnapshot {
            pages: m.pages.get(),
            cache_hits: m.hits.get(),
            cache_misses: m.misses.get(),
            key_collisions: m.collisions.get(),
            parse_nanos: m.parse_nanos.get(),
            extract_nanos: m.extract_nanos.get(),
            render_nanos: m.render_nanos.get(),
            hash_nanos: m.hash_nanos.get(),
            ocr_nanos: m.ocr_nanos.get(),
            embed_nanos: m.embed_nanos.get(),
        }
    }

    /// The registry the analysis counters live in (`analysis.` scope).
    pub fn telemetry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// The full single-pass derivation (cache miss path). When the
    /// visual half fails — invalid geometry, invalid OCR config, or an
    /// outright panic in render/pHash/OCR — the page *naturally*
    /// degrades to its textual half instead of being dropped.
    fn derive(&self, key: u64, html: &str) -> PageArtifact {
        let t = Instant::now();
        let doc = parse(html);
        AnalysisMetrics::add_nanos(&self.metrics.parse_nanos, t.elapsed());

        let mut artifact = self.derive_textual(key, &doc);
        match self.derive_visual(&doc) {
            Some((image_hash, ocr_text, ocr_tokens)) => {
                artifact.image_hash = image_hash;
                artifact.ocr_text = ocr_text;
                artifact.ocr_tokens = ocr_tokens;
            }
            None => artifact.degraded = true,
        }
        artifact
    }

    /// Textual-only derivation with the visual block pre-degraded (the
    /// forced-poison path skips render/pHash/OCR entirely).
    fn derive_degraded(&self, key: u64, html: &str) -> PageArtifact {
        let t = Instant::now();
        let doc = parse(html);
        AnalysisMetrics::add_nanos(&self.metrics.parse_nanos, t.elapsed());
        let mut artifact = self.derive_textual(key, &doc);
        artifact.degraded = true;
        artifact
    }

    /// The lexical/form/JS half of the derivation; the visual block is
    /// zero-filled for the caller to overwrite or flag.
    fn derive_textual(&self, key: u64, doc: &Document) -> PageArtifact {
        let t = Instant::now();
        let text = extract::extract_text(doc);
        let title = text.title.first().cloned();
        let text_lower = text.joined_lower();
        let lexical_tokens = remove_stopwords(tokenize(&text_lower));

        let forms = extract::extract_forms(doc);
        let mut password_inputs = 0usize;
        let mut text_inputs = 0usize;
        let mut submit_controls = 0usize;
        let mut form_tokens: Vec<String> = Vec::new();
        for f in &forms {
            for ty in &f.input_types {
                match ty.as_str() {
                    "password" => password_inputs += 1,
                    "submit" => submit_controls += 1,
                    _ => text_inputs += 1,
                }
                form_tokens.extend(tokenize(ty));
            }
            for s in f
                .input_names
                .iter()
                .chain(&f.placeholders)
                .chain(&f.submit_texts)
            {
                form_tokens.extend(tokenize(s));
            }
        }
        let form_tokens = remove_stopwords(form_tokens);
        let js = js::scan_document(doc);
        AnalysisMetrics::add_nanos(&self.metrics.extract_nanos, t.elapsed());

        PageArtifact {
            content_key: key,
            title,
            text_lower,
            lexical_tokens,
            form_count: forms.len(),
            password_inputs,
            text_inputs,
            submit_controls,
            form_tokens,
            js,
            image_hash: ImageHash(0),
            ocr_text: String::new(),
            ocr_tokens: Vec::new(),
            degraded: false,
        }
    }

    /// The render → pHash → OCR half. `None` means the page degrades:
    /// fallible entry points reject impossible configs, and a stray
    /// panic anywhere in the visual stack is contained (quietly — the
    /// default panic hook would spam stderr) rather than allowed to kill
    /// a pipeline worker.
    fn derive_visual(&self, doc: &Document) -> Option<(ImageHash, String, Vec<String>)> {
        let _quiet = QuietGuard::new();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let t = Instant::now();
            let screenshot = try_render_page(doc, &self.render).ok()?;
            AnalysisMetrics::add_nanos(&self.metrics.render_nanos, t.elapsed());

            let t = Instant::now();
            let image_hash = perceptual_hash(&screenshot);
            AnalysisMetrics::add_nanos(&self.metrics.hash_nanos, t.elapsed());

            let t = Instant::now();
            let ocr_text = try_recognize(&screenshot, &self.ocr).ok()?.joined();
            let ocr_tokens = remove_stopwords(tokenize(&ocr_text));
            AnalysisMetrics::add_nanos(&self.metrics.ocr_nanos, t.elapsed());
            Some((image_hash, ocr_text, ocr_tokens))
        }))
        .ok()
        .flatten()
    }
}

/// Hamming-space index over the monitored brands' login-page hashes —
/// the "which brand does this page visually imitate?" lookup the snapshot
/// re-classifier and the `page` CLI use. A thin wrapper over
/// [`squatphi_imghash::index::HashIndex`] that maps insertion ids back to
/// brand ids; ties follow the index's insertion-order rule, so the brand
/// inserted first wins at equal distance.
pub struct BrandHashIndex {
    index: squatphi_imghash::index::HashIndex,
    brands: Vec<usize>,
}

/// One brand lookup result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrandMatch {
    /// Brand id (insertion order breaks ties).
    pub brand: usize,
    /// The brand page's perceptual hash.
    pub hash: ImageHash,
    /// Hamming distance from the query page (0..=64).
    pub distance: u32,
}

impl std::fmt::Debug for BrandHashIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrandHashIndex")
            .field("brands", &self.brands.len())
            .finish()
    }
}

impl BrandHashIndex {
    /// Builds the index from `(brand id, login-page hash)` pairs, in
    /// iteration order. Counters land in a private registry; use
    /// [`Self::in_registry`] to share the pipeline's.
    pub fn build<I: IntoIterator<Item = (usize, ImageHash)>>(entries: I) -> BrandHashIndex {
        Self::in_registry(&Registry::new(), entries)
    }

    /// Builds the index with its `phash.index.*` counters registered in
    /// `registry`.
    pub fn in_registry<I: IntoIterator<Item = (usize, ImageHash)>>(
        registry: &Registry,
        entries: I,
    ) -> BrandHashIndex {
        let mut index = squatphi_imghash::index::HashIndex::in_registry(registry);
        let mut brands = Vec::new();
        for (brand, hash) in entries {
            index.insert(hash);
            brands.push(brand);
        }
        BrandHashIndex { index, brands }
    }

    /// Number of indexed brand pages.
    pub fn len(&self) -> usize {
        self.brands.len()
    }

    /// True when no brand pages were indexed.
    pub fn is_empty(&self) -> bool {
        self.brands.is_empty()
    }

    /// The registry holding this index's `phash.index.*` counters.
    pub fn telemetry(&self) -> &Registry {
        self.index.telemetry()
    }

    /// The visually closest brand page, or `None` on an empty index.
    pub fn nearest_brand(&self, page_hash: &ImageHash) -> Option<BrandMatch> {
        self.index
            .nearest(page_hash, 1)
            .first()
            .map(|n| BrandMatch {
                brand: self.brands[n.id as usize],
                hash: n.hash,
                distance: n.distance,
            })
    }

    /// Every brand page within Hamming `radius`, in insertion order.
    pub fn brands_within(&self, page_hash: &ImageHash, radius: u32) -> Vec<BrandMatch> {
        self.index
            .within(page_hash, radius)
            .into_iter()
            .map(|n| BrandMatch {
                brand: self.brands[n.id as usize],
                hash: n.hash,
                distance: n.distance,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::BrandRegistry;
    use squatphi_web::pages;

    fn sample_page() -> String {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").expect("paypal in registry");
        pages::brand_login_page(brand)
    }

    #[test]
    fn content_key_is_seeded_and_length_aware() {
        assert_eq!(content_key(1, b"abc"), content_key(1, b"abc"));
        assert_ne!(content_key(1, b"abc"), content_key(2, b"abc"));
        assert_ne!(content_key(1, b"abc"), content_key(1, b"abcd"));
        assert_ne!(content_key(1, b""), content_key(1, b"\0"));
    }

    #[test]
    fn cached_hit_returns_shared_artifact() {
        let analyzer = PageAnalyzer::new();
        let html = sample_page();
        let a = analyzer.analyze(&html);
        let b = analyzer.analyze(&html);
        assert!(Arc::ptr_eq(&a, &b), "second analyze must be a cache hit");
        let m = analyzer.metrics();
        assert_eq!((m.pages, m.cache_hits, m.cache_misses), (2, 1, 1));
        assert!(m.reconciles());
        assert_eq!(analyzer.cached_artifacts(), 1);
    }

    #[test]
    fn cached_and_uncached_agree() {
        let cached = PageAnalyzer::new();
        let uncached = PageAnalyzer::uncached();
        let html = sample_page();
        // Two passes so the cached analyzer serves one from the cache.
        for _ in 0..2 {
            let a = cached.analyze(&html);
            let b = uncached.analyze(&html);
            assert_eq!(*a, *b);
        }
        let m = uncached.metrics();
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.pages, m.cache_misses);
        assert!(m.reconciles());
    }

    #[test]
    fn artifact_fields_are_populated() {
        let analyzer = PageAnalyzer::new();
        let a = analyzer.analyze(&sample_page());
        assert!(a.title.is_some());
        assert!(a.text_lower.contains("paypal"));
        assert!(!a.lexical_tokens.is_empty());
        assert!(a.form_count >= 1);
        assert!(a.password_inputs >= 1);
        assert!(!a.form_tokens.is_empty());
        assert!(!a.ocr_text.is_empty());
        let m = analyzer.metrics();
        assert!(m.parse_nanos > 0 || m.extract_nanos > 0 || m.render_nanos > 0);
    }

    #[test]
    fn distinct_pages_occupy_distinct_slots() {
        let analyzer = PageAnalyzer::new();
        // Seeds map onto a smaller template pool, so count the distinct
        // page bodies rather than assuming one per seed.
        let pages: Vec<String> = (0..8)
            .map(|i| pages::benign_page(&format!("b{i}.example.com"), i))
            .collect();
        let distinct: std::collections::HashSet<&str> = pages.iter().map(String::as_str).collect();
        for p in &pages {
            analyzer.analyze(p);
        }
        let m = analyzer.metrics();
        assert!(distinct.len() > 1, "corpus degenerated to one page");
        assert_eq!(m.cache_misses, distinct.len() as u64);
        assert_eq!(analyzer.cached_artifacts(), distinct.len());
        assert!(m.reconciles());
    }

    #[test]
    fn forced_degraded_bypasses_cache_and_zeroes_visuals() {
        let analyzer = PageAnalyzer::new();
        let html = sample_page();
        let full = analyzer.analyze(&html);
        assert!(!full.degraded);
        let degraded = analyzer.analyze_forced_degraded(&html);
        assert!(degraded.degraded);
        assert_eq!(degraded.image_hash, ImageHash(0));
        assert!(degraded.ocr_text.is_empty() && degraded.ocr_tokens.is_empty());
        // The textual half is unaffected by the poison.
        assert_eq!(degraded.lexical_tokens, full.lexical_tokens);
        assert_eq!(degraded.form_count, full.form_count);
        assert_eq!(degraded.content_key, full.content_key);
        // The cache was neither read nor polluted: the full artifact is
        // still what the next plain analyze serves.
        let again = analyzer.analyze(&html);
        assert!(Arc::ptr_eq(&full, &again));
        let m = analyzer.metrics();
        assert!(m.reconciles());
        assert_eq!((m.pages, m.cache_hits, m.cache_misses), (3, 1, 2));
    }

    #[test]
    fn screenshot_matches_direct_render() {
        let analyzer = PageAnalyzer::new();
        let html = sample_page();
        let via_analyzer = analyzer.screenshot(&html);
        let direct = render_page(&parse(&html), &RenderOptions::default());
        assert_eq!(via_analyzer.pixels(), direct.pixels());
    }

    #[test]
    fn report_line_reads_sane() {
        let analyzer = PageAnalyzer::new();
        analyzer.analyze(&sample_page());
        let line = analyzer.metrics().report_line();
        assert!(line.contains("1 pages"), "{line}");
        assert!(line.contains("0 cache hits"), "{line}");
        assert!(line.contains("1 misses"), "{line}");
    }

    #[test]
    fn brand_index_finds_the_imitated_brand() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(8);
        let index = BrandHashIndex::build(reg.brands().iter().map(|b| {
            let page = pages::brand_login_page(b);
            (b.id, analyzer.analyze(&page).image_hash)
        }));
        assert_eq!(index.len(), 8);
        // A brand page queried against the index is its own nearest
        // neighbor at distance 0.
        let paypal = reg.by_label("paypal").unwrap();
        let hash = analyzer
            .analyze(&pages::brand_login_page(paypal))
            .image_hash;
        let m = index.nearest_brand(&hash).expect("non-empty index");
        assert_eq!((m.brand, m.distance), (paypal.id, 0));
        assert!(index
            .brands_within(&hash, 0)
            .iter()
            .any(|m| m.brand == paypal.id));
        // The probe ledger reconciles.
        let snap = index.telemetry().snapshot();
        assert!(squatphi_telemetry::invariants::phash_index_invariants().all_hold(&snap));
        assert_eq!(snap.u64_or_zero("phash.index.inserts"), 8);
    }

    #[test]
    fn empty_brand_index_returns_none() {
        let index = BrandHashIndex::build(std::iter::empty());
        assert!(index.is_empty());
        assert_eq!(index.nearest_brand(&ImageHash(1)), None);
        assert!(index.brands_within(&ImageHash(1), 64).is_empty());
    }
}
