//! Classifier reinforcement — the paper's stated follow-up (§6.1):
//! *"A potential way of improvement is to feed the newly confirmed
//! phishing pages back to the training data to re-enforce the classifier
//! training (future work)."*
//!
//! After the manual-verification pass, two new labeled sets exist:
//! confirmed in-the-wild phishing pages (fresh positives drawn from the
//! *squatting* distribution, which the feed-based ground truth barely
//! covers) and rejected detections (hard negatives — the exact pages the
//! current model gets wrong). This module augments the training set with
//! both and refits.
//!
//! Both the augmentation and the wild-error sweep re-extract pages the
//! pipeline already analyzed, so with the shared
//! [`crate::artifact::PageAnalyzer`] they run entirely on cache hits —
//! no page is rendered or OCR'd twice.

use crate::features::FeatureExtractor;
use crate::pipeline::PipelineResult;
use crate::train;
use squatphi_ml::{Classifier, Dataset, RandomForest};
use squatphi_web::Device;

/// Outcome of one reinforcement round.
pub struct ReinforceOutcome {
    /// The refitted model.
    pub model: RandomForest,
    /// Confirmed pages added as positives.
    pub added_positives: usize,
    /// Rejected detections added as negatives.
    pub added_negatives: usize,
}

/// Builds the augmented dataset and refits the production forest.
///
/// `base` is the original ground-truth dataset the pipeline trained on;
/// the augmentation pulls the verified in-the-wild pages out of
/// `result`'s crawl captures.
pub fn reinforce(
    result: &PipelineResult,
    extractor: &FeatureExtractor,
    base: &Dataset,
    threads: usize,
    seed: u64,
) -> ReinforceOutcome {
    let mut pages: Vec<(&str, bool)> = Vec::new();

    // Index crawl captures by domain for page lookup.
    let by_domain: std::collections::HashMap<&str, &squatphi_crawler::CrawlRecord> = result
        .crawl
        .iter()
        .map(|r| (r.domain.as_str(), r))
        .collect();

    let mut added_pos = 0usize;
    let mut added_neg = 0usize;
    for device in [Device::Web, Device::Mobile] {
        let detections = match device {
            Device::Web => &result.web_detections,
            Device::Mobile => &result.mobile_detections,
        };
        for d in detections {
            let Some(record) = by_domain.get(d.domain.as_str()) else {
                continue;
            };
            let cap = match device {
                Device::Web => record.web.as_ref(),
                Device::Mobile => record.mobile.as_ref(),
            };
            let Some(cap) = cap else { continue };
            if cap.html.is_empty() {
                continue;
            }
            pages.push((cap.html.as_str(), d.confirmed));
            if d.confirmed {
                added_pos += 1;
            } else {
                added_neg += 1;
            }
        }
    }

    let augmentation = extractor.build_dataset(&pages, threads);
    let mut combined = Dataset::new(base.dim());
    for (x, y) in base.iter() {
        combined.push(x.clone(), y);
    }
    for (x, y) in augmentation.iter() {
        combined.push(x.clone(), y);
    }
    let model = train::fit_final_model(&combined, seed);
    ReinforceOutcome {
        model,
        added_positives: added_pos,
        added_negatives: added_neg,
    }
}

/// Counts in-the-wild classification errors of `model` against the
/// world's ground truth (flagged-but-benign plus missed-live-phishing),
/// for before/after comparisons.
pub fn wild_error_count(
    result: &PipelineResult,
    extractor: &FeatureExtractor,
    model: &RandomForest,
    threads: usize,
) -> usize {
    let mut errors = 0usize;
    for device in [Device::Web, Device::Mobile] {
        let captures: Vec<(&squatphi_crawler::CrawlRecord, &str)> = result
            .crawl
            .iter()
            .filter_map(|r| {
                let cap = match device {
                    Device::Web => r.web.as_ref(),
                    Device::Mobile => r.mobile.as_ref(),
                }?;
                (!cap.html.is_empty()).then_some((r, cap.html.as_str()))
            })
            .collect();
        let htmls: Vec<&str> = captures.iter().map(|(_, h)| *h).collect();
        let vectors = extractor.extract_batch(&htmls, threads);
        for ((record, _), v) in captures.iter().zip(vectors) {
            let predicted = model.score(&v) >= 0.5;
            let truth = result
                .world
                .site(&record.domain)
                .map(|s| match &s.behavior {
                    squatphi_web::SiteBehavior::Phishing(p) => {
                        p.lifetime.phishing_live(0)
                            && !matches!(
                                (p.cloaking, device),
                                (squatphi_web::Cloaking::MobileOnly, Device::Web)
                                    | (squatphi_web::Cloaking::WebOnly, Device::Mobile)
                            )
                    }
                    _ => false,
                })
                .unwrap_or(false);
            if predicted != truth {
                errors += 1;
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunOptions, SimConfig, SquatPhi};

    #[test]
    fn reinforcement_does_not_hurt_and_usually_helps() {
        let config = SimConfig::tiny();
        let result =
            SquatPhi::try_run(&config, &RunOptions::default()).expect("tiny pipeline runs clean");

        // Rebuild the base ground-truth set the pipeline trained on.
        let top8 = result.feed.top8(&result.registry);
        let pages: Vec<(&str, bool)> = top8
            .iter()
            .map(|e| (e.html.as_str(), e.still_phishing))
            .collect();
        let base = result.extractor.build_dataset(&pages, config.threads);

        let before = wild_error_count(&result, &result.extractor, &result.model, config.threads);
        let out = reinforce(&result, &result.extractor, &base, config.threads, 5);
        assert!(out.added_positives > 0, "no confirmed pages to feed back");
        let after = wild_error_count(&result, &result.extractor, &out.model, config.threads);
        // In-sample by construction, so the reinforced model must not be
        // worse on the wild set; typically it fixes the FP/FN stragglers.
        assert!(
            after <= before,
            "reinforcement increased wild errors: {before} -> {after}"
        );
    }
}
