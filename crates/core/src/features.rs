//! Page feature extraction (paper §5.1-5.2).
//!
//! Three feature families, all brand-agnostic so the classifier learns
//! "the nature of phishing" rather than per-brand templates:
//!
//! * **image-based OCR features** — the page is rendered and the
//!   screenshot OCR'd; recognized tokens are spell-corrected and embedded
//!   (defeats string/code obfuscation: whatever the user *sees* is
//!   captured),
//! * **text-based lexical features** — tokens from `h*`, `p`, `a` and
//!   `title` tags (cheap, catches non-evasive pages),
//! * **form-based features** — tokens from `type` / `name` /
//!   `placeholder` / submit attributes plus numeric counts (form count,
//!   password inputs, text inputs).

use squatphi_html::{extract, js, parse};
use squatphi_ml::Dataset;
use squatphi_nlp::{remove_stopwords, tokenize, FeatureSpace, SparseVec, SpellChecker};
use squatphi_ocr::{recognize, OcrConfig};
use squatphi_render::{render_page, RenderOptions};
use squatphi_squat::BrandRegistry;

/// Keywords beyond the spell-check dictionary that frequently appear in
/// ground-truth phishing pages (§5.2 builds this list from the training
/// data; we curate it from our page generators' vocabulary plus generic
/// phishing material so it stays brand-agnostic).
const PHISH_KEYWORDS: &[&str] = &[
    "alert",
    "access",
    "authenticate",
    "bonus",
    "call",
    "center",
    "critical",
    "deposit",
    "device",
    "direct",
    "driver",
    "expired",
    "gift",
    "infected",
    "instant",
    "locked",
    "loads",
    "message",
    "official",
    "panel",
    "paycheck",
    "payroll",
    "pickup",
    "portal",
    "recover",
    "remote",
    "required",
    "restore",
    "search",
    "session",
    "sponsored",
    "ssn",
    "social",
    "statement",
    "suspend",
    "unusual",
    "validate",
    "virus",
    "waiting",
    "warning",
];

/// Extracts sparse feature vectors from crawled pages.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    space: FeatureSpace,
    spell: SpellChecker,
    ocr: OcrConfig,
    render: RenderOptions,
}

/// Names of the numeric feature dimensions.
const NUMERIC: &[&str] = &[
    "form_count",
    "password_inputs",
    "text_inputs",
    "submit_controls",
    "js_obfuscated",
];

impl FeatureExtractor {
    /// Builds the extractor: the feature space covers the phishing
    /// keyword list, the task dictionary, and every brand label
    /// (the paper's 987-dimension embedding).
    pub fn new(registry: &BrandRegistry) -> Self {
        let brand_labels: Vec<String> = registry.brands().iter().map(|b| b.label.clone()).collect();
        let keywords = squatphi_nlp::spell::BASE_DICTIONARY
            .iter()
            .copied()
            .chain(PHISH_KEYWORDS.iter().copied())
            .map(String::from)
            .chain(brand_labels.iter().cloned());
        FeatureExtractor {
            space: FeatureSpace::new(keywords, NUMERIC),
            spell: SpellChecker::new(brand_labels),
            ocr: OcrConfig::default(),
            render: RenderOptions::default(),
        }
    }

    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        self.space.dim()
    }

    /// The underlying feature space (read-only).
    pub fn space(&self) -> &FeatureSpace {
        &self.space
    }

    /// Extracts the full feature vector for one page's HTML.
    pub fn extract(&self, html: &str) -> SparseVec {
        let doc = parse(html);
        let mut v = SparseVec::new();

        // Lexical features from HTML text.
        let text = extract::extract_text(&doc);
        let lexical_tokens = remove_stopwords(tokenize(&text.joined_lower()));
        self.embed_tokens(&lexical_tokens, &mut v);

        // Form features.
        let forms = extract::extract_forms(&doc);
        let mut password_inputs = 0usize;
        let mut text_inputs = 0usize;
        let mut submit_controls = 0usize;
        let mut form_tokens: Vec<String> = Vec::new();
        for f in &forms {
            for t in &f.input_types {
                match t.as_str() {
                    "password" => password_inputs += 1,
                    "submit" => submit_controls += 1,
                    _ => text_inputs += 1,
                }
                form_tokens.extend(tokenize(t));
            }
            for s in f
                .input_names
                .iter()
                .chain(&f.placeholders)
                .chain(&f.submit_texts)
            {
                form_tokens.extend(tokenize(s));
            }
        }
        let form_tokens = remove_stopwords(form_tokens);
        self.embed_tokens(&form_tokens, &mut v);

        // OCR features from the rendered screenshot, spell-corrected.
        let screenshot = render_page(&doc, &self.render);
        let ocr_text = recognize(&screenshot, &self.ocr).joined();
        let ocr_tokens = self
            .spell
            .correct_all(&remove_stopwords(tokenize(&ocr_text)));
        self.embed_tokens(&ocr_tokens, &mut v);

        // Numeric features.
        let indicators = js::scan_document(&doc);
        let numeric = [
            forms.len() as f64,
            password_inputs as f64,
            text_inputs as f64,
            submit_controls as f64,
            f64::from(indicators.is_obfuscated()),
        ];
        for (name, value) in NUMERIC.iter().zip(numeric) {
            if value != 0.0 {
                // NUMERIC is the same constant the FeatureSpace
                // constructor registered, so lookup cannot miss.
                let dim = self
                    .space
                    .numeric(name)
                    .expect("every NUMERIC name is registered at FeatureSpace construction");
                v.add(dim, value);
            }
        }
        v
    }

    fn embed_tokens(&self, tokens: &[String], v: &mut SparseVec) {
        for t in tokens {
            if let Some(i) = self.space.keyword(t) {
                v.add(i, 1.0);
            }
        }
    }

    /// Extracts features for many pages in parallel.
    pub fn extract_batch(&self, htmls: &[&str], threads: usize) -> Vec<SparseVec> {
        let threads = threads.max(1).min(htmls.len().max(1));
        let chunk = htmls.len().div_ceil(threads).max(1);
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for part in htmls.chunks(chunk) {
                handles.push(
                    s.spawn(move |_| part.iter().map(|h| self.extract(h)).collect::<Vec<_>>()),
                );
            }
            handles
                .into_iter()
                .flat_map(|h| {
                    // extract() is panic-free on arbitrary HTML; a panic
                    // here is a bug worth surfacing, not swallowing.
                    h.join()
                        .expect("feature worker panicked; its chunk of vectors is lost")
                })
                .collect()
        })
        .expect("feature worker panicked inside the crossbeam scope")
    }

    /// Builds a labeled dataset from (html, label) pairs.
    pub fn build_dataset(&self, pages: &[(&str, bool)], threads: usize) -> Dataset {
        let htmls: Vec<&str> = pages.iter().map(|(h, _)| *h).collect();
        let vecs = self.extract_batch(&htmls, threads);
        let mut data = Dataset::new(self.dim());
        for (v, (_, y)) in vecs.into_iter().zip(pages) {
            data.push(v, *y);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
    use squatphi_web::pages;

    fn extractor() -> (FeatureExtractor, BrandRegistry) {
        let reg = BrandRegistry::with_size(10);
        (FeatureExtractor::new(&reg), reg)
    }

    fn profile(string_obf: bool) -> PhishingProfile {
        PhishingProfile {
            brand: 0,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: 1,
            string_obfuscation: string_obf,
            code_obfuscation: false,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        }
    }

    #[test]
    fn phishing_page_lights_password_features() {
        let (fx, reg) = extractor();
        let brand = reg.by_label("paypal").unwrap();
        let html = pages::phishing_page(brand, &profile(false), "paypal-cash.com", 1);
        let v = fx.extract(&html);
        let pw_dim = fx.space().numeric("password_inputs").unwrap();
        assert!(v.get(pw_dim) >= 1.0, "password inputs not counted");
        let kw = fx.space().keyword("password").unwrap();
        assert!(v.get(kw) >= 1.0, "password keyword missing");
    }

    #[test]
    fn ocr_recovers_brand_despite_string_obfuscation() {
        let (fx, reg) = extractor();
        let brand = reg.by_label("paypal").unwrap();
        // Image-logo variant (odd seed): brand only in pixels.
        let html = pages::phishing_page(brand, &profile(true), "paypal-cash.com", 3);
        let v = fx.extract(&html);
        let brand_dim = fx.space().keyword("paypal").unwrap();
        assert!(
            v.get(brand_dim) >= 1.0,
            "OCR + spell-check failed to recover the brand keyword"
        );
    }

    #[test]
    fn benign_page_has_sparse_features() {
        let (fx, _) = extractor();
        let html = pages::benign_page("pepper-garden.com", 1);
        let v = fx.extract(&html);
        let pw_dim = fx.space().numeric("password_inputs").unwrap();
        assert_eq!(v.get(pw_dim), 0.0);
        let form_dim = fx.space().numeric("form_count").unwrap();
        assert_eq!(v.get(form_dim), 0.0);
    }

    #[test]
    fn confusing_benign_has_forms_but_no_password() {
        let (fx, _) = extractor();
        let html = pages::confusing_benign_page("x.com", Some("paypal"), 0);
        let v = fx.extract(&html);
        let form_dim = fx.space().numeric("form_count").unwrap();
        let pw_dim = fx.space().numeric("password_inputs").unwrap();
        assert!(v.get(form_dim) >= 1.0);
        assert_eq!(v.get(pw_dim), 0.0);
    }

    #[test]
    fn batch_matches_single() {
        let (fx, _) = extractor();
        let pages_html = [
            pages::benign_page("a.com", 1),
            pages::parked_page("b.com"),
            pages::confusing_benign_page("c.com", None, 2),
        ];
        let refs: Vec<&str> = pages_html.iter().map(String::as_str).collect();
        let batch = fx.extract_batch(&refs, 3);
        for (b, h) in batch.iter().zip(&refs) {
            assert_eq!(*b, fx.extract(h));
        }
    }

    #[test]
    fn build_dataset_labels() {
        let (fx, _) = extractor();
        let a = pages::benign_page("a.com", 1);
        let b = pages::parked_page("b.com");
        let data = fx.build_dataset(&[(a.as_str(), false), (b.as_str(), true)], 2);
        assert_eq!(data.len(), 2);
        assert!(!data.y(0));
        assert!(data.y(1));
        assert_eq!(data.dim(), fx.dim());
    }

    #[test]
    fn dimension_is_substantial() {
        let reg = BrandRegistry::paper();
        let fx = FeatureExtractor::new(&reg);
        // Paper: 987 dims. Ours: dictionary + keywords + 702 brands + 5.
        assert!(fx.dim() > 700, "dim {}", fx.dim());
        assert!(fx.dim() < 1100, "dim {}", fx.dim());
    }
}
