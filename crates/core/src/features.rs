//! Page feature extraction (paper §5.1-5.2).
//!
//! Three feature families, all brand-agnostic so the classifier learns
//! "the nature of phishing" rather than per-brand templates:
//!
//! * **image-based OCR features** — the page is rendered and the
//!   screenshot OCR'd; recognized tokens are spell-corrected and embedded
//!   (defeats string/code obfuscation: whatever the user *sees* is
//!   captured),
//! * **text-based lexical features** — tokens from `h*`, `p`, `a` and
//!   `title` tags (cheap, catches non-evasive pages),
//! * **form-based features** — tokens from `type` / `name` /
//!   `placeholder` / submit attributes plus numeric counts (form count,
//!   password inputs, text inputs).
//!
//! The expensive derivation (parse → render → OCR) lives in
//! [`crate::artifact::PageAnalyzer`]; this module only *embeds* the
//! resulting [`PageArtifact`] into the feature space. Spell correction
//! happens here rather than in the artifact because it depends on the
//! extractor's brand dictionary.

use crate::artifact::{PageAnalyzer, PageArtifact};
use squatphi_ml::Dataset;
use squatphi_nlp::{FeatureSpace, SparseVec, SpellChecker};
use squatphi_squat::BrandRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Keywords beyond the spell-check dictionary that frequently appear in
/// ground-truth phishing pages (§5.2 builds this list from the training
/// data; we curate it from our page generators' vocabulary plus generic
/// phishing material so it stays brand-agnostic).
const PHISH_KEYWORDS: &[&str] = &[
    "alert",
    "access",
    "authenticate",
    "bonus",
    "call",
    "center",
    "critical",
    "deposit",
    "device",
    "direct",
    "driver",
    "expired",
    "gift",
    "infected",
    "instant",
    "locked",
    "loads",
    "message",
    "official",
    "panel",
    "paycheck",
    "payroll",
    "pickup",
    "portal",
    "recover",
    "remote",
    "required",
    "restore",
    "search",
    "session",
    "sponsored",
    "ssn",
    "social",
    "statement",
    "suspend",
    "unusual",
    "validate",
    "virus",
    "waiting",
    "warning",
];

/// Extracts sparse feature vectors from crawled pages. Clones share the
/// underlying [`PageAnalyzer`] (and therefore its cache and metrics).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    space: FeatureSpace,
    spell: SpellChecker,
    analyzer: Arc<PageAnalyzer>,
}

/// Names of the numeric feature dimensions.
const NUMERIC: &[&str] = &[
    "form_count",
    "password_inputs",
    "text_inputs",
    "submit_controls",
    "js_obfuscated",
];

impl FeatureExtractor {
    /// Builds the extractor: the feature space covers the phishing
    /// keyword list, the task dictionary, and every brand label
    /// (the paper's 987-dimension embedding). Page analysis runs through
    /// a fresh content-addressed cache.
    pub fn new(registry: &BrandRegistry) -> Self {
        Self::with_analyzer(registry, Arc::new(PageAnalyzer::new()))
    }

    /// Same feature space, but with the analysis cache disabled — every
    /// page runs the full parse/render/OCR derivation. The byte-equality
    /// tests compare this against the cached path.
    pub fn uncached(registry: &BrandRegistry) -> Self {
        Self::with_analyzer(registry, Arc::new(PageAnalyzer::uncached()))
    }

    /// Builds the extractor around an existing analyzer, so several
    /// consumers (feature extraction, evasion measurement, experiments)
    /// can share one cache.
    pub fn with_analyzer(registry: &BrandRegistry, analyzer: Arc<PageAnalyzer>) -> Self {
        let brand_labels: Vec<String> = registry.brands().iter().map(|b| b.label.clone()).collect();
        let keywords = squatphi_nlp::spell::BASE_DICTIONARY
            .iter()
            .copied()
            .chain(PHISH_KEYWORDS.iter().copied())
            .map(String::from)
            .chain(brand_labels.iter().cloned());
        FeatureExtractor {
            space: FeatureSpace::new(keywords, NUMERIC),
            spell: SpellChecker::new(brand_labels),
            analyzer,
        }
    }

    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        self.space.dim()
    }

    /// The underlying feature space (read-only).
    pub fn space(&self) -> &FeatureSpace {
        &self.space
    }

    /// The shared page analyzer (for metrics and direct artifact access).
    pub fn analyzer(&self) -> &PageAnalyzer {
        &self.analyzer
    }

    /// Extracts the full feature vector for one page's HTML, analyzing
    /// (or fetching from cache) as needed.
    pub fn extract(&self, html: &str) -> SparseVec {
        self.extract_from_artifact(&self.analyzer.analyze(html))
    }

    /// Embeds an already-analyzed page into the feature space.
    pub fn extract_from_artifact(&self, a: &PageArtifact) -> SparseVec {
        let started = Instant::now();
        let mut v = SparseVec::new();

        // Lexical features from HTML text.
        self.embed_tokens(&a.lexical_tokens, &mut v);

        // Form features.
        self.embed_tokens(&a.form_tokens, &mut v);

        // OCR features from the rendered screenshot, spell-corrected
        // against this extractor's brand dictionary.
        let ocr_tokens = self.spell.correct_all(&a.ocr_tokens);
        self.embed_tokens(&ocr_tokens, &mut v);

        // Numeric features.
        let numeric = [
            a.form_count as f64,
            a.password_inputs as f64,
            a.text_inputs as f64,
            a.submit_controls as f64,
            f64::from(a.js.is_obfuscated()),
        ];
        for (name, value) in NUMERIC.iter().zip(numeric) {
            if value != 0.0 {
                // NUMERIC is the same constant the FeatureSpace
                // constructor registered, so lookup cannot miss.
                let dim = self
                    .space
                    .numeric(name)
                    .expect("every NUMERIC name is registered at FeatureSpace construction");
                v.add(dim, value);
            }
        }
        self.analyzer.note_embed(started.elapsed());
        v
    }

    fn embed_tokens(&self, tokens: &[String], v: &mut SparseVec) {
        for t in tokens {
            if let Some(i) = self.space.keyword(t) {
                v.add(i, 1.0);
            }
        }
    }

    /// Analyzes many pages in parallel (stage 1 of the batch executor).
    /// Workers pull indices from a shared cursor, so a run of cache hits
    /// on one thread never stalls the others the way fixed chunking did.
    pub fn analyze_batch(&self, htmls: &[&str], threads: usize) -> Vec<Arc<PageArtifact>> {
        let threads = threads.max(1).min(htmls.len().max(1));
        if threads <= 1 {
            return htmls.iter().map(|h| self.analyzer.analyze(h)).collect();
        }
        let cursor = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|_| {
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= htmls.len() {
                                break;
                            }
                            mine.push((i, self.analyzer.analyze(htmls[i])));
                        }
                        mine
                    })
                })
                .collect();
            let mut slots: Vec<Option<Arc<PageArtifact>>> = vec![None; htmls.len()];
            for h in handles {
                // analyze() is panic-free on arbitrary HTML; a panic here
                // is a bug worth surfacing, not swallowing.
                for (i, a) in h
                    .join()
                    .expect("analysis worker panicked; its artifacts are lost")
                {
                    slots[i] = Some(a);
                }
            }
            slots
                .into_iter()
                .map(|s| s.expect("the cursor hands out every index exactly once"))
                .collect()
        })
        .expect("analysis worker panicked inside the crossbeam scope")
    }

    /// Extracts features for many pages: parallel analysis (stage 1),
    /// then sequential embedding (stage 2 — pure in-memory lookups, far
    /// cheaper than rendering, and sequential keeps it deterministic).
    pub fn extract_batch(&self, htmls: &[&str], threads: usize) -> Vec<SparseVec> {
        self.analyze_batch(htmls, threads)
            .iter()
            .map(|a| self.extract_from_artifact(a))
            .collect()
    }

    /// Builds a labeled dataset from (html, label) pairs.
    pub fn build_dataset(&self, pages: &[(&str, bool)], threads: usize) -> Dataset {
        let htmls: Vec<&str> = pages.iter().map(|(h, _)| *h).collect();
        let vecs = self.extract_batch(&htmls, threads);
        let mut data = Dataset::new(self.dim());
        for (v, (_, y)) in vecs.into_iter().zip(pages) {
            data.push(v, *y);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
    use squatphi_web::pages;

    fn extractor() -> (FeatureExtractor, BrandRegistry) {
        let reg = BrandRegistry::with_size(10);
        (FeatureExtractor::new(&reg), reg)
    }

    fn profile(string_obf: bool) -> PhishingProfile {
        PhishingProfile {
            brand: 0,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: 1,
            string_obfuscation: string_obf,
            code_obfuscation: false,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        }
    }

    #[test]
    fn phishing_page_lights_password_features() {
        let (fx, reg) = extractor();
        let brand = reg.by_label("paypal").unwrap();
        let html = pages::phishing_page(brand, &profile(false), "paypal-cash.com", 1);
        let v = fx.extract(&html);
        let pw_dim = fx.space().numeric("password_inputs").unwrap();
        assert!(v.get(pw_dim) >= 1.0, "password inputs not counted");
        let kw = fx.space().keyword("password").unwrap();
        assert!(v.get(kw) >= 1.0, "password keyword missing");
    }

    #[test]
    fn ocr_recovers_brand_despite_string_obfuscation() {
        let (fx, reg) = extractor();
        let brand = reg.by_label("paypal").unwrap();
        // Image-logo variant (odd seed): brand only in pixels.
        let html = pages::phishing_page(brand, &profile(true), "paypal-cash.com", 3);
        let v = fx.extract(&html);
        let brand_dim = fx.space().keyword("paypal").unwrap();
        assert!(
            v.get(brand_dim) >= 1.0,
            "OCR + spell-check failed to recover the brand keyword"
        );
    }

    #[test]
    fn benign_page_has_sparse_features() {
        let (fx, _) = extractor();
        let html = pages::benign_page("pepper-garden.com", 1);
        let v = fx.extract(&html);
        let pw_dim = fx.space().numeric("password_inputs").unwrap();
        assert_eq!(v.get(pw_dim), 0.0);
        let form_dim = fx.space().numeric("form_count").unwrap();
        assert_eq!(v.get(form_dim), 0.0);
    }

    #[test]
    fn confusing_benign_has_forms_but_no_password() {
        let (fx, _) = extractor();
        let html = pages::confusing_benign_page("x.com", Some("paypal"), 0);
        let v = fx.extract(&html);
        let form_dim = fx.space().numeric("form_count").unwrap();
        let pw_dim = fx.space().numeric("password_inputs").unwrap();
        assert!(v.get(form_dim) >= 1.0);
        assert_eq!(v.get(pw_dim), 0.0);
    }

    #[test]
    fn batch_matches_single() {
        let (fx, _) = extractor();
        let pages_html = [
            pages::benign_page("a.com", 1),
            pages::parked_page("b.com"),
            pages::confusing_benign_page("c.com", None, 2),
        ];
        let refs: Vec<&str> = pages_html.iter().map(String::as_str).collect();
        let batch = fx.extract_batch(&refs, 3);
        for (b, h) in batch.iter().zip(&refs) {
            assert_eq!(*b, fx.extract(h));
        }
    }

    #[test]
    fn duplicate_html_costs_one_analysis() {
        let (fx, _) = extractor();
        // Eight byte-identical captures — the detect_device web+mobile
        // situation for uncloaked template sites.
        let page = pages::parked_page("dup.example.com");
        let refs: Vec<&str> = vec![page.as_str(); 8];
        let batch = fx.extract_batch(&refs, 1);
        let m = fx.analyzer().metrics();
        assert_eq!(m.pages, 8);
        assert_eq!(m.cache_misses, 1, "identical HTML must be analyzed once");
        assert_eq!(m.cache_hits, 7);
        assert!(m.reconciles());
        for v in &batch[1..] {
            assert_eq!(*v, batch[0]);
        }
    }

    #[test]
    fn cached_and_uncached_vectors_match() {
        let reg = BrandRegistry::with_size(10);
        let cached = FeatureExtractor::new(&reg);
        let uncached = FeatureExtractor::uncached(&reg);
        let brand = reg.by_label("paypal").unwrap();
        let corpus = [
            pages::phishing_page(brand, &profile(false), "paypal-cash.com", 1),
            pages::benign_page("a.com", 7),
            pages::parked_page("b.com"),
            pages::benign_page("a.com", 7), // repeat → cache hit
        ];
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        assert_eq!(
            cached.extract_batch(&refs, 2),
            uncached.extract_batch(&refs, 2),
            "cache must be invisible in the feature vectors"
        );
        assert!(cached.analyzer().metrics().cache_hits >= 1);
        assert_eq!(uncached.analyzer().metrics().cache_hits, 0);
    }

    #[test]
    fn extract_batch_is_deterministic_across_thread_counts() {
        let (fx, _) = extractor();
        let corpus: Vec<String> = (0..24)
            .map(|i| match i % 3 {
                0 => pages::benign_page("a.com", i / 3),
                1 => pages::parked_page("b.com"),
                _ => pages::confusing_benign_page("c.com", Some("paypal"), i / 3),
            })
            .collect();
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        let single = fx.extract_batch(&refs, 1);
        for threads in [2, 8] {
            assert_eq!(
                fx.extract_batch(&refs, threads),
                single,
                "{threads}-thread batch diverged from sequential"
            );
        }
    }

    #[test]
    fn stage_nanos_fit_inside_wall_clock() {
        let (fx, _) = extractor();
        let corpus: Vec<String> = (0..6).map(|i| pages::benign_page("t.com", i)).collect();
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        let started = std::time::Instant::now();
        fx.extract_batch(&refs, 1);
        let wall = started.elapsed().as_nanos() as u64;
        let m = fx.analyzer().metrics();
        assert!(m.stage_nanos() > 0, "stage timers never ticked");
        assert!(
            m.stage_nanos() <= wall,
            "single-threaded stage nanos {} exceed wall {}",
            m.stage_nanos(),
            wall
        );
    }

    #[test]
    fn build_dataset_labels() {
        let (fx, _) = extractor();
        let a = pages::benign_page("a.com", 1);
        let b = pages::parked_page("b.com");
        let data = fx.build_dataset(&[(a.as_str(), false), (b.as_str(), true)], 2);
        assert_eq!(data.len(), 2);
        assert!(!data.y(0));
        assert!(data.y(1));
        assert_eq!(data.dim(), fx.dim());
    }

    #[test]
    fn dimension_is_substantial() {
        let reg = BrandRegistry::paper();
        let fx = FeatureExtractor::new(&reg);
        // Paper: 987 dims. Ours: dictionary + keywords + 702 brands + 5.
        assert!(fx.dim() > 700, "dim {}", fx.dim());
        assert!(fx.dim() < 1100, "dim {}", fx.dim());
    }
}
