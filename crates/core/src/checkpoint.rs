//! Stage checkpointing: crash-safe persistence of scan/crawl/train
//! outputs so `--resume` replays completed stages from disk with
//! byte-identical final output.
//!
//! Persistence routes through [`squatphi_durability::DurableStore`]: one
//! generational, checksummed state per stage (`scan.g<N>.ckpt`,
//! `crawl.g<N>.ckpt`, `train.g<N>.ckpt`) in the `--checkpoint-dir`, with
//! the latest two generations kept. The store is bound to a
//! `config_hash` — a seeded content hash over the canonical
//! [`SimConfig`] *and* the fault plan (worker threads, the
//! analysis-cache toggle and the *disk*-fault plan are excluded: all
//! output-neutral) — so a checkpoint written under another config
//! classifies as **stale** and is silently recomputed (surfaced in the
//! supervision report's `invalidated_checkpoints`); resuming under a
//! changed config can never splice incompatible stage outputs together.
//!
//! Damage is classified, never papered over: a corrupt or torn newest
//! generation falls back to the previous one ([`Loaded::Recovered`],
//! surfaced in the supervision report), and a store whose every
//! generation is damaged is a structured
//! [`CheckpointError::Unrecoverable`] — state that was durably written
//! and then lost must not silently recompute. Bodies are the hand-rolled
//! JSON codecs below; floats round-trip losslessly as `f64::to_bits`
//! integers, which is what makes resumed runs *byte-identical* rather
//! than merely close.
//!
//! The world, feed and feature extractor are deliberately **not**
//! checkpointed: they rebuild deterministically from the config, and the
//! crawl/train checkpoints capture everything downstream stages consume.

use crate::artifact::content_key;
use crate::config::SimConfig;
use crate::fault::PipelineFaultPlan;
use crate::supervise::PipelineStage;
use crate::train::{EvalReport, ModelEval};
use squatphi_crawler::{CrawlRecord, CrawlStats, PageCapture, RedirectClass, TransportSnapshot};
use squatphi_dnsdb::{ScanMetrics, ScanOutcome, SquatRecord, WorkerMetrics};
use squatphi_domain::DomainName;
use squatphi_durability::{
    render_classes, DiskFaultPlan, DurabilityStats, DurableStore, FaultVfs, LoadOutcome, RealVfs,
    StoreError, Vfs,
};
use squatphi_ml::{Metrics, RandomForest, RocCurve};
use squatphi_squat::SquatType;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Checkpoint format version; bumped on any codec change so old files
/// invalidate instead of mis-decoding.
const VERSION: u64 = 2;

/// Seed of the config-hash content key.
const HASH_SEED: u64 = 0xc4ec_4b01;

/// Checkpoint persistence failure. Stale checkpoints are recomputed, and
/// damage with a surviving older generation is recovered — but a store
/// whose every generation is damaged is a structured error, never a
/// silent recompute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint directory failed.
    Io {
        /// Offending path.
        path: String,
        /// Stringified OS error.
        message: String,
    },
    /// Every on-disk generation of a checkpoint is damaged: state that
    /// was durably written has been lost, and resuming from it would
    /// silently recompute over the damage.
    Unrecoverable {
        /// The checkpoint name (stage name or `watch`).
        name: String,
        /// The checkpoint directory.
        dir: String,
        /// Per-generation damage classification, newest first
        /// (e.g. `g4 torn, g3 corrupt_body`).
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            CheckpointError::Unrecoverable { name, dir, detail } => write!(
                f,
                "checkpoint {name:?} in {dir} is unrecoverable ({detail}); \
                 delete its generation files or rerun without --resume to recompute"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Outcome of a checkpoint read.
pub(crate) enum Loaded<T> {
    /// No checkpoint on disk (or `--resume` not requested).
    Missing,
    /// A checkpoint exists but was written under a different config or
    /// format version; the stage recomputes and overwrites it.
    Stale,
    /// The newest generation verified and decoded.
    Value(T),
    /// The newest generation(s) were damaged; an older one verified. The
    /// string is the skipped-damage classification, newest first.
    Recovered(T, String),
}

/// Maps a store-level failure into the checkpoint error taxonomy.
pub(crate) fn store_err(e: StoreError) -> CheckpointError {
    match e {
        StoreError::Io { path, message } => CheckpointError::Io { path, message },
    }
}

/// The write path every durable state in the workspace shares: the real
/// filesystem, or the same wrapped in a seeded [`FaultVfs`] when a
/// disk-fault plan is active.
pub(crate) fn vfs_for(disk_faults: &DiskFaultPlan) -> Arc<dyn Vfs> {
    if disk_faults.is_none() {
        Arc::new(RealVfs)
    } else {
        Arc::new(FaultVfs::new(Arc::new(RealVfs), *disk_faults))
    }
}

/// Canonical config hash binding checkpoints to the run that wrote them.
pub(crate) fn config_hash(config: &SimConfig, faults: &PipelineFaultPlan) -> u64 {
    let canon = format!(
        "v{VERSION}|snap:{},{},{},{}|world:{},{},{},{},{},{},{}|feed:{},{}|brands:{}|benign:{}|cv:{}|seed:{}|faults:{}",
        config.snapshot.benign_records,
        config.snapshot.squatting_records,
        config.snapshot.subdomain_fraction.to_bits(),
        config.snapshot.seed,
        config.world.live_fraction.to_bits(),
        config.world.redirect_original.to_bits(),
        config.world.redirect_market.to_bits(),
        config.world.redirect_other.to_bits(),
        config.world.phishing_domains,
        config.world.confusing_fraction.to_bits(),
        config.world.seed,
        config.feed.total_urls,
        config.feed.seed,
        config.brands,
        config.sampled_benign,
        config.cv_folds,
        config.seed,
        faults.canonical(),
    );
    content_key(HASH_SEED, canon.as_bytes())
}

/// One run's checkpoint directory, bound to its config hash. A thin
/// stage-codec layer over the workspace-wide [`DurableStore`]: the store
/// owns atomicity, checksums, generations and damage classification;
/// this type owns only what a stage body *means*.
pub(crate) struct CheckpointStore {
    store: DurableStore,
    hash: u64,
}

impl CheckpointStore {
    pub(crate) fn open(
        dir: &Path,
        config: &SimConfig,
        faults: &PipelineFaultPlan,
        disk_faults: &DiskFaultPlan,
    ) -> Result<Self, CheckpointError> {
        let hash = config_hash(config, faults);
        let store = DurableStore::open(dir, hash, vfs_for(disk_faults)).map_err(store_err)?;
        Ok(CheckpointStore { store, hash })
    }

    /// The durable-state ledger for this run's checkpoint directory.
    pub(crate) fn stats(&self) -> DurabilityStats {
        self.store.stats()
    }

    /// Durably commits one stage body as the next generation.
    fn save(&self, stage: PipelineStage, body: &str) -> Result<(), CheckpointError> {
        self.store
            .save(stage.name(), body)
            .map(|_generation| ())
            .map_err(store_err)
    }

    /// Loads the newest verifiable generation of a stage, decoding the
    /// JSON body with `decode` (shape failures classify as corrupt and
    /// fall back to the previous generation).
    fn load_stage<T>(
        &self,
        stage: PipelineStage,
        decode: impl Fn(&json::Value) -> Option<T>,
    ) -> Result<Loaded<T>, CheckpointError> {
        let outcome = self
            .store
            .load_with(stage.name(), |body| {
                json::parse(body).ok().and_then(|v| decode(&v))
            })
            .map_err(store_err)?;
        Ok(match outcome {
            LoadOutcome::Missing => Loaded::Missing,
            LoadOutcome::Stale { .. } => Loaded::Stale,
            LoadOutcome::Valid(v) => Loaded::Value(v),
            LoadOutcome::Recovered { value, skipped, .. } => {
                Loaded::Recovered(value, render_classes(&skipped))
            }
            LoadOutcome::Unrecoverable { classes } => {
                return Err(CheckpointError::Unrecoverable {
                    name: stage.name().to_string(),
                    dir: self.store.dir().display().to_string(),
                    detail: render_classes(&classes),
                })
            }
        })
    }

    /// Informational body header. Freshness is enforced by the durable
    /// store's own config binding (the config hash doubles as the store
    /// config, and `VERSION` is folded into it), so these fields exist
    /// for humans inspecting a checkpoint, not for validation.
    fn header(&self, stage: PipelineStage) -> String {
        format!(
            "\"version\": {VERSION},\n\"config_hash\": {},\n\"stage\": \"{}\"",
            self.hash,
            stage.name()
        )
    }

    // -- scan ---------------------------------------------------------------

    pub(crate) fn save_scan(
        &self,
        outcome: &ScanOutcome,
        metrics: &ScanMetrics,
    ) -> Result<(), CheckpointError> {
        let matches = outcome
            .matches
            .iter()
            .map(|m| {
                let o = m.ip.octets();
                format!(
                    "{{\"domain\": \"{}\", \"ip\": [{}, {}, {}, {}], \"brand\": {}, \"type\": \"{}\"}}",
                    esc(m.domain.as_str()),
                    o[0],
                    o[1],
                    o[2],
                    o[3],
                    m.brand,
                    m.squat_type.name()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let workers = metrics
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"records\": {}, \"invalid\": {}, \"blocks\": {}, \"probes\": {}, \"deep_probes\": {}, \"allocations_avoided\": {}, \"elapsed_nanos\": {}}}",
                    w.records,
                    w.invalid,
                    w.blocks,
                    w.probes,
                    w.deep_probes,
                    w.allocations_avoided,
                    w.elapsed.as_nanos() as u64
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let body = format!(
            "{{\n{},\n\"scanned\": {},\n\"invalid\": {},\n\"by_type\": [{}],\n\"by_brand\": [{}],\n\"matches\": [\n{}\n],\n\"metrics\": {{\"requested_workers\": {}, \"dedupe_collisions\": {}, \"wall_nanos\": {}, \"workers\": [\n{}\n]}}\n}}\n",
            self.header(PipelineStage::Scan),
            outcome.scanned,
            outcome.invalid,
            join_usize(&outcome.by_type),
            join_usize(&outcome.by_brand),
            matches,
            metrics.requested_workers,
            metrics.dedupe_collisions,
            metrics.wall.as_nanos() as u64,
            workers,
        );
        self.save(PipelineStage::Scan, &body)
    }

    pub(crate) fn load_scan(&self) -> Result<Loaded<(ScanOutcome, ScanMetrics)>, CheckpointError> {
        self.load_stage(PipelineStage::Scan, decode_scan)
    }

    // -- crawl --------------------------------------------------------------

    pub(crate) fn save_crawl(
        &self,
        records: &[CrawlRecord],
        stats: &CrawlStats,
        truncated: u64,
    ) -> Result<(), CheckpointError> {
        let t = &stats.transport;
        let arr4 = |a: &[u64; 4]| a.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        let transport = format!(
            "{{\"attempts\": {}, \"successes\": {}, \"retries\": {}, \"backoff_ns\": {}, \"errors\": [{}], \"injected\": [{}], \"breaker_trips\": {}, \"breaker_short_circuits\": {}, \"fetch_deadline_hits\": {}, \"crawl_deadline_hits\": {}}}",
            t.attempts,
            t.successes,
            t.retries,
            t.backoff_ns,
            arr4(&t.errors),
            arr4(&t.injected),
            t.breaker_trips,
            t.breaker_short_circuits,
            t.fetch_deadline_hits,
            t.crawl_deadline_hits,
        );
        let capture = |c: &Option<PageCapture>| match c {
            None => "null".to_string(),
            Some(p) => format!(
                "{{\"final_host\": \"{}\", \"html\": \"{}\", \"redirects\": [{}]}}",
                esc(&p.final_host),
                esc(&p.html),
                p.redirects
                    .iter()
                    .map(|r| format!("\"{}\"", esc(r)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let records_json = records
            .iter()
            .map(|r| {
                format!(
                    "{{\"domain\": \"{}\", \"brand\": {}, \"type\": \"{}\", \"web\": {}, \"mobile\": {}, \"web_redirect\": \"{}\", \"mobile_redirect\": \"{}\"}}",
                    esc(&r.domain),
                    r.brand,
                    r.squat_type.name(),
                    capture(&r.web),
                    capture(&r.mobile),
                    redirect_name(r.web_redirect),
                    redirect_name(r.mobile_redirect),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let body = format!(
            "{{\n{},\n\"truncated\": {},\n\"transport\": {},\n\"records\": [\n{}\n]\n}}\n",
            self.header(PipelineStage::Crawl),
            truncated,
            transport,
            records_json,
        );
        self.save(PipelineStage::Crawl, &body)
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn load_crawl(
        &self,
    ) -> Result<Loaded<(Vec<CrawlRecord>, CrawlStats, u64)>, CheckpointError> {
        self.load_stage(PipelineStage::Crawl, decode_crawl)
    }

    // -- train --------------------------------------------------------------

    pub(crate) fn save_train(
        &self,
        split: (usize, usize),
        eval: &EvalReport,
        model: &RandomForest,
    ) -> Result<(), CheckpointError> {
        let models = eval
            .models
            .iter()
            .map(|m| {
                let roc = m
                    .roc
                    .points
                    .iter()
                    .map(|(x, y)| format!("[{}, {}]", x.to_bits(), y.to_bits()))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"name\": \"{}\", \"fpr\": {}, \"fnr\": {}, \"auc\": {}, \"accuracy\": {}, \"roc\": [{}]}}",
                    m.name,
                    m.metrics.fpr.to_bits(),
                    m.metrics.fnr.to_bits(),
                    m.metrics.auc.to_bits(),
                    m.metrics.accuracy.to_bits(),
                    roc,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let body = format!(
            "{{\n{},\n\"train_split\": [{}, {}],\n\"train_shape\": [{}, {}],\n\"models\": [\n{}\n],\n\"model\": \"{}\"\n}}\n",
            self.header(PipelineStage::Train),
            split.0,
            split.1,
            eval.train_shape.0,
            eval.train_shape.1,
            models,
            esc(&model.encode()),
        );
        self.save(PipelineStage::Train, &body)
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn load_train(
        &self,
    ) -> Result<Loaded<((usize, usize), EvalReport, RandomForest)>, CheckpointError> {
        self.load_stage(PipelineStage::Train, decode_train)
    }
}

/// JSON string escaper shared by the checkpoint writers (the stream
/// module's watermark store reuses it).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn join_usize(a: &[usize]) -> String {
    a.iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

fn redirect_name(r: RedirectClass) -> &'static str {
    match r {
        RedirectClass::None => "None",
        RedirectClass::Original => "Original",
        RedirectClass::Market => "Market",
        RedirectClass::Other => "Other",
    }
}

fn parse_redirect(s: &str) -> Option<RedirectClass> {
    Some(match s {
        "None" => RedirectClass::None,
        "Original" => RedirectClass::Original,
        "Market" => RedirectClass::Market,
        "Other" => RedirectClass::Other,
        _ => return None,
    })
}

pub(crate) fn parse_squat_type(s: &str) -> Option<SquatType> {
    SquatType::ALL.into_iter().find(|t| t.name() == s)
}

// ---------------------------------------------------------------------------
// Decoders (shape failures → None → Loaded::Stale)
// ---------------------------------------------------------------------------

fn decode_scan(v: &json::Value) -> Option<(ScanOutcome, ScanMetrics)> {
    let scanned = v.get("scanned")?.as_usize()?;
    let invalid = v.get("invalid")?.as_usize()?;
    let by_type_vec: Vec<usize> = v
        .get("by_type")?
        .as_arr()?
        .iter()
        .map(json::Value::as_usize)
        .collect::<Option<_>>()?;
    let by_type: [usize; 5] = by_type_vec.try_into().ok()?;
    let by_brand: Vec<usize> = v
        .get("by_brand")?
        .as_arr()?
        .iter()
        .map(json::Value::as_usize)
        .collect::<Option<_>>()?;
    let mut matches = Vec::new();
    for m in v.get("matches")?.as_arr()? {
        let domain = DomainName::parse(m.get("domain")?.as_str()?).ok()?;
        let ip: Vec<u64> = m
            .get("ip")?
            .as_arr()?
            .iter()
            .map(json::Value::as_u64)
            .collect::<Option<_>>()?;
        let [a, b, c, d]: [u64; 4] = ip.try_into().ok()?;
        matches.push(SquatRecord {
            domain,
            ip: std::net::Ipv4Addr::new(
                u8::try_from(a).ok()?,
                u8::try_from(b).ok()?,
                u8::try_from(c).ok()?,
                u8::try_from(d).ok()?,
            ),
            brand: m.get("brand")?.as_usize()?,
            squat_type: parse_squat_type(m.get("type")?.as_str()?)?,
        });
    }
    let met = v.get("metrics")?;
    let mut workers = Vec::new();
    for w in met.get("workers")?.as_arr()? {
        workers.push(WorkerMetrics {
            records: w.get("records")?.as_usize()?,
            invalid: w.get("invalid")?.as_usize()?,
            blocks: w.get("blocks")?.as_usize()?,
            probes: w.get("probes")?.as_u64()?,
            deep_probes: w.get("deep_probes")?.as_u64()?,
            allocations_avoided: w.get("allocations_avoided")?.as_u64()?,
            elapsed: Duration::from_nanos(w.get("elapsed_nanos")?.as_u64()?),
        });
    }
    Some((
        ScanOutcome {
            matches,
            by_type,
            by_brand,
            scanned,
            invalid,
        },
        ScanMetrics {
            workers,
            requested_workers: met.get("requested_workers")?.as_usize()?,
            dedupe_collisions: met.get("dedupe_collisions")?.as_usize()?,
            wall: Duration::from_nanos(met.get("wall_nanos")?.as_u64()?),
        },
    ))
}

fn decode_transport(v: &json::Value) -> Option<TransportSnapshot> {
    let arr4 = |key: &str| -> Option<[u64; 4]> {
        let vals: Vec<u64> = v
            .get(key)?
            .as_arr()?
            .iter()
            .map(json::Value::as_u64)
            .collect::<Option<_>>()?;
        vals.try_into().ok()
    };
    Some(TransportSnapshot {
        attempts: v.get("attempts")?.as_u64()?,
        successes: v.get("successes")?.as_u64()?,
        retries: v.get("retries")?.as_u64()?,
        backoff_ns: v.get("backoff_ns")?.as_u64()?,
        errors: arr4("errors")?,
        injected: arr4("injected")?,
        breaker_trips: v.get("breaker_trips")?.as_u64()?,
        breaker_short_circuits: v.get("breaker_short_circuits")?.as_u64()?,
        fetch_deadline_hits: v.get("fetch_deadline_hits")?.as_u64()?,
        crawl_deadline_hits: v.get("crawl_deadline_hits")?.as_u64()?,
    })
}

fn decode_crawl(v: &json::Value) -> Option<(Vec<CrawlRecord>, CrawlStats, u64)> {
    let truncated = v.get("truncated")?.as_u64()?;
    let transport = decode_transport(v.get("transport")?)?;
    let capture = |c: &json::Value| -> Option<Option<PageCapture>> {
        if c.is_null() {
            return Some(None);
        }
        Some(Some(PageCapture {
            final_host: c.get("final_host")?.as_str()?.to_string(),
            html: c.get("html")?.as_str()?.to_string(),
            redirects: c
                .get("redirects")?
                .as_arr()?
                .iter()
                .map(|r| r.as_str().map(str::to_string))
                .collect::<Option<_>>()?,
        }))
    };
    let mut records = Vec::new();
    for r in v.get("records")?.as_arr()? {
        records.push(CrawlRecord {
            domain: r.get("domain")?.as_str()?.to_string(),
            brand: r.get("brand")?.as_usize()?,
            squat_type: parse_squat_type(r.get("type")?.as_str()?)?,
            web: capture(r.get("web")?)?,
            mobile: capture(r.get("mobile")?)?,
            web_redirect: parse_redirect(r.get("web_redirect")?.as_str()?)?,
            mobile_redirect: parse_redirect(r.get("mobile_redirect")?.as_str()?)?,
        });
    }
    // Everything except the transport counters re-aggregates from the
    // records themselves; the snapshot is the only state the crawl stage
    // owns exclusively.
    let mut stats = CrawlStats::from_records(&records);
    stats.transport = transport;
    Some((records, stats, truncated))
}

fn decode_train(v: &json::Value) -> Option<((usize, usize), EvalReport, RandomForest)> {
    let pair = |key: &str| -> Option<(usize, usize)> {
        let arr = v.get(key)?.as_arr()?;
        match arr {
            [a, b] => Some((a.as_usize()?, b.as_usize()?)),
            _ => None,
        }
    };
    let split = pair("train_split")?;
    let train_shape = pair("train_shape")?;
    let mut models = Vec::new();
    for m in v.get("models")?.as_arr()? {
        let name = match m.get("name")?.as_str()? {
            "NaiveBayes" => "NaiveBayes",
            "KNN" => "KNN",
            "RandomForest" => "RandomForest",
            _ => return None,
        };
        let bits = |key: &str| -> Option<f64> { Some(f64::from_bits(m.get(key)?.as_u64()?)) };
        let mut points = Vec::new();
        for p in m.get("roc")?.as_arr()? {
            match p.as_arr()? {
                [x, y] => points.push((f64::from_bits(x.as_u64()?), f64::from_bits(y.as_u64()?))),
                _ => return None,
            }
        }
        models.push(ModelEval {
            name,
            metrics: Metrics {
                fpr: bits("fpr")?,
                fnr: bits("fnr")?,
                auc: bits("auc")?,
                accuracy: bits("accuracy")?,
            },
            roc: RocCurve { points },
        });
    }
    let model = RandomForest::decode(v.get("model")?.as_str()?).ok()?;
    Some((
        split,
        EvalReport {
            models,
            train_shape,
        },
        model,
    ))
}

// ---------------------------------------------------------------------------
// Minimal JSON value parser (read side of the hand-rolled writers above).
// The workspace builds without registry access, so no serde: this parser
// covers exactly the JSON subset the checkpoint writers emit — objects,
// arrays, strings with escapes, integer/float numbers, booleans, null.
// ---------------------------------------------------------------------------

pub(crate) mod json {
    /// A parsed JSON value. Numbers keep their raw text so u64 bit
    /// patterns round-trip exactly (an f64 intermediate would corrupt
    /// them above 2^53).
    #[derive(Debug, Clone, PartialEq)]
    pub(crate) enum Value {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(crate) fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub(crate) fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        pub(crate) fn as_usize(&self) -> Option<usize> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        pub(crate) fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub(crate) fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub(crate) fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }
    }

    pub(crate) fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut at = 0usize;
        let value = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing bytes at offset {at}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], at: &mut usize) {
        while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
            *at += 1;
        }
    }

    fn expect(bytes: &[u8], at: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*at) == Some(&b) {
            *at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {at}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b'{') => parse_object(bytes, at),
            Some(b'[') => parse_array(bytes, at),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, at)?)),
            Some(b't') => parse_lit(bytes, at, b"true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, at, b"false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, at, b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => parse_number(bytes, at),
            _ => Err(format!("unexpected byte at offset {at}")),
        }
    }

    fn parse_lit(bytes: &[u8], at: &mut usize, lit: &[u8], v: Value) -> Result<Value, String> {
        if bytes.len() - *at >= lit.len() && &bytes[*at..*at + lit.len()] == lit {
            *at += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {at}"))
        }
    }

    fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        let start = *at;
        if bytes.get(*at) == Some(&b'-') {
            *at += 1;
        }
        while *at < bytes.len()
            && matches!(bytes[*at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *at += 1;
        }
        if *at == start {
            return Err(format!("empty number at offset {start}"));
        }
        String::from_utf8(bytes[start..*at].to_vec())
            .map(Value::Num)
            .map_err(|_| "non-utf8 number".to_string())
    }

    fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
        expect(bytes, at, b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match bytes.get(*at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *at += 1;
                    return String::from_utf8(out).map_err(|_| "non-utf8 string".into());
                }
                Some(b'\\') => {
                    *at += 1;
                    match bytes.get(*at) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            *at += 1;
                            let hi = parse_hex4(bytes, at)?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: \uD8xx\uDCxx.
                                if bytes.get(*at) == Some(&b'\\')
                                    && bytes.get(*at + 1) == Some(&b'u')
                                {
                                    *at += 2;
                                    let lo = parse_hex4(bytes, at)?;
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(code).ok_or("bad surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                char::from_u32(hi).ok_or("bad \\u escape")?
                            };
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {at}")),
                    }
                    *at += 1;
                }
                Some(&b) => {
                    out.push(b);
                    *at += 1;
                }
            }
        }
    }

    fn parse_hex4(bytes: &[u8], at: &mut usize) -> Result<u32, String> {
        if bytes.len() < *at + 4 {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&bytes[*at..*at + 4]).map_err(|_| "non-utf8 escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "non-hex \\u escape")?;
        *at += 4;
        Ok(v)
    }

    fn parse_array(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        expect(bytes, at, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, at);
        if bytes.get(*at) == Some(&b']') {
            *at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, at)?);
            skip_ws(bytes, at);
            match bytes.get(*at) {
                Some(b',') => *at += 1,
                Some(b']') => {
                    *at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected , or ] at offset {at}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        expect(bytes, at, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, at);
        if bytes.get(*at) == Some(&b'}') {
            *at += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, at);
            let key = parse_string(bytes, at)?;
            skip_ws(bytes, at);
            expect(bytes, at, b':')?;
            let value = parse_value(bytes, at)?;
            fields.push((key, value));
            skip_ws(bytes, at);
            match bytes.get(*at) {
                Some(b',') => *at += 1,
                Some(b'}') => {
                    *at += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected , or }} at offset {at}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("squatphi-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store(tag: &str) -> (CheckpointStore, PathBuf) {
        let dir = tempdir(tag);
        let s = CheckpointStore::open(
            &dir,
            &SimConfig::tiny(),
            &PipelineFaultPlan::none(),
            &DiskFaultPlan::none(),
        )
        .unwrap();
        (s, dir)
    }

    /// Overwrites one on-disk generation with damage, through the same
    /// durable-write path production uses.
    fn corrupt(dir: &Path, name: &str) {
        RealVfs
            .write(&dir.join(name), b"{\"version\": 1, tru")
            .unwrap();
    }

    #[test]
    fn json_parser_round_trips_writer_subset() {
        let v = json::parse(
            "{\"a\": 1, \"b\": [1, 2, 3], \"c\": \"x\\ny \\u00e9\", \"d\": null, \"e\": {\"f\": 18446744073709551615}}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny é"));
        assert!(v.get("d").unwrap().is_null());
        assert_eq!(
            v.get("e").unwrap().get("f").unwrap().as_u64(),
            Some(u64::MAX),
            "u64 bit patterns must survive parsing"
        );
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("").is_err());
    }

    #[test]
    fn config_hash_ignores_output_neutral_knobs() {
        let base = SimConfig::tiny();
        let faults = PipelineFaultPlan::none();
        let mut threads = base.clone();
        threads.threads = 99;
        let mut cache = base.clone();
        cache.analysis_cache = false;
        assert_eq!(config_hash(&base, &faults), config_hash(&threads, &faults));
        assert_eq!(config_hash(&base, &faults), config_hash(&cache, &faults));
        let mut seed = base.clone();
        seed.seed = 999;
        assert_ne!(config_hash(&base, &faults), config_hash(&seed, &faults));
        assert_ne!(
            config_hash(&base, &faults),
            config_hash(&base, &PipelineFaultPlan::none().analyzer_panics(5)),
        );
    }

    #[test]
    fn crawl_checkpoint_round_trips() {
        let (store, dir) = store("crawl");
        let records = vec![
            CrawlRecord {
                domain: "payp\u{00e9}l.com".into(),
                brand: 3,
                squat_type: SquatType::Homograph,
                web: Some(PageCapture {
                    final_host: "paypél.com".into(),
                    html: "<html>\"quoted\"\nline</html>".into(),
                    redirects: vec!["a.com".into(), "b.com".into()],
                }),
                mobile: None,
                web_redirect: RedirectClass::Other,
                mobile_redirect: RedirectClass::None,
            },
            CrawlRecord {
                domain: "dead.com".into(),
                brand: 0,
                squat_type: SquatType::WrongTld,
                web: None,
                mobile: None,
                web_redirect: RedirectClass::None,
                mobile_redirect: RedirectClass::None,
            },
        ];
        let mut stats = CrawlStats::from_records(&records);
        stats.transport.attempts = 42;
        stats.transport.errors = [1, 2, 3, 4];
        store.save_crawl(&records, &stats, 7).unwrap();
        let Loaded::Value((r2, s2, truncated)) = store.load_crawl().unwrap() else {
            panic!("crawl checkpoint did not load");
        };
        assert_eq!(r2, records);
        assert_eq!(truncated, 7);
        assert_eq!(s2.transport.attempts, 42);
        assert_eq!(s2.transport.errors, [1, 2, 3, 4]);
        assert_eq!(s2.web_live, stats.web_live);
        // Atomic writes leave no temp files behind.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_checkpoints_are_recomputed_not_fatal() {
        let (store, dir) = store("stale");
        let records: Vec<CrawlRecord> = Vec::new();
        store
            .save_crawl(&records, &CrawlStats::from_records(&records), 0)
            .unwrap();
        // A different config must not load this checkpoint.
        let mut other_cfg = SimConfig::tiny();
        other_cfg.seed = 4242;
        let other = CheckpointStore::open(
            &dir,
            &other_cfg,
            &PipelineFaultPlan::none(),
            &DiskFaultPlan::none(),
        )
        .unwrap();
        assert!(matches!(other.load_crawl().unwrap(), Loaded::Stale));
        // Missing checkpoint → Missing.
        assert!(matches!(store.load_scan().unwrap(), Loaded::Missing));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_generation_recovers_from_the_previous() {
        let (store, dir) = store("recover");
        let records: Vec<CrawlRecord> = Vec::new();
        let stats = CrawlStats::from_records(&records);
        store.save_crawl(&records, &stats, 1).unwrap();
        store.save_crawl(&records, &stats, 2).unwrap();
        corrupt(&dir, "crawl.g2.ckpt");
        match store.load_crawl().unwrap() {
            Loaded::Recovered((_, _, truncated), detail) => {
                assert_eq!(truncated, 1, "recovery must serve the older generation");
                assert!(detail.contains("g2"), "damage detail missing: {detail}");
            }
            _ => panic!("expected recovery from the previous generation"),
        }
        assert!(store.stats().reconciles());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_damaged_checkpoint_is_a_structured_error_not_a_silent_recompute() {
        let (store, dir) = store("unrecoverable");
        let records: Vec<CrawlRecord> = Vec::new();
        store
            .save_crawl(&records, &CrawlStats::from_records(&records), 0)
            .unwrap();
        corrupt(&dir, "crawl.g1.ckpt");
        match store.load_crawl() {
            Err(CheckpointError::Unrecoverable { name, detail, .. }) => {
                assert_eq!(name, "crawl");
                assert!(detail.contains("g1"), "damage detail missing: {detail}");
            }
            other => panic!("expected an unrecoverable error, got {:?}", other.is_ok()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
