//! Ground-truth assembly and classifier evaluation (paper §5.3).

use crate::features::FeatureExtractor;
use squatphi_ml::{
    cross_validate, Classifier, Dataset, GaussianNb, Knn, Metrics, RandomForest,
    RandomForestConfig, RocCurve,
};

/// One evaluated model (a Table 7 row).
#[derive(Debug, Clone)]
pub struct ModelEval {
    /// Model name.
    pub name: &'static str,
    /// FP / FN / AUC / ACC at the 0.5 threshold.
    pub metrics: Metrics,
    /// Full ROC curve (Figure 10 series).
    pub roc: RocCurve,
}

/// Evaluation report across all three models.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// NB / KNN / RF rows.
    pub models: Vec<ModelEval>,
    /// Training-set shape: (positives, negatives).
    pub train_shape: (usize, usize),
}

impl EvalReport {
    /// The best model by AUC.
    pub fn best(&self) -> &ModelEval {
        self.models
            .iter()
            // total_cmp sorts a NaN AUC (degenerate eval set) last
            // instead of panicking mid-comparison.
            .max_by(|a, b| a.metrics.auc.total_cmp(&b.metrics.auc))
            .expect("EvalReport is only built with the fixed NB/KNN/RF model set")
    }
}

/// The random-forest hyperparameters used throughout the reproduction.
pub fn forest_config(seed: u64) -> RandomForestConfig {
    RandomForestConfig {
        trees: 60,
        max_depth: 14,
        min_split: 4,
        features_per_split: 0,
        seed,
    }
}

/// Runs k-fold cross-validation of Naive Bayes, KNN and Random Forest on
/// the ground-truth dataset (Table 7 / Figure 10).
pub fn train_and_evaluate(data: &Dataset, folds: usize, seed: u64) -> EvalReport {
    let mut models = Vec::new();

    let nb = cross_validate(GaussianNb::new, data, folds, seed);
    models.push(ModelEval {
        name: "NaiveBayes",
        metrics: Metrics::from_scores(&nb, 0.5),
        roc: RocCurve::from_scores(&nb),
    });

    let knn = cross_validate(|| Knn::new(5), data, folds, seed);
    models.push(ModelEval {
        name: "KNN",
        metrics: Metrics::from_scores(&knn, 0.5),
        roc: RocCurve::from_scores(&knn),
    });

    let rf = cross_validate(|| RandomForest::new(forest_config(seed)), data, folds, seed);
    models.push(ModelEval {
        name: "RandomForest",
        metrics: Metrics::from_scores(&rf, 0.5),
        roc: RocCurve::from_scores(&rf),
    });

    EvalReport {
        models,
        train_shape: (data.positives(), data.len() - data.positives()),
    }
}

/// Fits the production Random Forest on the full ground truth.
pub fn fit_final_model(data: &Dataset, seed: u64) -> RandomForest {
    let mut rf = RandomForest::new(forest_config(seed));
    rf.fit(data);
    rf
}

/// Builds the ground-truth dataset the paper trains on: manually-verified
/// phishing pages (positives), taken-down/benign feed pages plus sampled
/// easy-to-confuse squatting pages (negatives).
pub fn build_ground_truth(
    extractor: &FeatureExtractor,
    phishing_pages: &[&str],
    benign_pages: &[&str],
    threads: usize,
) -> Dataset {
    let mut pages: Vec<(&str, bool)> =
        Vec::with_capacity(phishing_pages.len() + benign_pages.len());
    pages.extend(phishing_pages.iter().map(|h| (*h, true)));
    pages.extend(benign_pages.iter().map(|h| (*h, false)));
    extractor.build_dataset(&pages, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::BrandRegistry;
    use squatphi_web::pages;

    fn small_ground_truth() -> (FeatureExtractor, Dataset) {
        let reg = BrandRegistry::with_size(20);
        let fx = FeatureExtractor::new(&reg);
        let mut phishing = Vec::new();
        let mut benign = Vec::new();
        for (i, b) in reg.brands().iter().enumerate() {
            phishing.push(pages::non_squatting_phishing_page(
                b,
                i % 3 == 0,
                &format!("{}-x{}.com", b.label, i),
                i as u64,
            ));
            benign.push(pages::benign_page(&format!("b{i}.com"), i as u64));
            benign.push(pages::confusing_benign_page(
                &format!("c{i}.com"),
                Some(&b.label),
                i as u64,
            ));
        }
        let p: Vec<&str> = phishing.iter().map(String::as_str).collect();
        let n: Vec<&str> = benign.iter().map(String::as_str).collect();
        let data = build_ground_truth(&fx, &p, &n, 4);
        (fx, data)
    }

    #[test]
    fn evaluation_produces_three_models() {
        let (_fx, data) = small_ground_truth();
        let report = train_and_evaluate(&data, 5, 1);
        assert_eq!(report.models.len(), 3);
        assert_eq!(report.train_shape, (20, 40));
        for m in &report.models {
            assert!(m.metrics.auc > 0.5, "{} AUC {}", m.name, m.metrics.auc);
            assert!(m.roc.points.len() >= 2);
        }
    }

    #[test]
    fn random_forest_is_best_and_accurate() {
        let (_fx, data) = small_ground_truth();
        let report = train_and_evaluate(&data, 5, 1);
        let rf = report
            .models
            .iter()
            .find(|m| m.name == "RandomForest")
            .unwrap();
        // The fixture deliberately contains feature-identical benign
        // shells (brand mirrors), so even a perfect learner cannot reach
        // AUC 1.0 at this tiny scale.
        assert!(rf.metrics.auc > 0.8, "RF AUC {}", rf.metrics.auc);
        assert_eq!(
            report.best().name,
            report
                .models
                .iter()
                .max_by(|a, b| a.metrics.auc.partial_cmp(&b.metrics.auc).unwrap())
                .unwrap()
                .name
        );
    }

    #[test]
    fn final_model_separates_fresh_pages() {
        let (fx, data) = small_ground_truth();
        let model = fit_final_model(&data, 2);
        let reg = BrandRegistry::with_size(25);
        let unseen_brand = reg.brands().last().unwrap();
        let phish = pages::non_squatting_phishing_page(unseen_brand, false, "fresh.com", 99);
        let benign = pages::benign_page("fresh-benign.com", 99);
        assert!(model.score(&fx.extract(&phish)) > model.score(&fx.extract(&benign)));
    }
}
