//! Pipeline supervision: the fallible, stage-structured runner behind
//! [`SquatPhi::try_run`] (paper §3.2/§6 — a month-long measurement run
//! must treat partial failure as the normal case).
//!
//! Three layers:
//!
//! * **Error taxonomy** — [`PipelineError`] carries the failing
//!   [`PipelineStage`], a structured [`PipelineErrorKind`] cause, and the
//!   stages that completed before the failure (partial-progress context).
//! * **Per-record isolation** — the [`Supervisor`]'s batch executor runs
//!   every page analysis under `catch_unwind` with a bounded retry
//!   budget. A record that keeps panicking is **quarantined**: counted,
//!   attributed (stage, key, cause, attempts), excluded from downstream
//!   stages, and — because quarantine decisions depend only on the
//!   record's content and the fault plan's seeded draws, never on thread
//!   interleaving — excluded identically under any worker count.
//! * **Reporting** — [`SupervisionReport`] surfaces quarantines,
//!   degraded pages, retries and resumed/checkpointed stages, and
//!   [`SupervisionReport::reconciles`] proves injected faults are
//!   conserved: every injection is accounted for as quarantined,
//!   recovered, degraded or truncated, in the consumed-by style of
//!   `TransportMetrics`.
//!
//! Panic *noise* is suppressed without losing panics: a process-global
//! hook (installed once, delegating to the previous hook) skips printing
//! only for threads that flagged themselves as supervised.
//!
//! [`SquatPhi::try_run`]: crate::pipeline::SquatPhi::try_run

use crate::artifact::PageArtifact;
use crate::checkpoint::CheckpointError;
use crate::fault::{FaultCounts, PageFault, PipelineFaultPlan};
use crate::features::FeatureExtractor;
use parking_lot::Mutex;
use squatphi_durability::DiskFaultPlan;
use squatphi_nlp::SparseVec;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The four pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PipelineStage {
    /// Stage 1 — snapshot synthesis and the squatting scan (§3.1).
    Scan,
    /// Stage 2 — web-world build and crawl (§3.2).
    Crawl,
    /// Stage 3 — ground truth, feature extraction, training (§5).
    Train,
    /// Stage 4 — in-the-wild detection for both device profiles (§6.1).
    Detect,
}

impl PipelineStage {
    /// All stages in execution order.
    pub const ALL: [PipelineStage; 4] = [
        PipelineStage::Scan,
        PipelineStage::Crawl,
        PipelineStage::Train,
        PipelineStage::Detect,
    ];

    /// Canonical lower-case stage name (the `--stop-after` vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::Scan => "scan",
            PipelineStage::Crawl => "crawl",
            PipelineStage::Train => "train",
            PipelineStage::Detect => "detect",
        }
    }

    /// Parses a stage name.
    pub fn parse(s: &str) -> Option<PipelineStage> {
        PipelineStage::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl std::fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What went wrong, structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineErrorKind {
    /// The configuration cannot produce a meaningful run.
    Config(String),
    /// A cross-stage invariant broke (e.g. a candidate/vector length
    /// mismatch that would silently misattribute scores).
    StageInvariant(String),
    /// A stage-level panic that per-record isolation cannot absorb (or
    /// `fail_fast` promoted the first record panic to).
    StagePanic {
        /// Record key or stage-internal operation that panicked.
        key: String,
        /// Stringified panic payload.
        cause: String,
    },
    /// More records quarantined than the configured limit tolerates.
    QuarantineOverflow {
        /// The configured limit.
        limit: usize,
        /// Quarantined records when the run gave up (≥ limit; the exact
        /// value can vary with worker timing — the decision to overflow
        /// does not).
        quarantined: usize,
    },
    /// Checkpoint persistence failed (I/O, not staleness — a stale or
    /// corrupt checkpoint is recomputed, not fatal).
    Checkpoint(CheckpointError),
    /// The run was interrupted on request (`stop_after`): not a failure,
    /// but the result is incomplete by construction.
    Interrupted,
}

/// A structured pipeline failure: which stage, why, and how far the run
/// got before it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// The stage that failed (for [`PipelineErrorKind::Interrupted`],
    /// the stage *after which* the run stopped).
    pub stage: PipelineStage,
    /// Structured cause.
    pub kind: PipelineErrorKind,
    /// Stages that completed before the failure, in execution order.
    pub completed: Vec<PipelineStage>,
}

impl PipelineError {
    /// True when this is a requested interruption, not a failure.
    pub fn is_interrupted(&self) -> bool {
        matches!(self.kind, PipelineErrorKind::Interrupted)
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            PipelineErrorKind::Config(msg) => write!(f, "stage {}: config: {msg}", self.stage),
            PipelineErrorKind::StageInvariant(msg) => {
                write!(f, "stage {}: invariant broken: {msg}", self.stage)
            }
            PipelineErrorKind::StagePanic { key, cause } => {
                write!(f, "stage {}: panic in {key}: {cause}", self.stage)
            }
            PipelineErrorKind::QuarantineOverflow { limit, quarantined } => write!(
                f,
                "stage {}: quarantine overflow ({quarantined} records, limit {limit})",
                self.stage
            ),
            PipelineErrorKind::Checkpoint(e) => write!(f, "stage {}: checkpoint: {e}", self.stage),
            PipelineErrorKind::Interrupted => {
                write!(f, "interrupted after stage {} as requested", self.stage)
            }
        }?;
        if !self.completed.is_empty() {
            let done: Vec<&str> = self.completed.iter().map(PipelineStage::name).collect();
            write!(f, " (completed: {})", done.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for PipelineError {}

/// How [`SquatPhi::try_run`] should behave around failure and persistence.
///
/// [`SquatPhi::try_run`]: crate::pipeline::SquatPhi::try_run
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Directory for stage checkpoints (`None` = no checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
    /// Replay completed stages from valid checkpoints instead of
    /// recomputing them.
    pub resume: bool,
    /// Promote the first per-record panic to a [`PipelineErrorKind::StagePanic`]
    /// instead of retrying and quarantining.
    pub fail_fast: bool,
    /// Re-analysis attempts granted to a panicking record before it is
    /// quarantined (total attempts = `retry_budget + 1`).
    pub retry_budget: u32,
    /// Quarantined-record ceiling; crossing it aborts the stage with
    /// [`PipelineErrorKind::QuarantineOverflow`].
    pub quarantine_limit: usize,
    /// Seeded fault plan to inject during the run.
    pub faults: PipelineFaultPlan,
    /// Stop (with [`PipelineErrorKind::Interrupted`]) after this stage's
    /// checkpoint is written — the deterministic stand-in for `kill -9`
    /// in resume tests.
    pub stop_after: Option<PipelineStage>,
    /// Seeded disk-fault plan injected under every durable checkpoint
    /// write (default: none). Output-neutral and excluded from the
    /// checkpoint config hash, so a no-fault resume can load checkpoints
    /// a faulted run committed.
    pub disk_faults: DiskFaultPlan,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            checkpoint_dir: None,
            resume: false,
            fail_fast: false,
            retry_budget: 1,
            quarantine_limit: 4096,
            faults: PipelineFaultPlan::none(),
            stop_after: None,
            disk_faults: DiskFaultPlan::none(),
        }
    }
}

/// One quarantined record: counted, attributed, excluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Stage whose executor quarantined the record.
    pub stage: PipelineStage,
    /// Stable record key (stage-qualified domain or feed index).
    pub key: String,
    /// Stringified cause of the final failing attempt.
    pub cause: String,
    /// Analysis attempts consumed (1 + retries).
    pub attempts: u32,
    /// True when the panic was planted by the fault plan.
    pub injected: bool,
}

/// The supervision outcome of one `try_run`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SupervisionReport {
    /// Faults the plan actually injected (counted at processing time).
    pub injected: FaultCounts,
    /// Quarantined records, sorted by (stage, key) — deterministic
    /// regardless of worker count.
    pub quarantined: Vec<QuarantineEntry>,
    /// Injected flaky panics that succeeded within the retry budget.
    pub recovered: u64,
    /// Natural (non-injected) panics that succeeded on retry.
    pub recovered_natural: u64,
    /// Page analyses that fell back to the degraded lexical+form path
    /// (injected poisons + natural visual-stage failures).
    pub degraded: u64,
    /// The natural subset of `degraded`.
    pub degraded_natural: u64,
    /// Crawl records whose HTML the fault plan truncated.
    pub truncated: u64,
    /// Total re-analysis attempts spent across all records.
    pub retries: u64,
    /// Stages replayed from checkpoints (their counters above reflect
    /// only in-process work).
    pub resumed_stages: Vec<&'static str>,
    /// Stages whose outputs were checkpointed this run.
    pub checkpointed_stages: Vec<&'static str>,
    /// Stages whose on-disk checkpoint existed but was stale and got
    /// recomputed (honest config-change invalidation, not damage).
    pub invalidated_checkpoints: Vec<&'static str>,
    /// Stages resumed from an *older* checkpoint generation after the
    /// newest was damaged, with the per-generation damage classification
    /// (e.g. `("crawl", "g4 torn")`). Empty on healthy runs; a stage
    /// with no surviving generation is a [`PipelineErrorKind::Checkpoint`]
    /// error instead, never a silent recompute.
    pub recovered_checkpoints: Vec<(&'static str, String)>,
}

impl SupervisionReport {
    /// Quarantined records whose panic was injected by the fault plan.
    pub fn quarantined_injected(&self) -> u64 {
        self.quarantined.iter().filter(|q| q.injected).count() as u64
    }

    /// The conservation identity: every injected fault is accounted for
    /// exactly once as quarantined, recovered, degraded or truncated —
    /// nothing double-counts, nothing vanishes. Checked declaratively
    /// against the exported telemetry (`supervision.*_accounted`).
    pub fn reconciles(&self) -> bool {
        let reg = squatphi_telemetry::Registry::new();
        self.export(&reg.scope("supervision"));
        squatphi_telemetry::invariants::supervision_invariants().all_hold(&reg.snapshot())
    }

    /// Publishes the report into a telemetry scope (canonically
    /// `supervision`). Stage lists export as counts; the entry detail
    /// stays on the struct, which remains the typed view.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        let injected = scope.scope("injected");
        injected.set_u64("analyzer_panics", self.injected.analyzer_panics);
        injected.set_u64("poisoned_pages", self.injected.poisoned_pages);
        injected.set_u64("truncated_records", self.injected.truncated_records);
        scope.set_u64("quarantined", self.quarantined.len() as u64);
        scope.set_u64("quarantined_injected", self.quarantined_injected());
        scope.set_u64("recovered", self.recovered);
        scope.set_u64("recovered_natural", self.recovered_natural);
        scope.set_u64("degraded", self.degraded);
        scope.set_u64("degraded_natural", self.degraded_natural);
        scope.set_u64("truncated", self.truncated);
        scope.set_u64("retries", self.retries);
        scope.set_u64("resumed_stages", self.resumed_stages.len() as u64);
        scope.set_u64("checkpointed_stages", self.checkpointed_stages.len() as u64);
        scope.set_u64(
            "invalidated_checkpoints",
            self.invalidated_checkpoints.len() as u64,
        );
        scope.set_u64(
            "recovered_checkpoints",
            self.recovered_checkpoints.len() as u64,
        );
    }

    /// The violations, if any — the structured report behind
    /// [`SupervisionReport::reconciles`].
    pub fn violations(&self) -> Vec<squatphi_telemetry::Violation> {
        let reg = squatphi_telemetry::Registry::new();
        self.export(&reg.scope("supervision"));
        squatphi_telemetry::invariants::supervision_invariants()
            .check_all(&reg.snapshot())
            .err()
            .unwrap_or_default()
    }

    /// One-line human report, for CLI/stderr surfaces.
    pub fn report_line(&self) -> String {
        let mut line = format!(
            "{} injected ({} panics, {} poisons, {} truncations); \
             {} quarantined, {} recovered, {} degraded, {} retries ({})",
            self.injected.total(),
            self.injected.analyzer_panics,
            self.injected.poisoned_pages,
            self.injected.truncated_records,
            self.quarantined.len(),
            self.recovered + self.recovered_natural,
            self.degraded,
            self.retries,
            if self.reconciles() {
                "reconciled"
            } else {
                "NOT RECONCILED"
            },
        );
        if !self.resumed_stages.is_empty() {
            line.push_str(&format!("; resumed: {}", self.resumed_stages.join(", ")));
        }
        if !self.checkpointed_stages.is_empty() {
            line.push_str(&format!(
                "; checkpointed: {}",
                self.checkpointed_stages.join(", ")
            ));
        }
        if !self.invalidated_checkpoints.is_empty() {
            line.push_str(&format!(
                "; invalidated: {}",
                self.invalidated_checkpoints.join(", ")
            ));
        }
        if !self.recovered_checkpoints.is_empty() {
            let detail = self
                .recovered_checkpoints
                .iter()
                .map(|(stage, classes)| format!("{stage} ({classes})"))
                .collect::<Vec<_>>()
                .join(", ");
            line.push_str(&format!("; recovered checkpoints: {detail}"));
        }
        line
    }
}

// ---------------------------------------------------------------------------
// Quiet panic plumbing
// ---------------------------------------------------------------------------

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INSTALLED: OnceLock<()> = OnceLock::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" print for threads currently running a supervised
/// body, and delegates to the previously-installed hook for everyone
/// else. The panic itself still unwinds normally.
pub(crate) fn install_quiet_hook() {
    HOOK_INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Marks the current thread as supervised for the guard's lifetime.
pub(crate) struct QuietGuard {
    was: bool,
}

impl QuietGuard {
    pub(crate) fn new() -> Self {
        install_quiet_hook();
        QuietGuard {
            was: QUIET.with(|q| q.replace(true)),
        }
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET.with(|q| q.set(self.was));
    }
}

/// Marker payload of plan-injected panics, so the executor can attribute
/// them reliably.
struct InjectedPanic;

const INJECTED_CAUSE: &str = "injected analyzer panic (fault plan)";

fn payload_to_cause(payload: &(dyn std::any::Any + Send)) -> (String, bool) {
    if payload.is::<InjectedPanic>() {
        return (INJECTED_CAUSE.to_string(), true);
    }
    let cause = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    (cause, false)
}

// ---------------------------------------------------------------------------
// The supervised batch executor
// ---------------------------------------------------------------------------

/// One page of supervised work: a stable key plus the HTML to analyze.
pub(crate) struct PageJob<'a> {
    pub key: String,
    pub html: &'a str,
}

/// Shared supervision state for one `try_run`: fault bookkeeping,
/// quarantine, and the stop machinery for `fail_fast` / overflow.
pub(crate) struct Supervisor {
    faults: PipelineFaultPlan,
    fail_fast: bool,
    retry_budget: u32,
    quarantine_limit: usize,
    injected_panics: AtomicU64,
    injected_poisons: AtomicU64,
    injected_truncations: AtomicU64,
    recovered: AtomicU64,
    recovered_natural: AtomicU64,
    degraded: AtomicU64,
    degraded_natural: AtomicU64,
    truncated: AtomicU64,
    retries: AtomicU64,
    quarantine: Mutex<Vec<QuarantineEntry>>,
    stop: AtomicBool,
    overflowed: AtomicBool,
    first_failure: Mutex<Option<(String, String)>>,
    resumed: Mutex<Vec<&'static str>>,
    checkpointed: Mutex<Vec<&'static str>>,
    invalidated: Mutex<Vec<&'static str>>,
    recovered_ckpts: Mutex<Vec<(&'static str, String)>>,
}

impl Supervisor {
    pub(crate) fn new(opts: &RunOptions) -> Self {
        install_quiet_hook();
        Supervisor {
            faults: opts.faults,
            fail_fast: opts.fail_fast,
            retry_budget: opts.retry_budget,
            quarantine_limit: opts.quarantine_limit.max(1),
            injected_panics: AtomicU64::new(0),
            injected_poisons: AtomicU64::new(0),
            injected_truncations: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            recovered_natural: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            degraded_natural: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantine: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            overflowed: AtomicBool::new(false),
            first_failure: Mutex::new(None),
            resumed: Mutex::new(Vec::new()),
            checkpointed: Mutex::new(Vec::new()),
            invalidated: Mutex::new(Vec::new()),
            recovered_ckpts: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn note_resumed(&self, stage: PipelineStage) {
        self.resumed.lock().push(stage.name());
    }

    pub(crate) fn note_checkpointed(&self, stage: PipelineStage) {
        self.checkpointed.lock().push(stage.name());
    }

    pub(crate) fn note_invalidated(&self, stage: PipelineStage) {
        self.invalidated.lock().push(stage.name());
    }

    /// Records a stage that resumed from an older checkpoint generation
    /// after the newest was damaged (`detail` is the classification).
    pub(crate) fn note_recovered_checkpoint(&self, stage: PipelineStage, detail: String) {
        self.recovered_ckpts.lock().push((stage.name(), detail));
    }

    /// Records one crawl record truncated by the fault plan.
    pub(crate) fn note_truncated(&self) {
        self.injected_truncations.fetch_add(1, Ordering::Relaxed);
        self.truncated.fetch_add(1, Ordering::Relaxed);
    }

    /// Replays a truncation count recorded in a crawl checkpoint, so a
    /// resumed run reports the same counters as the run that wrote it.
    pub(crate) fn note_truncated_bulk(&self, n: u64) {
        self.injected_truncations.fetch_add(n, Ordering::Relaxed);
        self.truncated.fetch_add(n, Ordering::Relaxed);
    }

    /// Whether the plan truncates this crawl record's HTML.
    pub(crate) fn truncates(&self, domain: &str) -> bool {
        self.faults.truncates(domain)
    }

    fn quarantine_record(&self, entry: QuarantineEntry) {
        let mut q = self.quarantine.lock();
        q.push(entry);
        if q.len() > self.quarantine_limit {
            self.overflowed.store(true, Ordering::SeqCst);
            self.stop.store(true, Ordering::SeqCst);
        }
    }

    fn record_failure(&self, key: &str, cause: &str) {
        let mut f = self.first_failure.lock();
        if f.is_none() {
            *f = Some((key.to_string(), cause.to_string()));
        }
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Analyzes one job under supervision. `None` means the record was
    /// quarantined (or the executor is stopping).
    fn guarded_analyze(
        &self,
        stage: PipelineStage,
        extractor: &FeatureExtractor,
        job: &PageJob<'_>,
    ) -> Option<Arc<PageArtifact>> {
        let analyzer = extractor.analyzer();
        let fault = self.faults.decide_page(&job.key);
        if let Some(PageFault::Poison) = fault {
            // Forced degradation: skip the visual derivation entirely.
            // Bypasses the cache (a poisoned artifact must never be
            // served to an unpoisoned request and vice versa).
            let _quiet = QuietGuard::new();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                analyzer.analyze_forced_degraded(job.html)
            }));
            return match outcome {
                Ok(artifact) => {
                    self.injected_poisons.fetch_add(1, Ordering::Relaxed);
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    Some(artifact)
                }
                Err(payload) => {
                    let (cause, _) = payload_to_cause(payload.as_ref());
                    if self.fail_fast {
                        self.record_failure(&job.key, &cause);
                        return None;
                    }
                    self.quarantine_record(QuarantineEntry {
                        stage,
                        key: job.key.clone(),
                        cause,
                        attempts: 1,
                        injected: false,
                    });
                    None
                }
            };
        }
        let failing_attempts = match fault {
            Some(PageFault::Panic { failing_attempts }) => {
                self.injected_panics.fetch_add(1, Ordering::Relaxed);
                failing_attempts
            }
            _ => 0,
        };
        let injected = failing_attempts > 0;
        for attempt in 0..=self.retry_budget {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            let _quiet = QuietGuard::new();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                if attempt < failing_attempts {
                    panic::panic_any(InjectedPanic);
                }
                analyzer.analyze(job.html)
            }));
            match outcome {
                Ok(artifact) => {
                    if attempt > 0 {
                        if injected {
                            self.recovered.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.recovered_natural.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if artifact.degraded {
                        self.degraded.fetch_add(1, Ordering::Relaxed);
                        self.degraded_natural.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(artifact);
                }
                Err(payload) => {
                    let (cause, was_injected) = payload_to_cause(payload.as_ref());
                    if self.fail_fast {
                        self.record_failure(&job.key, &cause);
                        return None;
                    }
                    if attempt == self.retry_budget {
                        self.quarantine_record(QuarantineEntry {
                            stage,
                            key: job.key.clone(),
                            cause,
                            attempts: attempt + 1,
                            injected: was_injected,
                        });
                        return None;
                    }
                }
            }
        }
        None
    }

    /// The supervised batch executor: parallel analysis (workers pull
    /// indices from a shared cursor, as in `FeatureExtractor::analyze_batch`)
    /// followed by sequential embedding — both under per-record
    /// `catch_unwind`. `None` slots are quarantined records.
    pub(crate) fn extract_vectors(
        &self,
        stage: PipelineStage,
        extractor: &FeatureExtractor,
        jobs: &[PageJob<'_>],
        threads: usize,
    ) -> Result<Vec<Option<SparseVec>>, PipelineErrorKind> {
        let threads = threads.max(1).min(jobs.len().max(1));
        let mut artifacts: Vec<Option<Arc<PageArtifact>>> = vec![None; jobs.len()];
        if threads <= 1 {
            for (slot, job) in artifacts.iter_mut().zip(jobs) {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                *slot = self.guarded_analyze(stage, extractor, job);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Arc<PageArtifact>>>> =
                (0..jobs.len()).map(|_| Mutex::new(None)).collect();
            crossbeam::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|_| loop {
                        if self.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        *slots[i].lock() = self.guarded_analyze(stage, extractor, &jobs[i]);
                    });
                }
            })
            // Workers never unwind: every panic surface inside them is
            // behind guarded_analyze's catch_unwind.
            .expect("supervised analysis worker escaped its catch_unwind");
            for (slot, cell) in artifacts.iter_mut().zip(slots) {
                *slot = cell.into_inner();
            }
        }
        self.check_stopped()?;

        // Sequential embedding: deterministic order, still isolated.
        let mut out: Vec<Option<SparseVec>> = Vec::with_capacity(jobs.len());
        for (artifact, job) in artifacts.into_iter().zip(jobs) {
            let Some(artifact) = artifact else {
                out.push(None);
                continue;
            };
            let _quiet = QuietGuard::new();
            let embedded = panic::catch_unwind(AssertUnwindSafe(|| {
                extractor.extract_from_artifact(&artifact)
            }));
            match embedded {
                Ok(v) => out.push(Some(v)),
                Err(payload) => {
                    let (cause, _) = payload_to_cause(payload.as_ref());
                    if self.fail_fast {
                        self.record_failure(&job.key, &cause);
                    } else {
                        self.quarantine_record(QuarantineEntry {
                            stage,
                            key: job.key.clone(),
                            cause: format!("embed: {cause}"),
                            attempts: 1,
                            injected: false,
                        });
                    }
                    out.push(None);
                }
            }
        }
        self.check_stopped()?;
        Ok(out)
    }

    fn check_stopped(&self) -> Result<(), PipelineErrorKind> {
        if self.overflowed.load(Ordering::SeqCst) {
            return Err(PipelineErrorKind::QuarantineOverflow {
                limit: self.quarantine_limit,
                quarantined: self.quarantine.lock().len(),
            });
        }
        if let Some((key, cause)) = self.first_failure.lock().clone() {
            return Err(PipelineErrorKind::StagePanic { key, cause });
        }
        Ok(())
    }

    /// Finalizes the report. The quarantine list is sorted by
    /// (stage, key) so its order never leaks worker scheduling.
    pub(crate) fn report(&self) -> SupervisionReport {
        let mut quarantined = self.quarantine.lock().clone();
        quarantined.sort_by(|a, b| a.stage.cmp(&b.stage).then_with(|| a.key.cmp(&b.key)));
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        SupervisionReport {
            injected: FaultCounts {
                analyzer_panics: load(&self.injected_panics),
                poisoned_pages: load(&self.injected_poisons),
                truncated_records: load(&self.injected_truncations),
            },
            quarantined,
            recovered: load(&self.recovered),
            recovered_natural: load(&self.recovered_natural),
            degraded: load(&self.degraded),
            degraded_natural: load(&self.degraded_natural),
            truncated: load(&self.truncated),
            retries: load(&self.retries),
            resumed_stages: self.resumed.lock().clone(),
            checkpointed_stages: self.checkpointed.lock().clone(),
            invalidated_checkpoints: self.invalidated.lock().clone(),
            recovered_checkpoints: self.recovered_ckpts.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::BrandRegistry;

    fn extractor() -> FeatureExtractor {
        FeatureExtractor::new(&BrandRegistry::with_size(5))
    }

    fn opts_with(faults: PipelineFaultPlan) -> RunOptions {
        RunOptions {
            faults,
            ..RunOptions::default()
        }
    }

    #[test]
    fn stage_names_round_trip() {
        for s in PipelineStage::ALL {
            assert_eq!(PipelineStage::parse(s.name()), Some(s));
        }
        assert_eq!(PipelineStage::parse("bogus"), None);
    }

    #[test]
    fn error_display_carries_context() {
        let e = PipelineError {
            stage: PipelineStage::Train,
            kind: PipelineErrorKind::StagePanic {
                key: "feed:3".into(),
                cause: "boom".into(),
            },
            completed: vec![PipelineStage::Scan, PipelineStage::Crawl],
        };
        let s = e.to_string();
        assert!(s.contains("train"), "{s}");
        assert!(s.contains("feed:3"), "{s}");
        assert!(s.contains("scan, crawl"), "{s}");
        assert!(!e.is_interrupted());
    }

    #[test]
    fn persistent_panics_quarantine_and_reconcile() {
        let fx = extractor();
        let sup = Supervisor::new(&opts_with(
            PipelineFaultPlan::none().analyzer_panics(400).with_seed(3),
        ));
        let htmls: Vec<String> = (0..40)
            .map(|i| format!("<html><body><p>page {i}</p></body></html>"))
            .collect();
        let jobs: Vec<PageJob<'_>> = htmls
            .iter()
            .enumerate()
            .map(|(i, h)| PageJob {
                key: format!("test:{i}"),
                html: h,
            })
            .collect();
        let vectors = sup
            .extract_vectors(PipelineStage::Detect, &fx, &jobs, 4)
            .unwrap();
        let report = sup.report();
        assert!(report.injected.analyzer_panics > 0);
        assert!(report.reconciles(), "{report:?}");
        assert_eq!(
            vectors.iter().filter(|v| v.is_none()).count(),
            report.quarantined.len()
        );
        // Persistent panics exhaust the retry budget: 1 retry each.
        assert_eq!(report.retries, report.quarantined.len() as u64);
        for q in &report.quarantined {
            assert!(q.injected);
            assert_eq!(q.attempts, 2);
            assert_eq!(q.cause, super::INJECTED_CAUSE);
        }
    }

    #[test]
    fn flaky_panics_recover_within_budget() {
        let fx = extractor();
        let sup = Supervisor::new(&opts_with(
            PipelineFaultPlan::none().flaky_panics(500).with_seed(9),
        ));
        let htmls: Vec<String> = (0..30)
            .map(|i| format!("<html><body><p>flaky {i}</p></body></html>"))
            .collect();
        let jobs: Vec<PageJob<'_>> = htmls
            .iter()
            .enumerate()
            .map(|(i, h)| PageJob {
                key: format!("t:{i}"),
                html: h,
            })
            .collect();
        let vectors = sup
            .extract_vectors(PipelineStage::Train, &fx, &jobs, 2)
            .unwrap();
        let report = sup.report();
        assert!(report.injected.analyzer_panics > 0);
        assert_eq!(report.recovered, report.injected.analyzer_panics);
        assert!(report.quarantined.is_empty());
        assert!(report.reconciles());
        assert!(vectors.iter().all(Option::is_some));
    }

    #[test]
    fn quarantine_is_identical_across_thread_counts() {
        let fx = extractor();
        let htmls: Vec<String> = (0..60)
            .map(|i| format!("<html><body><h1>d{i}</h1></body></html>"))
            .collect();
        let plan = PipelineFaultPlan::none()
            .analyzer_panics(300)
            .poisons(200)
            .with_seed(5);
        let mut baseline: Option<(Vec<QuarantineEntry>, Vec<Option<bool>>)> = None;
        for threads in [1, 4, 8] {
            let sup = Supervisor::new(&opts_with(plan));
            let jobs: Vec<PageJob<'_>> = htmls
                .iter()
                .enumerate()
                .map(|(i, h)| PageJob {
                    key: format!("k:{i}"),
                    html: h,
                })
                .collect();
            let vectors = sup
                .extract_vectors(PipelineStage::Detect, &fx, &jobs, threads)
                .unwrap();
            let report = sup.report();
            assert!(report.reconciles(), "threads={threads}: {report:?}");
            let shape: Vec<Option<bool>> =
                vectors.iter().map(|v| v.as_ref().map(|_| true)).collect();
            match &baseline {
                None => baseline = Some((report.quarantined.clone(), shape)),
                Some((q, s)) => {
                    assert_eq!(&report.quarantined, q, "threads={threads}");
                    assert_eq!(&shape, s, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn fail_fast_promotes_first_panic() {
        let fx = extractor();
        let sup = Supervisor::new(&RunOptions {
            faults: PipelineFaultPlan::none().analyzer_panics(1000),
            fail_fast: true,
            ..RunOptions::default()
        });
        let html = "<html><body>x</body></html>".to_string();
        let jobs = vec![PageJob {
            key: "k:0".into(),
            html: &html,
        }];
        let err = sup
            .extract_vectors(PipelineStage::Detect, &fx, &jobs, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineErrorKind::StagePanic { .. }));
    }

    #[test]
    fn quarantine_overflow_aborts() {
        let fx = extractor();
        let sup = Supervisor::new(&RunOptions {
            faults: PipelineFaultPlan::none().analyzer_panics(1000),
            quarantine_limit: 3,
            ..RunOptions::default()
        });
        let htmls: Vec<String> = (0..20).map(|i| format!("<p>{i}</p>")).collect();
        let jobs: Vec<PageJob<'_>> = htmls
            .iter()
            .enumerate()
            .map(|(i, h)| PageJob {
                key: format!("k:{i}"),
                html: h,
            })
            .collect();
        let err = sup
            .extract_vectors(PipelineStage::Detect, &fx, &jobs, 2)
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineErrorKind::QuarantineOverflow { limit: 3, .. }
        ));
    }

    #[test]
    fn report_line_mentions_reconciliation() {
        let r = SupervisionReport::default();
        assert!(r.reconciles());
        assert!(r.report_line().contains("reconciled"));
    }
}
