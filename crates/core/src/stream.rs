//! The streaming watch daemon behind `squatphi watch` (ROADMAP: batch →
//! long-running service).
//!
//! Where [`SquatPhi::try_run`] scans a frozen snapshot, [`SquatPhi::
//! try_watch`] consumes the seeded registration feed from
//! [`squatphi_dnsdb::events`] continuously:
//!
//! ```text
//!   EventStream ──ingest──▶ [ingest queue] ──detect──▶ [candidate queue]
//!        │  (bounded: drops)       (SquatDetector,        (bounded: stalls)
//!        ▼                          worker threads)             │
//!   VirtualClock ──── cadence ticks ────────────────────────────▼
//!                                                        crawl sweep
//!                                              (WebWorld + transport stack,
//!                                               re-crawl scheduler, blacklist
//!                                               lag, takedown tracking)
//! ```
//!
//! Backpressure is explicit and *accounted*: every event the generator
//! emits is either accepted into the bounded ingest queue or counted as
//! a drop; every detected candidate either fits the bounded candidate
//! queue or stalls the detect stage (and is retried next tick). The
//! conservation identities live in [`WatchCounters::reconciles`] and are
//! asserted by CI.
//!
//! Determinism contract: the whole run is a pure function of
//! `(WatchConfig, stop point)` — same seed and same `stop_after` produce
//! a byte-identical [`WatchSummary::to_json`], at any worker-thread
//! count. The watermark checkpoint (generational `watch.g<N>.ckpt` files
//! persisted through [`squatphi_durability::DurableStore`], reusing the
//! [`crate::checkpoint`] codec conventions) round-trips the full daemon
//! state, so killing the daemon at a checkpoint and resuming reproduces
//! the uninterrupted run's [`WatchSummary::state_fingerprint`] exactly.
//! Because the run is a pure function of its inputs, resuming from *any*
//! verified generation — including an older one recovered after the
//! newest was damaged — still converges on the identical final summary.
//!
//! [`SquatPhi::try_run`]: crate::pipeline::SquatPhi::try_run
//! [`SquatPhi:: try_watch`]: crate::pipeline::SquatPhi

use crate::artifact::content_key;
use crate::checkpoint::{esc, json, parse_squat_type, store_err, vfs_for, CheckpointError, Loaded};
use crate::pipeline::SquatPhi;
use squatphi_crawler::{
    crawl_all, CircuitBreakerPolicy, Clock, CrawlConfig, InProcessTransport, RecrawlScheduler,
    RetryPolicy, TransportSnapshot, TransportStack, VirtualClock,
};
use squatphi_dnsdb::{EventStream, EventStreamConfig, StreamEvent};
use squatphi_domain::DomainName;
use squatphi_durability::{
    render_classes, DiskFaultPlan, DurabilityStats, DurableStore, LoadOutcome,
};
use squatphi_feeds::{Blacklists, PhishKind};
use squatphi_squat::{BrandRegistry, SquatDetector, SquatMatch, SquatType};
use squatphi_web::{WebWorld, WorldConfig};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// One daemon tick on the virtual clock (equals one event-stream burst
/// window, so each tick ingests about one burst).
const TICK_NANOS: u64 = 1_000_000;

/// Watch checkpoint format version.
const WATCH_VERSION: u64 = 1;

/// Seed of the watch config-hash content key.
const HASH_SEED: u64 = 0x3a7c_9d02;

/// Seed of the state fingerprint.
const FINGERPRINT_SEED: u64 = 0x5171_2019;

/// World-behavior seed salt (decorrelates site behavior from the event
/// stream's own draws).
const WORLD_SALT: u64 = 0x0077_a7c4;

/// Blacklist-lag horizon in sweep-days (paper §6.3 measures a month).
const BLACKLIST_HORIZON_DAYS: u32 = 30;

// ---------------------------------------------------------------------------
// Config

/// Validated watch-daemon parameters; build one with
/// [`WatchConfig::builder`] (mirrors
/// [`squatphi_crawler::CrawlConfig::builder`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchConfig {
    brands: usize,
    seed: u64,
    events: u64,
    ingest_capacity: usize,
    candidate_capacity: usize,
    detect_batch: usize,
    crawl_cadence: u64,
    crawl_batch: usize,
    threads: usize,
    checkpoint_every: u64,
    stream: EventStreamConfig,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig::builder()
            .build()
            .expect("default watch config is valid")
    }
}

impl WatchConfig {
    /// Starts a builder pre-loaded with the default values.
    pub fn builder() -> WatchConfigBuilder {
        WatchConfigBuilder::default()
    }

    /// Monitored brands.
    pub fn brands(&self) -> usize {
        self.brands
    }

    /// Stream + world seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total events this run consumes before draining and stopping.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bounded ingest-queue capacity (overflow drops, counted).
    pub fn ingest_capacity(&self) -> usize {
        self.ingest_capacity
    }

    /// Bounded candidate-queue capacity (overflow stalls detect).
    pub fn candidate_capacity(&self) -> usize {
        self.candidate_capacity
    }

    /// Events classified per tick.
    pub fn detect_batch(&self) -> usize {
        self.detect_batch
    }

    /// Ticks between crawl sweeps (one sweep models one feed day).
    pub fn crawl_cadence(&self) -> u64 {
        self.crawl_cadence
    }

    /// Max domains crawled per sweep (new candidates get at least half).
    pub fn crawl_batch(&self) -> usize {
        self.crawl_batch
    }

    /// Worker threads for the detect and crawl stages. Never affects
    /// outputs — only wall-clock.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Events between watermark checkpoint writes.
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// The derived event-stream configuration.
    pub fn stream(&self) -> &EventStreamConfig {
        &self.stream
    }
}

/// Validating builder for [`WatchConfig`].
///
/// ```
/// use squatphi::stream::WatchConfig;
/// let cfg = WatchConfig::builder().seed(7).events(500).build().unwrap();
/// assert_eq!(cfg.seed(), 7);
/// assert!(WatchConfig::builder().ingest_capacity(0).build().is_err());
/// assert!(WatchConfig::builder().crawl_cadence(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct WatchConfigBuilder {
    brands: usize,
    seed: u64,
    events: u64,
    ingest_capacity: usize,
    candidate_capacity: usize,
    detect_batch: usize,
    crawl_cadence: u64,
    crawl_batch: usize,
    threads: usize,
    checkpoint_every: u64,
}

impl Default for WatchConfigBuilder {
    fn default() -> Self {
        WatchConfigBuilder {
            brands: 40,
            seed: 20180401,
            events: 2_000,
            ingest_capacity: 128,
            candidate_capacity: 32,
            detect_batch: 16,
            crawl_cadence: 4,
            crawl_batch: 8,
            threads: 4,
            checkpoint_every: 64,
        }
    }
}

impl WatchConfigBuilder {
    /// Monitored brands (must be >= 1).
    pub fn brands(mut self, n: usize) -> Self {
        self.brands = n;
        self
    }

    /// Stream + world seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total events to consume.
    pub fn events(mut self, n: u64) -> Self {
        self.events = n;
        self
    }

    /// Ingest queue capacity (must be >= 1).
    pub fn ingest_capacity(mut self, n: usize) -> Self {
        self.ingest_capacity = n;
        self
    }

    /// Candidate queue capacity (must be >= 1).
    pub fn candidate_capacity(mut self, n: usize) -> Self {
        self.candidate_capacity = n;
        self
    }

    /// Events classified per tick (must be >= 1).
    pub fn detect_batch(mut self, n: usize) -> Self {
        self.detect_batch = n;
        self
    }

    /// Ticks between crawl sweeps (must be >= 1).
    pub fn crawl_cadence(mut self, n: u64) -> Self {
        self.crawl_cadence = n;
        self
    }

    /// Max domains per sweep (must be >= 1).
    pub fn crawl_batch(mut self, n: usize) -> Self {
        self.crawl_batch = n;
        self
    }

    /// Worker threads (must be >= 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Events between checkpoint writes (must be >= 1).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Validates and builds the config.
    pub fn build(self) -> Result<WatchConfig, WatchConfigError> {
        if self.ingest_capacity == 0 || self.candidate_capacity == 0 {
            return Err(WatchConfigError::ZeroQueueCapacity);
        }
        if self.crawl_cadence == 0 {
            return Err(WatchConfigError::ZeroCadence);
        }
        if self.detect_batch == 0 || self.crawl_batch == 0 {
            return Err(WatchConfigError::ZeroBatch);
        }
        if self.threads == 0 {
            return Err(WatchConfigError::ZeroWorkers);
        }
        if self.brands == 0 {
            return Err(WatchConfigError::ZeroBrands);
        }
        if self.checkpoint_every == 0 {
            return Err(WatchConfigError::ZeroCheckpointCadence);
        }
        Ok(WatchConfig {
            brands: self.brands,
            seed: self.seed,
            events: self.events,
            ingest_capacity: self.ingest_capacity,
            candidate_capacity: self.candidate_capacity,
            detect_batch: self.detect_batch,
            crawl_cadence: self.crawl_cadence,
            crawl_batch: self.crawl_batch,
            threads: self.threads,
            checkpoint_every: self.checkpoint_every,
            stream: EventStreamConfig {
                seed: self.seed,
                ..EventStreamConfig::default()
            },
        })
    }
}

/// Rejected [`WatchConfigBuilder`] combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchConfigError {
    /// Both queues must hold at least one entry — a zero-capacity queue
    /// drops or stalls everything forever.
    ZeroQueueCapacity,
    /// `crawl_cadence` must be >= 1 tick — candidates would never drain.
    ZeroCadence,
    /// `detect_batch` / `crawl_batch` must be >= 1.
    ZeroBatch,
    /// `threads` must be >= 1.
    ZeroWorkers,
    /// `brands` must be >= 1.
    ZeroBrands,
    /// `checkpoint_every` must be >= 1 event.
    ZeroCheckpointCadence,
}

impl std::fmt::Display for WatchConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WatchConfigError::ZeroQueueCapacity => "watch config: queue capacities must be >= 1",
            WatchConfigError::ZeroCadence => "watch config: crawl_cadence must be >= 1",
            WatchConfigError::ZeroBatch => "watch config: batch sizes must be >= 1",
            WatchConfigError::ZeroWorkers => "watch config: threads must be >= 1",
            WatchConfigError::ZeroBrands => "watch config: brands must be >= 1",
            WatchConfigError::ZeroCheckpointCadence => {
                "watch config: checkpoint_every must be >= 1"
            }
        })
    }
}

impl std::error::Error for WatchConfigError {}

/// How [`SquatPhi::try_watch`] should behave around persistence and
/// interruption (the watch analog of [`crate::RunOptions`]).
#[derive(Debug, Clone, Default)]
pub struct WatchOptions {
    /// Directory for the watermark checkpoint (generational
    /// `watch.g<N>.ckpt` files); `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint if one matches the config hash.
    pub resume: bool,
    /// Stop (with a checkpoint, when persistence is on) once this many
    /// events have been injected — the deterministic kill stand-in.
    pub stop_after: Option<u64>,
    /// Seeded disk-fault plan injected under every durable write
    /// (default: none). Output-neutral: deliberately excluded from the
    /// config hash so a no-fault resume can load checkpoints a faulted
    /// run committed.
    pub disk_faults: DiskFaultPlan,
}

/// Why a watch run could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchError {
    /// Invalid [`WatchOptions`] combination.
    Options(String),
    /// Checkpoint persistence failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for WatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchError::Options(msg) => write!(f, "watch options: {msg}"),
            WatchError::Checkpoint(e) => write!(f, "watch checkpoint: {e}"),
        }
    }
}

impl std::error::Error for WatchError {}

// ---------------------------------------------------------------------------
// Counters and metrics

/// Conservation-checked stage counters. Every event the stream injects
/// is accounted for exactly once; see [`WatchCounters::reconciles`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchCounters {
    /// Events pulled from the generator (the watermark).
    pub injected: u64,
    /// Events accepted into the ingest queue.
    pub accepted: u64,
    /// Registrations dropped at a full ingest queue.
    pub dropped_registrations: u64,
    /// Deregistrations dropped at a full ingest queue.
    pub dropped_churn: u64,
    /// Feed updates dropped at a full ingest queue.
    pub dropped_feed: u64,
    /// Events fully processed by the detect stage.
    pub processed: u64,
    /// Processed registrations.
    pub registrations: u64,
    /// Deregistrations that removed a tracked candidate.
    pub churn_hits: u64,
    /// Deregistrations for domains we were not tracking.
    pub churn_misses: u64,
    /// Feed updates naming a tracked candidate (the feed confirmed us).
    pub feed_hits: u64,
    /// Feed updates for domains we were not tracking.
    pub feed_misses: u64,
    /// Registrations the detector classified as squatting.
    pub detected: u64,
    /// Detect-stage stalls on a full candidate queue (the stalled batch
    /// tail is retried next tick, never dropped).
    pub detect_stalls: u64,
    /// Candidates discarded before their first crawl because the domain
    /// was deregistered while still queued.
    pub purged_candidates: u64,
    /// Candidates discarded at sweep time because the domain was
    /// already tracked or already in the sweep batch.
    pub duplicate_candidates: u64,
    /// Jobs submitted to the crawler (first crawls + re-crawls).
    pub crawl_jobs: u64,
    /// First crawls of fresh candidates.
    pub first_crawls: u64,
    /// Scheduled re-crawls of tracked candidates.
    pub recrawls: u64,
    /// Fresh candidates found live (tracked from then on).
    pub live_found: u64,
    /// Fresh candidates found dead.
    pub dead_found: u64,
    /// Tracked candidates that went dead on a re-crawl (takedown).
    pub takedowns: u64,
    /// Tracked candidates removed by a deregistration event.
    pub churn_takedowns: u64,
    /// Tracked candidates whose age crossed their blacklist lag.
    pub blacklisted: u64,
}

impl WatchCounters {
    /// Total events dropped at ingest.
    pub fn dropped(&self) -> u64 {
        self.dropped_registrations + self.dropped_churn + self.dropped_feed
    }

    /// The conservation identities, given the final queue depths:
    ///
    /// * injected == accepted + dropped (ingest accounting),
    /// * accepted == processed + ingest backlog (detect accounting),
    /// * processed == per-kind processed counts,
    /// * detected == first crawls + purged + duplicates + candidate
    ///   backlog (candidate accounting),
    /// * crawl jobs == first crawls + re-crawls.
    ///
    /// Checked declaratively against the exported telemetry
    /// (`squatphi_telemetry::invariants::watch_invariants`).
    pub fn reconciles(&self, ingest_depth: usize, candidate_depth: usize) -> bool {
        self.violations(ingest_depth, candidate_depth).is_empty()
    }

    /// The violated identities, if any — the structured report behind
    /// [`WatchCounters::reconciles`].
    pub fn violations(
        &self,
        ingest_depth: usize,
        candidate_depth: usize,
    ) -> Vec<squatphi_telemetry::Violation> {
        let reg = squatphi_telemetry::Registry::new();
        let watch = reg.scope("watch");
        self.export(&watch.scope("counters"));
        let queues = watch.scope("queues");
        queues.set_u64("ingest_depth", ingest_depth as u64);
        queues.set_u64("candidate_depth", candidate_depth as u64);
        squatphi_telemetry::invariants::watch_invariants()
            .check_all(&reg.snapshot())
            .err()
            .unwrap_or_default()
    }

    /// Publishes the counters into a telemetry scope (canonically
    /// `watch.counters`), in declaration order under sorted names.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        for (name, value) in self.fields() {
            scope.set_u64(name, value);
        }
    }

    /// Field names and values in declaration (JSON) order — the single
    /// source for export and encoding.
    fn fields(&self) -> [(&'static str, u64); 23] {
        [
            ("injected", self.injected),
            ("accepted", self.accepted),
            ("dropped_registrations", self.dropped_registrations),
            ("dropped_churn", self.dropped_churn),
            ("dropped_feed", self.dropped_feed),
            ("processed", self.processed),
            ("registrations", self.registrations),
            ("churn_hits", self.churn_hits),
            ("churn_misses", self.churn_misses),
            ("feed_hits", self.feed_hits),
            ("feed_misses", self.feed_misses),
            ("detected", self.detected),
            ("detect_stalls", self.detect_stalls),
            ("purged_candidates", self.purged_candidates),
            ("duplicate_candidates", self.duplicate_candidates),
            ("crawl_jobs", self.crawl_jobs),
            ("first_crawls", self.first_crawls),
            ("recrawls", self.recrawls),
            ("live_found", self.live_found),
            ("dead_found", self.dead_found),
            ("takedowns", self.takedowns),
            ("churn_takedowns", self.churn_takedowns),
            ("blacklisted", self.blacklisted),
        ]
    }
}

/// One rolling metrics snapshot, emitted after every crawl sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchMetrics {
    /// Tick the snapshot was taken at.
    pub tick: u64,
    /// Events injected so far.
    pub injected: u64,
    /// Events processed so far.
    pub processed: u64,
    /// Ingest queue depth.
    pub ingest_depth: u64,
    /// Candidate queue depth.
    pub candidate_depth: u64,
    /// Drops so far.
    pub dropped: u64,
    /// Detect stalls so far.
    pub stalls: u64,
    /// Squatting registrations detected so far.
    pub detected: u64,
    /// Currently tracked live candidates.
    pub tracked: u64,
    /// Tracked candidates blacklists have caught so far.
    pub blacklisted: u64,
}

/// What a watch run produced. Everything here is deterministic —
/// [`WatchSummary::to_json`] is byte-identical for identical
/// `(config, stop point)` at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchSummary {
    /// Stream + world seed.
    pub seed: u64,
    /// Configured stream length.
    pub events: u64,
    /// Whether the run stopped early at `stop_after`.
    pub interrupted: bool,
    /// Next event index (events injected so far).
    pub watermark: u64,
    /// Final tick.
    pub tick: u64,
    /// Order-stable digest of the full daemon state (queues, tracked
    /// set, schedule, counters, transport, metrics history). A resumed
    /// run must reproduce the uninterrupted run's value exactly.
    pub state_fingerprint: u64,
    /// Stage counters.
    pub counters: WatchCounters,
    /// Final ingest backlog.
    pub ingest_depth: u64,
    /// Final candidate backlog.
    pub candidate_depth: u64,
    /// Tracked live candidates at shutdown.
    pub tracked: u64,
    /// Re-crawls still scheduled at shutdown.
    pub pending_recrawls: u64,
    /// Accumulated transport-stack counters over every sweep.
    pub transport: TransportSnapshot,
    /// Rolling per-sweep metrics history.
    pub metrics: Vec<WatchMetrics>,
    /// Whether this run restored state from a checkpoint. Deliberately
    /// not part of [`WatchSummary::to_json`]: a resumed run's JSON must
    /// stay byte-identical to the uninterrupted run's.
    pub resumed: bool,
    /// Damage classification when the resume had to skip damaged
    /// generations and recover from an older one (e.g. `g4 torn`).
    /// Surfaced on stderr by the CLI, never in the JSON summary.
    pub recovered_checkpoint: Option<String>,
    /// Durable-store ledger for the run (zero when persistence is off).
    /// Exported under `durability.` in [`WatchSummary::telemetry`];
    /// excluded from the JSON summary for the same byte-identity reason.
    pub durability: DurabilityStats,
}

impl WatchSummary {
    /// Whether the queue accounting reconciles exactly.
    pub fn reconciles(&self) -> bool {
        self.counters
            .reconciles(self.ingest_depth as usize, self.candidate_depth as usize)
    }

    /// One-line human report.
    pub fn report_line(&self) -> String {
        let c = &self.counters;
        format!(
            "{} events ({} dropped, {} stalls), {} detected, {} live, {} takedowns, {} blacklisted [{}]",
            c.injected,
            c.dropped(),
            c.detect_stalls,
            c.detected,
            self.tracked,
            c.takedowns + c.churn_takedowns,
            c.blacklisted,
            if self.reconciles() { "reconciled" } else { "UNRECONCILED" },
        )
    }

    /// Exports everything into a fresh telemetry registry: run header and
    /// queue gauges under `watch.`, stage counters under `watch.counters.`,
    /// transport counters under `watch.transport.`, and the per-sweep
    /// history length under `watch.sweeps`. [`WatchSummary::to_json`] reads
    /// back from the snapshot of this registry, so the summary is a typed
    /// view over it, not a parallel bookkeeping system.
    pub fn telemetry(&self) -> squatphi_telemetry::Registry {
        let reg = squatphi_telemetry::Registry::new();
        let watch = reg.scope("watch");
        watch.set_u64("seed", self.seed);
        watch.set_u64("events", self.events);
        watch.set_bool("interrupted", self.interrupted);
        watch.set_u64("watermark", self.watermark);
        watch.set_u64("tick", self.tick);
        watch.set_u64("state_fingerprint", self.state_fingerprint);
        watch.set_bool("reconciles", self.reconciles());
        watch.set_u64("sweeps", self.metrics.len() as u64);
        self.counters.export(&watch.scope("counters"));
        let queues = watch.scope("queues");
        queues.set_u64("ingest_depth", self.ingest_depth);
        queues.set_u64("candidate_depth", self.candidate_depth);
        queues.set_u64("tracked", self.tracked);
        queues.set_u64("pending_recrawls", self.pending_recrawls);
        self.transport.export(&watch.scope("transport"));
        self.durability.export(&reg.scope("durability"));
        reg
    }

    /// Deterministic pretty-printed JSON (stable field order, no
    /// wall-clock anywhere), rendered by the shared telemetry encoder
    /// from the exported registry snapshot. Equivalent to
    /// [`WatchSummary::to_json_with_timings`]`(false)`.
    pub fn to_json(&self) -> String {
        self.to_json_with_timings(false)
    }

    /// Like [`WatchSummary::to_json`] but with the workspace-wide
    /// `--timings` rule applied explicitly: unless `timings` is set, any
    /// timing-named entry in the exported snapshot is zeroed. The watch
    /// registry holds no wall-clock values today (`backoff_ns` is virtual
    /// simulated-clock time, deliberately not a timing name), so both
    /// forms currently render identically — the flag exists so every
    /// `--json` surface obeys one rule, including any timing metric a
    /// later change exports here.
    pub fn to_json_with_timings(&self, timings: bool) -> String {
        use squatphi_telemetry::Json;
        let mut snap = self.telemetry().snapshot();
        if !timings {
            snap.strip_timings();
        }
        let mut header = Json::obj();
        for leaf in [
            "seed",
            "events",
            "interrupted",
            "watermark",
            "tick",
            "state_fingerprint",
            "reconciles",
        ] {
            header.push(leaf, snap.json_value(&format!("watch.{leaf}")));
        }
        let mut counters = Json::obj();
        for (name, _) in self.counters.fields() {
            counters.push(name, snap.json_value(&format!("watch.counters.{name}")));
        }
        let mut queues = Json::obj();
        for leaf in [
            "ingest_depth",
            "candidate_depth",
            "tracked",
            "pending_recrawls",
        ] {
            queues.push(leaf, snap.json_value(&format!("watch.queues.{leaf}")));
        }
        let mut transport = Json::obj();
        for leaf in ["attempts", "successes", "retries", "backoff_ns"] {
            transport.push(leaf, snap.json_value(&format!("watch.transport.{leaf}")));
        }
        transport.push(
            "errors",
            Json::Arr(
                ["timeout", "refused", "truncated", "injected"]
                    .iter()
                    .map(|class| snap.json_value(&format!("watch.transport.errors.{class}")))
                    .collect(),
            ),
        );
        for leaf in ["breaker_trips", "breaker_short_circuits"] {
            transport.push(leaf, snap.json_value(&format!("watch.transport.{leaf}")));
        }
        let mut doc = Json::obj();
        doc.push("watch", header);
        doc.push("counters", counters);
        doc.push("queues", queues);
        doc.push("transport", transport);
        doc.push(
            "metrics",
            Json::Arr(self.metrics.iter().map(WatchMetrics::to_json).collect()),
        );
        let mut out = doc.render();
        out.push('\n');
        out
    }
}

/// Compact single-line counters object for the checkpoint format (the
/// checkpoint parser expects one line; field order comes from
/// [`WatchCounters::fields`]).
fn counters_json(c: &WatchCounters) -> String {
    let body = c
        .fields()
        .iter()
        .map(|(name, value)| format!("\"{name}\": {value}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{body}}}")
}

impl WatchMetrics {
    /// One per-sweep snapshot as a JSON object (shared-encoder leaf of
    /// [`WatchSummary::to_json`]'s `metrics` array).
    pub fn to_json(&self) -> squatphi_telemetry::Json {
        use squatphi_telemetry::Json;
        let mut obj = Json::obj();
        obj.push("tick", Json::U64(self.tick));
        obj.push("injected", Json::U64(self.injected));
        obj.push("processed", Json::U64(self.processed));
        obj.push("ingest_depth", Json::U64(self.ingest_depth));
        obj.push("candidate_depth", Json::U64(self.candidate_depth));
        obj.push("dropped", Json::U64(self.dropped));
        obj.push("stalls", Json::U64(self.stalls));
        obj.push("detected", Json::U64(self.detected));
        obj.push("tracked", Json::U64(self.tracked));
        obj.push("blacklisted", Json::U64(self.blacklisted));
        obj
    }
}

// ---------------------------------------------------------------------------
// Internal state

/// A detected squatting registration waiting for its first crawl.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    seq: u64,
    domain: String,
    brand: usize,
    squat_type: SquatType,
    ip: Ipv4Addr,
    detected_tick: u64,
}

/// A candidate confirmed live, under periodic re-crawl.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Tracked {
    brand: usize,
    squat_type: SquatType,
    ip: Ipv4Addr,
    first_live_tick: u64,
    crawls: u64,
    blacklist_day: Option<u32>,
    blacklisted: bool,
}

#[derive(Debug, Default)]
struct WatchState {
    next_seq: u64,
    tick: u64,
    last_checkpoint: u64,
    ingest: VecDeque<u64>,
    candidates: VecDeque<Candidate>,
    tracked: BTreeMap<String, Tracked>,
    scheduler: RecrawlScheduler,
    counters: WatchCounters,
    transport: TransportSnapshot,
    metrics: Vec<WatchMetrics>,
}

impl WatchState {
    /// Order-stable digest over everything that defines the daemon's
    /// progress. Checkpoint bookkeeping (`last_checkpoint`) is excluded
    /// so interrupted-and-resumed runs digest identically to
    /// uninterrupted ones.
    fn fingerprint(&self) -> u64 {
        let mut h = FINGERPRINT_SEED;
        h = mix_u64(h, self.next_seq);
        h = mix_u64(h, self.tick);
        for &seq in &self.ingest {
            h = mix_u64(h, seq);
        }
        for c in &self.candidates {
            h = mix_u64(h, c.seq);
            h = mix_str(h, &c.domain);
            h = mix_u64(h, c.brand as u64);
            h = mix_str(h, c.squat_type.name());
            h = mix(h, &c.ip.octets());
            h = mix_u64(h, c.detected_tick);
        }
        for (domain, t) in &self.tracked {
            h = mix_str(h, domain);
            h = mix_u64(h, t.brand as u64);
            h = mix_str(h, t.squat_type.name());
            h = mix(h, &t.ip.octets());
            h = mix_u64(h, t.first_live_tick);
            h = mix_u64(h, t.crawls);
            h = mix_u64(h, t.blacklist_day.map_or(u64::MAX, u64::from));
            h = mix_u64(h, u64::from(t.blacklisted));
        }
        for (due, domain) in self.scheduler.entries() {
            h = mix_u64(h, due);
            h = mix_str(h, domain);
        }
        let c = &self.counters;
        for v in [
            c.injected,
            c.accepted,
            c.dropped_registrations,
            c.dropped_churn,
            c.dropped_feed,
            c.processed,
            c.registrations,
            c.churn_hits,
            c.churn_misses,
            c.feed_hits,
            c.feed_misses,
            c.detected,
            c.detect_stalls,
            c.purged_candidates,
            c.duplicate_candidates,
            c.crawl_jobs,
            c.first_crawls,
            c.recrawls,
            c.live_found,
            c.dead_found,
            c.takedowns,
            c.churn_takedowns,
            c.blacklisted,
        ] {
            h = mix_u64(h, v);
        }
        let t = &self.transport;
        for v in [
            t.attempts,
            t.successes,
            t.retries,
            t.backoff_ns,
            t.errors[0],
            t.errors[1],
            t.errors[2],
            t.errors[3],
            t.breaker_trips,
            t.breaker_short_circuits,
        ] {
            h = mix_u64(h, v);
        }
        for m in &self.metrics {
            for v in [
                m.tick,
                m.injected,
                m.processed,
                m.ingest_depth,
                m.candidate_depth,
                m.dropped,
                m.stalls,
                m.detected,
                m.tracked,
                m.blacklisted,
            ] {
                h = mix_u64(h, v);
            }
        }
        h
    }
}

fn mix(h: u64, bytes: &[u8]) -> u64 {
    content_key(h, bytes)
}

fn mix_u64(h: u64, v: u64) -> u64 {
    mix(h, &v.to_le_bytes())
}

fn mix_str(h: u64, s: &str) -> u64 {
    mix(mix_u64(h, s.len() as u64), s.as_bytes())
}

// ---------------------------------------------------------------------------
// Service entry point

impl SquatPhi {
    /// Runs the streaming watch daemon to completion (or to
    /// `opts.stop_after`), returning the deterministic run summary.
    ///
    /// The daemon ingests `config.events()` seeded feed events through
    /// bounded ingest → detect → crawl stages, re-crawling live
    /// candidates every `config.crawl_cadence()` ticks. With
    /// `opts.checkpoint_dir` set, the watermark state is persisted every
    /// `config.checkpoint_every()` events and — with `opts.resume` —
    /// restored, reproducing the uninterrupted run's
    /// [`WatchSummary::state_fingerprint`] exactly.
    pub fn try_watch(
        config: &WatchConfig,
        opts: &WatchOptions,
    ) -> Result<WatchSummary, WatchError> {
        if opts.resume && opts.checkpoint_dir.is_none() {
            return Err(WatchError::Options(
                "resume requires a checkpoint directory".into(),
            ));
        }
        let store = match &opts.checkpoint_dir {
            Some(dir) => Some(
                WatchStore::open(dir, config, &opts.disk_faults).map_err(WatchError::Checkpoint)?,
            ),
            None => None,
        };
        let registry = BrandRegistry::with_size(config.brands);
        let mut runner = Runner {
            detector: SquatDetector::new(&registry),
            stream: EventStream::new(&config.stream, &registry),
            registry,
            blacklists: Blacklists::new(),
            clock: VirtualClock::new(),
            config,
            state: WatchState::default(),
        };
        let mut resumed = false;
        let mut recovered_checkpoint = None;
        if opts.resume {
            if let Some(s) = &store {
                match s.load().map_err(WatchError::Checkpoint)? {
                    Loaded::Value(loaded) => {
                        runner.state = loaded;
                        resumed = true;
                    }
                    Loaded::Recovered(loaded, detail) => {
                        runner.state = loaded;
                        resumed = true;
                        recovered_checkpoint = Some(detail);
                    }
                    Loaded::Missing | Loaded::Stale => {}
                }
            }
        }
        runner
            .clock
            .advance(Duration::from_nanos(runner.state.tick * TICK_NANOS));

        let mut interrupted = false;
        loop {
            if runner.state.next_seq >= config.events
                && runner.state.ingest.is_empty()
                && runner.state.candidates.is_empty()
            {
                break;
            }
            runner.step();
            if let Some(s) = &store {
                if runner.state.next_seq - runner.state.last_checkpoint >= config.checkpoint_every {
                    runner.state.last_checkpoint = runner.state.next_seq;
                    s.save(&runner.state).map_err(WatchError::Checkpoint)?;
                }
            }
            if let Some(n) = opts.stop_after {
                if runner.state.next_seq >= n {
                    if let Some(s) = &store {
                        runner.state.last_checkpoint = runner.state.next_seq;
                        s.save(&runner.state).map_err(WatchError::Checkpoint)?;
                    }
                    interrupted = true;
                    break;
                }
            }
        }
        if let Some(s) = &store {
            if !interrupted {
                runner.state.last_checkpoint = runner.state.next_seq;
                s.save(&runner.state).map_err(WatchError::Checkpoint)?;
            }
        }

        let durability = store.as_ref().map(WatchStore::stats).unwrap_or_default();
        let state = runner.state;
        Ok(WatchSummary {
            seed: config.seed,
            events: config.events,
            interrupted,
            watermark: state.next_seq,
            tick: state.tick,
            state_fingerprint: state.fingerprint(),
            ingest_depth: state.ingest.len() as u64,
            candidate_depth: state.candidates.len() as u64,
            tracked: state.tracked.len() as u64,
            pending_recrawls: state.scheduler.len() as u64,
            counters: state.counters,
            transport: state.transport,
            metrics: state.metrics,
            resumed,
            recovered_checkpoint,
            durability,
        })
    }
}

struct Runner<'a> {
    config: &'a WatchConfig,
    registry: BrandRegistry,
    detector: SquatDetector,
    stream: EventStream,
    blacklists: Blacklists,
    clock: VirtualClock,
    state: WatchState,
}

impl Runner<'_> {
    /// One tick: advance the clock, ingest due events, classify a
    /// batch, and sweep the crawler on cadence boundaries.
    fn step(&mut self) {
        self.state.tick += 1;
        self.clock.advance(Duration::from_nanos(TICK_NANOS));
        self.ingest();
        self.detect();
        if self.state.tick.is_multiple_of(self.config.crawl_cadence) {
            self.sweep();
            self.snapshot_metrics();
        }
    }

    /// Pulls every event whose virtual timestamp falls inside the
    /// current tick window. The queue is bounded: overflow is counted
    /// per kind and dropped (the feed does not wait for us).
    fn ingest(&mut self) {
        let now = self.clock.now().as_nanos() as u64;
        while self.state.next_seq < self.config.events {
            let ev = self.stream.event(self.state.next_seq);
            if ev.at_nanos >= now {
                break;
            }
            self.state.next_seq += 1;
            self.state.counters.injected += 1;
            if self.state.ingest.len() < self.config.ingest_capacity {
                self.state.ingest.push_back(ev.seq);
                self.state.counters.accepted += 1;
            } else {
                match ev.event {
                    StreamEvent::Registration { .. } => {
                        self.state.counters.dropped_registrations += 1
                    }
                    StreamEvent::Deregistration { .. } => self.state.counters.dropped_churn += 1,
                    StreamEvent::FeedUpdate { .. } => self.state.counters.dropped_feed += 1,
                }
            }
        }
    }

    /// Classifies up to `detect_batch` queued events. Registration
    /// matches go to the bounded candidate queue; when it fills, the
    /// unapplied batch tail goes back to the head of the ingest queue
    /// (a stall, not a drop) and is retried next tick.
    fn detect(&mut self) {
        let take = self.config.detect_batch.min(self.state.ingest.len());
        if take == 0 {
            return;
        }
        let batch: Vec<u64> = self.state.ingest.drain(..take).collect();
        let events: Vec<StreamEvent> = batch
            .iter()
            .map(|&seq| self.stream.event(seq).event)
            .collect();
        let matches = self.classify_batch(&events);

        let mut stalled_at = None;
        for (i, event) in events.iter().enumerate() {
            match event {
                StreamEvent::Registration { domain, ip } => {
                    if matches[i].is_some()
                        && self.state.candidates.len() >= self.config.candidate_capacity
                    {
                        self.state.counters.detect_stalls += 1;
                        stalled_at = Some(i);
                        break;
                    }
                    if let Some(m) = &matches[i] {
                        self.state.candidates.push_back(Candidate {
                            seq: batch[i],
                            domain: domain.clone(),
                            brand: m.brand,
                            squat_type: m.squat_type,
                            ip: *ip,
                            detected_tick: self.state.tick,
                        });
                        self.state.counters.detected += 1;
                    }
                    self.state.counters.processed += 1;
                    self.state.counters.registrations += 1;
                }
                StreamEvent::Deregistration { domain } => {
                    self.state.counters.processed += 1;
                    if self.state.tracked.remove(domain).is_some() {
                        self.state.scheduler.cancel(domain);
                        self.state.counters.churn_hits += 1;
                        self.state.counters.churn_takedowns += 1;
                    } else {
                        self.state.counters.churn_misses += 1;
                    }
                    let before = self.state.candidates.len();
                    self.state.candidates.retain(|c| c.domain != *domain);
                    self.state.counters.purged_candidates +=
                        (before - self.state.candidates.len()) as u64;
                }
                StreamEvent::FeedUpdate { domain } => {
                    self.state.counters.processed += 1;
                    if self.state.tracked.contains_key(domain) {
                        self.state.counters.feed_hits += 1;
                    } else {
                        self.state.counters.feed_misses += 1;
                    }
                }
            }
        }
        if let Some(i) = stalled_at {
            for &seq in batch[i..].iter().rev() {
                self.state.ingest.push_front(seq);
            }
        }
    }

    /// Parallel, order-stable classification of a batch: a pure map
    /// chunked over the worker threads, so the thread count can never
    /// change the result.
    fn classify_batch(&self, events: &[StreamEvent]) -> Vec<Option<SquatMatch>> {
        let classify = |event: &StreamEvent| -> Option<SquatMatch> {
            let StreamEvent::Registration { domain, .. } = event else {
                return None;
            };
            let parsed = DomainName::parse(domain).ok()?;
            self.detector.classify(&parsed)
        };
        let threads = self.config.threads.min(events.len()).max(1);
        if threads == 1 {
            return events.iter().map(classify).collect();
        }
        let mut out: Vec<Option<SquatMatch>> = vec![None; events.len()];
        let chunk = events.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            for (slots, evs) in out.chunks_mut(chunk).zip(events.chunks(chunk)) {
                s.spawn(move |_| {
                    for (slot, ev) in slots.iter_mut().zip(evs) {
                        *slot = classify(ev);
                    }
                });
            }
        })
        .expect("detect worker panicked");
        out
    }

    /// A crawl sweep: new candidates (guaranteed at least half the
    /// batch, so backlog always drains) plus due re-crawls, pushed
    /// through the tower-style transport stack against a per-sweep
    /// [`WebWorld`]. One sweep models one feed day for blacklist lag.
    fn sweep(&mut self) {
        let mut jobs: Vec<(String, usize, SquatType)> = Vec::new();
        let mut job_ips: Vec<Ipv4Addr> = Vec::new();
        let mut in_batch: HashSet<String> = HashSet::new();

        let new_quota = self.config.crawl_batch.div_ceil(2);
        while jobs.len() < new_quota {
            let Some(c) = self.state.candidates.pop_front() else {
                break;
            };
            if self.state.tracked.contains_key(&c.domain) || in_batch.contains(&c.domain) {
                self.state.counters.duplicate_candidates += 1;
                continue;
            }
            self.state.counters.first_crawls += 1;
            in_batch.insert(c.domain.clone());
            jobs.push((c.domain, c.brand, c.squat_type));
            job_ips.push(c.ip);
        }
        let fresh = jobs.len();
        let due = self
            .state
            .scheduler
            .due(self.state.tick, self.config.crawl_batch - jobs.len());
        for domain in due {
            let t = &self.state.tracked[&domain];
            self.state.counters.recrawls += 1;
            jobs.push((domain.clone(), t.brand, t.squat_type));
            job_ips.push(t.ip);
        }

        if !jobs.is_empty() {
            let records = self.crawl(&jobs, &job_ips);
            for (i, (record, (domain, brand, squat_type))) in records.iter().zip(&jobs).enumerate()
            {
                self.state.counters.crawl_jobs += 1;
                let live = record.live();
                if i < fresh {
                    if live {
                        self.state.counters.live_found += 1;
                        let lag = self.blacklists.detection_day(
                            domain,
                            PhishKind::Squatting,
                            BLACKLIST_HORIZON_DAYS,
                        );
                        self.state.tracked.insert(
                            domain.clone(),
                            Tracked {
                                brand: *brand,
                                squat_type: *squat_type,
                                ip: job_ips[i],
                                first_live_tick: self.state.tick,
                                crawls: 1,
                                blacklist_day: lag,
                                blacklisted: false,
                            },
                        );
                        self.state
                            .scheduler
                            .schedule(self.state.tick + self.config.crawl_cadence, domain);
                    } else {
                        self.state.counters.dead_found += 1;
                    }
                } else if live {
                    let entry = self
                        .state
                        .tracked
                        .get_mut(domain)
                        .expect("re-crawled domains stay tracked until this pass");
                    entry.crawls += 1;
                    self.state
                        .scheduler
                        .schedule(self.state.tick + self.config.crawl_cadence, domain);
                } else {
                    self.state.tracked.remove(domain);
                    self.state.counters.takedowns += 1;
                }
            }
        }

        // Blacklist-lag aging: one sweep == one day of feed age.
        let cadence = self.config.crawl_cadence;
        let tick = self.state.tick;
        for t in self.state.tracked.values_mut() {
            if t.blacklisted {
                continue;
            }
            let age_days = (tick - t.first_live_tick) / cadence;
            if let Some(day) = t.blacklist_day {
                if age_days >= u64::from(day) {
                    t.blacklisted = true;
                    self.state.counters.blacklisted += 1;
                }
            }
        }
    }

    /// Crawls one sweep batch through retry + circuit-breaker
    /// middleware over a per-sweep world. Every layer is deterministic
    /// per host, so worker count never changes the records or the
    /// transport counters.
    fn crawl(
        &mut self,
        jobs: &[(String, usize, SquatType)],
        job_ips: &[Ipv4Addr],
    ) -> Vec<squatphi_crawler::CrawlRecord> {
        let squats: Vec<(String, usize, SquatType, Ipv4Addr)> = jobs
            .iter()
            .zip(job_ips)
            .map(|((d, b, t), ip)| (d.clone(), *b, *t, *ip))
            .collect();
        let world = WebWorld::build(
            &squats,
            &self.registry,
            &WorldConfig {
                phishing_domains: squats.len().div_ceil(4),
                seed: self.config.seed ^ WORLD_SALT,
                ..WorldConfig::default()
            },
        );
        let stack = TransportStack::new(InProcessTransport::new(Arc::new(world)))
            .retry(RetryPolicy::default())
            .breaker(CircuitBreakerPolicy::default())
            .build();
        let sweep_index = self.state.tick / self.config.crawl_cadence;
        let crawl_cfg = CrawlConfig::builder()
            .workers(self.config.threads)
            .retries(1)
            .snapshot((sweep_index % 4) as u8)
            .build()
            .expect("watch crawl config is valid");
        let (records, stats) = crawl_all(jobs, &self.registry, &stack, &crawl_cfg);
        accumulate(&mut self.state.transport, &stats.transport);
        records
    }

    fn snapshot_metrics(&mut self) {
        let c = &self.state.counters;
        self.state.metrics.push(WatchMetrics {
            tick: self.state.tick,
            injected: c.injected,
            processed: c.processed,
            ingest_depth: self.state.ingest.len() as u64,
            candidate_depth: self.state.candidates.len() as u64,
            dropped: c.dropped(),
            stalls: c.detect_stalls,
            detected: c.detected,
            tracked: self.state.tracked.len() as u64,
            blacklisted: c.blacklisted,
        });
    }
}

/// Adds one sweep's transport snapshot into the running totals.
fn accumulate(total: &mut TransportSnapshot, s: &TransportSnapshot) {
    total.attempts += s.attempts;
    total.successes += s.successes;
    total.retries += s.retries;
    total.backoff_ns += s.backoff_ns;
    for i in 0..4 {
        total.errors[i] += s.errors[i];
        total.injected[i] += s.injected[i];
    }
    total.breaker_trips += s.breaker_trips;
    total.breaker_short_circuits += s.breaker_short_circuits;
    total.fetch_deadline_hits += s.fetch_deadline_hits;
    total.crawl_deadline_hits += s.crawl_deadline_hits;
}

// ---------------------------------------------------------------------------
// Watermark checkpoint

/// Canonical watch config hash binding the checkpoint to its run.
fn watch_config_hash(config: &WatchConfig) -> u64 {
    let s = &config.stream;
    let canon = format!(
        "wv{WATCH_VERSION}|brands:{}|seed:{}|events:{}|q:{},{}|batch:{},{}|cadence:{}|stream:{},{},{},{},{},{},{}",
        config.brands,
        config.seed,
        config.events,
        config.ingest_capacity,
        config.candidate_capacity,
        config.detect_batch,
        config.crawl_batch,
        config.crawl_cadence,
        s.seed,
        s.squat_permille,
        s.churn_permille,
        s.feed_permille,
        s.burst,
        s.period_nanos,
        s.intra_nanos,
    );
    content_key(HASH_SEED, canon.as_bytes())
}

/// The watch watermark store: generational `watch.g<N>.ckpt` files per
/// checkpoint directory, persisted through the workspace-wide
/// [`DurableStore`] (checksummed, fsynced, last two generations kept)
/// and invalidated by config-hash mismatch.
struct WatchStore {
    store: DurableStore,
    hash: u64,
}

impl WatchStore {
    fn open(
        dir: &Path,
        config: &WatchConfig,
        disk_faults: &DiskFaultPlan,
    ) -> Result<Self, CheckpointError> {
        let hash = watch_config_hash(config);
        let store = DurableStore::open(dir, hash, vfs_for(disk_faults)).map_err(store_err)?;
        Ok(WatchStore { store, hash })
    }

    /// The durable-state ledger for this run's checkpoint directory.
    fn stats(&self) -> DurabilityStats {
        self.store.stats()
    }

    fn save(&self, state: &WatchState) -> Result<(), CheckpointError> {
        let ingest = state
            .ingest
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let candidates = state
            .candidates
            .iter()
            .map(|c| {
                let o = c.ip.octets();
                format!(
                    "{{\"seq\": {}, \"domain\": \"{}\", \"brand\": {}, \"type\": \"{}\", \"ip\": [{}, {}, {}, {}], \"detected_tick\": {}}}",
                    c.seq,
                    esc(&c.domain),
                    c.brand,
                    c.squat_type.name(),
                    o[0],
                    o[1],
                    o[2],
                    o[3],
                    c.detected_tick,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let tracked = state
            .tracked
            .iter()
            .map(|(domain, t)| {
                let o = t.ip.octets();
                format!(
                    "{{\"domain\": \"{}\", \"brand\": {}, \"type\": \"{}\", \"ip\": [{}, {}, {}, {}], \"first_live_tick\": {}, \"crawls\": {}, \"blacklist_day\": {}, \"blacklisted\": {}}}",
                    esc(domain),
                    t.brand,
                    t.squat_type.name(),
                    o[0],
                    o[1],
                    o[2],
                    o[3],
                    t.first_live_tick,
                    t.crawls,
                    t.blacklist_day.map_or("null".to_string(), |d| d.to_string()),
                    u8::from(t.blacklisted),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let schedule = state
            .scheduler
            .entries()
            .map(|(due, domain)| format!("{{\"due\": {due}, \"domain\": \"{}\"}}", esc(domain)))
            .collect::<Vec<_>>()
            .join(",\n");
        let metrics = state
            .metrics
            .iter()
            .map(|m| {
                format!(
                    "{{\"tick\": {}, \"injected\": {}, \"processed\": {}, \"ingest_depth\": {}, \"candidate_depth\": {}, \"dropped\": {}, \"stalls\": {}, \"detected\": {}, \"tracked\": {}, \"blacklisted\": {}}}",
                    m.tick,
                    m.injected,
                    m.processed,
                    m.ingest_depth,
                    m.candidate_depth,
                    m.dropped,
                    m.stalls,
                    m.detected,
                    m.tracked,
                    m.blacklisted,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let t = &state.transport;
        let body = format!(
            "{{\n\"version\": {WATCH_VERSION},\n\"config_hash\": {},\n\"next_seq\": {},\n\"tick\": {},\n\"last_checkpoint\": {},\n\"counters\": {},\n\"transport\": {{\"attempts\": {}, \"successes\": {}, \"retries\": {}, \"backoff_ns\": {}, \"errors\": [{}, {}, {}, {}], \"injected\": [{}, {}, {}, {}], \"breaker_trips\": {}, \"breaker_short_circuits\": {}, \"fetch_deadline_hits\": {}, \"crawl_deadline_hits\": {}}},\n\"ingest\": [{}],\n\"candidates\": [\n{}\n],\n\"tracked\": [\n{}\n],\n\"schedule\": [\n{}\n],\n\"metrics\": [\n{}\n]\n}}\n",
            self.hash,
            state.next_seq,
            state.tick,
            state.last_checkpoint,
            counters_json(&state.counters),
            t.attempts,
            t.successes,
            t.retries,
            t.backoff_ns,
            t.errors[0],
            t.errors[1],
            t.errors[2],
            t.errors[3],
            t.injected[0],
            t.injected[1],
            t.injected[2],
            t.injected[3],
            t.breaker_trips,
            t.breaker_short_circuits,
            t.fetch_deadline_hits,
            t.crawl_deadline_hits,
            ingest,
            candidates,
            tracked,
            schedule,
            metrics,
        );
        self.store
            .save("watch", &body)
            .map(|_generation| ())
            .map_err(store_err)
    }

    /// Loads the newest verifiable watermark generation. Missing and
    /// stale outcomes start the daemon fresh; damage with a surviving
    /// older generation recovers (the run re-derives the lost tail
    /// deterministically); damage with no survivor is a structured
    /// [`CheckpointError::Unrecoverable`], never a silent cold start.
    fn load(&self) -> Result<Loaded<WatchState>, CheckpointError> {
        let outcome = self
            .store
            .load_with("watch", |body| {
                json::parse(body).ok().and_then(|v| decode_state(&v))
            })
            .map_err(store_err)?;
        Ok(match outcome {
            LoadOutcome::Missing => Loaded::Missing,
            LoadOutcome::Stale { .. } => Loaded::Stale,
            LoadOutcome::Valid(v) => Loaded::Value(v),
            LoadOutcome::Recovered { value, skipped, .. } => {
                Loaded::Recovered(value, render_classes(&skipped))
            }
            LoadOutcome::Unrecoverable { classes } => {
                return Err(CheckpointError::Unrecoverable {
                    name: "watch".to_string(),
                    dir: self.store.dir().display().to_string(),
                    detail: render_classes(&classes),
                })
            }
        })
    }
}

fn decode_state(v: &json::Value) -> Option<WatchState> {
    let mut state = WatchState {
        next_seq: v.get("next_seq")?.as_u64()?,
        tick: v.get("tick")?.as_u64()?,
        last_checkpoint: v.get("last_checkpoint")?.as_u64()?,
        ..WatchState::default()
    };
    let c = v.get("counters")?;
    let n = |key: &str| c.get(key).and_then(json::Value::as_u64);
    state.counters = WatchCounters {
        injected: n("injected")?,
        accepted: n("accepted")?,
        dropped_registrations: n("dropped_registrations")?,
        dropped_churn: n("dropped_churn")?,
        dropped_feed: n("dropped_feed")?,
        processed: n("processed")?,
        registrations: n("registrations")?,
        churn_hits: n("churn_hits")?,
        churn_misses: n("churn_misses")?,
        feed_hits: n("feed_hits")?,
        feed_misses: n("feed_misses")?,
        detected: n("detected")?,
        detect_stalls: n("detect_stalls")?,
        purged_candidates: n("purged_candidates")?,
        duplicate_candidates: n("duplicate_candidates")?,
        crawl_jobs: n("crawl_jobs")?,
        first_crawls: n("first_crawls")?,
        recrawls: n("recrawls")?,
        live_found: n("live_found")?,
        dead_found: n("dead_found")?,
        takedowns: n("takedowns")?,
        churn_takedowns: n("churn_takedowns")?,
        blacklisted: n("blacklisted")?,
    };
    let t = v.get("transport")?;
    let tn = |key: &str| t.get(key).and_then(json::Value::as_u64);
    state.transport = TransportSnapshot {
        attempts: tn("attempts")?,
        successes: tn("successes")?,
        retries: tn("retries")?,
        backoff_ns: tn("backoff_ns")?,
        errors: decode_u64x4(t.get("errors")?)?,
        injected: decode_u64x4(t.get("injected")?)?,
        breaker_trips: tn("breaker_trips")?,
        breaker_short_circuits: tn("breaker_short_circuits")?,
        fetch_deadline_hits: tn("fetch_deadline_hits")?,
        crawl_deadline_hits: tn("crawl_deadline_hits")?,
    };
    for seq in v.get("ingest")?.as_arr()? {
        state.ingest.push_back(seq.as_u64()?);
    }
    for c in v.get("candidates")?.as_arr()? {
        state.candidates.push_back(Candidate {
            seq: c.get("seq")?.as_u64()?,
            domain: c.get("domain")?.as_str()?.to_string(),
            brand: c.get("brand")?.as_usize()?,
            squat_type: parse_squat_type(c.get("type")?.as_str()?)?,
            ip: decode_ip(c.get("ip")?)?,
            detected_tick: c.get("detected_tick")?.as_u64()?,
        });
    }
    for t in v.get("tracked")?.as_arr()? {
        let blacklist_day = t.get("blacklist_day")?;
        state.tracked.insert(
            t.get("domain")?.as_str()?.to_string(),
            Tracked {
                brand: t.get("brand")?.as_usize()?,
                squat_type: parse_squat_type(t.get("type")?.as_str()?)?,
                ip: decode_ip(t.get("ip")?)?,
                first_live_tick: t.get("first_live_tick")?.as_u64()?,
                crawls: t.get("crawls")?.as_u64()?,
                blacklist_day: if blacklist_day.is_null() {
                    None
                } else {
                    Some(u32::try_from(blacklist_day.as_u64()?).ok()?)
                },
                blacklisted: t.get("blacklisted")?.as_u64()? != 0,
            },
        );
    }
    for e in v.get("schedule")?.as_arr()? {
        state
            .scheduler
            .schedule(e.get("due")?.as_u64()?, e.get("domain")?.as_str()?);
    }
    for m in v.get("metrics")?.as_arr()? {
        let mn = |key: &str| m.get(key).and_then(json::Value::as_u64);
        state.metrics.push(WatchMetrics {
            tick: mn("tick")?,
            injected: mn("injected")?,
            processed: mn("processed")?,
            ingest_depth: mn("ingest_depth")?,
            candidate_depth: mn("candidate_depth")?,
            dropped: mn("dropped")?,
            stalls: mn("stalls")?,
            detected: mn("detected")?,
            tracked: mn("tracked")?,
            blacklisted: mn("blacklisted")?,
        });
    }
    Some(state)
}

fn decode_u64x4(v: &json::Value) -> Option<[u64; 4]> {
    let arr = v.as_arr()?;
    if arr.len() != 4 {
        return None;
    }
    Some([
        arr[0].as_u64()?,
        arr[1].as_u64()?,
        arr[2].as_u64()?,
        arr[3].as_u64()?,
    ])
}

fn decode_ip(v: &json::Value) -> Option<Ipv4Addr> {
    let arr = v.as_arr()?;
    if arr.len() != 4 {
        return None;
    }
    let octet = |i: usize| arr[i].as_u64().and_then(|n| u8::try_from(n).ok());
    Some(Ipv4Addr::new(octet(0)?, octet(1)?, octet(2)?, octet(3)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WatchConfig {
        WatchConfig::builder()
            .brands(12)
            .seed(41)
            .events(240)
            .ingest_capacity(24)
            .candidate_capacity(8)
            .detect_batch(6)
            .crawl_cadence(3)
            .crawl_batch(6)
            .threads(2)
            .checkpoint_every(32)
            .build()
            .expect("tiny watch config")
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            WatchConfig::builder().ingest_capacity(0).build(),
            Err(WatchConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            WatchConfig::builder().candidate_capacity(0).build(),
            Err(WatchConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            WatchConfig::builder().crawl_cadence(0).build(),
            Err(WatchConfigError::ZeroCadence)
        );
        assert_eq!(
            WatchConfig::builder().detect_batch(0).build(),
            Err(WatchConfigError::ZeroBatch)
        );
        assert_eq!(
            WatchConfig::builder().threads(0).build(),
            Err(WatchConfigError::ZeroWorkers)
        );
        assert_eq!(
            WatchConfig::builder().brands(0).build(),
            Err(WatchConfigError::ZeroBrands)
        );
        assert_eq!(
            WatchConfig::builder().checkpoint_every(0).build(),
            Err(WatchConfigError::ZeroCheckpointCadence)
        );
        for e in [
            WatchConfigError::ZeroQueueCapacity,
            WatchConfigError::ZeroCadence,
            WatchConfigError::ZeroBatch,
            WatchConfigError::ZeroWorkers,
            WatchConfigError::ZeroBrands,
            WatchConfigError::ZeroCheckpointCadence,
        ] {
            assert!(e.to_string().starts_with("watch config:"));
        }
    }

    #[test]
    fn default_config_builds_and_derives_stream_seed() {
        let cfg = WatchConfig::default();
        assert_eq!(cfg.stream().seed, cfg.seed());
        assert!(cfg.ingest_capacity() > 0);
    }

    #[test]
    fn resume_without_dir_is_an_options_error() {
        let opts = WatchOptions {
            resume: true,
            ..WatchOptions::default()
        };
        match SquatPhi::try_watch(&tiny(), &opts) {
            Err(WatchError::Options(msg)) => assert!(msg.contains("checkpoint")),
            other => panic!("expected options error, got {other:?}"),
        }
    }

    #[test]
    fn watch_runs_and_reconciles() {
        let summary = SquatPhi::try_watch(&tiny(), &WatchOptions::default())
            .expect("tiny watch run succeeds");
        assert!(!summary.interrupted);
        assert_eq!(summary.watermark, 240);
        assert!(summary.reconciles(), "{:?}", summary.counters);
        assert!(summary.counters.detected > 0, "no squats detected");
        assert!(summary.counters.live_found > 0, "no live candidates");
        assert!(!summary.metrics.is_empty());
        assert!(summary.report_line().contains("reconciled"));
        // Queues fully drained at shutdown.
        assert_eq!(summary.ingest_depth, 0);
        assert_eq!(summary.candidate_depth, 0);
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let a = SquatPhi::try_watch(&tiny(), &WatchOptions::default()).expect("run a");
        let b = SquatPhi::try_watch(&tiny(), &WatchOptions::default()).expect("run b");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.state_fingerprint, b.state_fingerprint);
    }

    #[test]
    fn stop_after_interrupts_deterministically() {
        let opts = WatchOptions {
            stop_after: Some(100),
            ..WatchOptions::default()
        };
        let a = SquatPhi::try_watch(&tiny(), &opts).expect("interrupted run");
        assert!(a.interrupted);
        assert!(a.watermark >= 100);
        assert!(a.watermark < 240);
        let b = SquatPhi::try_watch(&tiny(), &opts).expect("interrupted run b");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn checkpoint_roundtrips_state() {
        let dir = std::env::temp_dir().join(format!("squatphi-watch-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny();
        let store = WatchStore::open(&dir, &config, &DiskFaultPlan::none()).expect("open store");
        // Build a non-trivial state by running half the stream.
        let opts = WatchOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: Some(120),
            ..WatchOptions::default()
        };
        let partial = SquatPhi::try_watch(&config, &opts).expect("partial run");
        let Loaded::Value(loaded) = store.load().expect("load") else {
            panic!("expected a valid checkpoint");
        };
        assert_eq!(loaded.fingerprint(), partial.state_fingerprint);
        assert!(partial.durability.reconciles());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_checkpoint_is_ignored() {
        let dir = std::env::temp_dir().join(format!("squatphi-watch-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny();
        let opts = WatchOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: Some(60),
            ..WatchOptions::default()
        };
        SquatPhi::try_watch(&config, &opts).expect("seed the checkpoint");
        // A different config must not resume from it.
        let other = WatchConfig::builder()
            .brands(12)
            .seed(42)
            .events(240)
            .build()
            .expect("other config");
        let store = WatchStore::open(&dir, &other, &DiskFaultPlan::none()).expect("open store");
        assert!(matches!(store.load().expect("load"), Loaded::Stale));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Overwrites one on-disk generation with damage, through the same
    /// durable-write path production uses.
    fn corrupt_generation(dir: &Path, name: &str) {
        use squatphi_durability::{RealVfs, Vfs};
        RealVfs
            .write(&dir.join(name), b"{not json")
            .expect("corrupt");
    }

    /// Newest generation on disk for the watch checkpoint.
    fn newest_generation(dir: &Path) -> u64 {
        std::fs::read_dir(dir)
            .expect("read_dir")
            .filter_map(|e| {
                let name = e.ok()?.file_name().to_string_lossy().into_owned();
                let gen = name.strip_prefix("watch.g")?.strip_suffix(".ckpt")?;
                gen.parse::<u64>().ok()
            })
            .max()
            .expect("at least one generation")
    }

    #[test]
    fn damaged_newest_generation_resumes_from_the_previous_and_converges() {
        let dir =
            std::env::temp_dir().join(format!("squatphi-watch-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny();
        let baseline =
            SquatPhi::try_watch(&config, &WatchOptions::default()).expect("uninterrupted run");
        let opts = WatchOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: Some(120),
            ..WatchOptions::default()
        };
        SquatPhi::try_watch(&config, &opts).expect("partial run");
        let newest = newest_generation(&dir);
        assert!(newest >= 2, "cadence 32 over 120 events makes >= 2 gens");
        corrupt_generation(&dir, &format!("watch.g{newest}.ckpt"));
        // Resume to completion: recovery restarts from the older
        // generation and — the run being a pure function of its inputs —
        // still converges on the byte-identical uninterrupted summary.
        let resumed = SquatPhi::try_watch(
            &config,
            &WatchOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..WatchOptions::default()
            },
        )
        .expect("resumed run");
        assert!(resumed.resumed);
        let detail = resumed.recovered_checkpoint.as_deref().unwrap_or_default();
        assert!(detail.contains(&format!("g{newest}")), "detail: {detail}");
        assert_eq!(resumed.to_json(), baseline.to_json());
        assert_eq!(resumed.state_fingerprint, baseline.state_fingerprint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_damaged_checkpoint_is_a_structured_error() {
        let dir =
            std::env::temp_dir().join(format!("squatphi-watch-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny();
        let store = WatchStore::open(&dir, &config, &DiskFaultPlan::none()).expect("open store");
        corrupt_generation(&dir, "watch.g1.ckpt");
        match store.load() {
            Err(CheckpointError::Unrecoverable { name, detail, .. }) => {
                assert_eq!(name, "watch");
                assert!(detail.contains("g1"), "detail: {detail}");
            }
            other => panic!("expected unrecoverable, got ok={}", other.is_ok()),
        }
        // And the service surface: --resume against it is a structured
        // WatchError, never a silent full recompute.
        let err = SquatPhi::try_watch(
            &config,
            &WatchOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..WatchOptions::default()
            },
        )
        .expect_err("resume over unrecoverable state must fail");
        assert!(matches!(
            err,
            WatchError::Checkpoint(CheckpointError::Unrecoverable { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
