//! Evasion characterization (paper §4.2, Figures 8-9, Tables 6 and 11).
//!
//! All measurements are artifact-based: page and brand HTML go through
//! the shared [`PageAnalyzer`], so bulk callers (the experiment tables
//! measure hundreds of pages against a handful of brand pages) hit the
//! content-addressed cache instead of re-rendering the brand page per
//! comparison — the old `brand_hash` / `layout_distance` helpers existed
//! only to hand-roll that amortization and are gone.

use crate::artifact::{PageAnalyzer, PageArtifact};

/// Per-page evasion measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EvasionMeasurement {
    /// pHash Hamming distance between this page and the brand's real page.
    pub layout_distance: u32,
    /// Brand name absent from the HTML-level text (string obfuscation).
    pub string_obfuscated: bool,
    /// Obfuscation indicators present in the page's JavaScript.
    pub code_obfuscated: bool,
}

/// Measures one page against its target brand, analyzing both through
/// `analyzer` (cache hits when either page was already seen).
///
/// * layout — render both pages, hash, Hamming distance (§4.2 "Layout
///   Obfuscation"),
/// * string — extract all HTML text; the page is string-obfuscated when
///   the brand label does not appear (§4.2 "String Obfuscation"),
/// * code — FrameHanger-style indicator scan (§4.2 "Code Obfuscation").
pub fn measure(
    analyzer: &PageAnalyzer,
    page_html: &str,
    brand_html: &str,
    brand_label: &str,
) -> EvasionMeasurement {
    measure_artifacts(
        &analyzer.analyze(page_html),
        &analyzer.analyze(brand_html),
        brand_label,
    )
}

/// Measures already-analyzed artifacts — the zero-recompute path when
/// the caller holds artifacts from the pipeline.
pub fn measure_artifacts(
    page: &PageArtifact,
    brand: &PageArtifact,
    brand_label: &str,
) -> EvasionMeasurement {
    EvasionMeasurement {
        layout_distance: page.image_hash.distance(&brand.image_hash),
        string_obfuscated: !page.text_lower.contains(&brand_label.to_ascii_lowercase()),
        code_obfuscated: page.js.is_obfuscated(),
    }
}

/// Aggregate of a set of measurements (one Table 11 row).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvasionSummary {
    /// Mean layout distance.
    pub layout_mean: f64,
    /// Standard deviation of layout distance.
    pub layout_std: f64,
    /// Fraction of string-obfuscated pages.
    pub string_rate: f64,
    /// Fraction of code-obfuscated pages.
    pub code_rate: f64,
    /// Pages measured.
    pub count: usize,
}

impl EvasionSummary {
    /// Summarizes a set of measurements.
    pub fn from_measurements(ms: &[EvasionMeasurement]) -> Self {
        if ms.is_empty() {
            return EvasionSummary::default();
        }
        let n = ms.len() as f64;
        let mean = ms.iter().map(|m| m.layout_distance as f64).sum::<f64>() / n;
        let var = ms
            .iter()
            .map(|m| (m.layout_distance as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        EvasionSummary {
            layout_mean: mean,
            layout_std: var.sqrt(),
            string_rate: ms.iter().filter(|m| m.string_obfuscated).count() as f64 / n,
            code_rate: ms.iter().filter(|m| m.code_obfuscated).count() as f64 / n,
            count: ms.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::BrandRegistry;
    use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
    use squatphi_web::pages;

    fn profile(layout: u8, string_obf: bool, code_obf: bool) -> PhishingProfile {
        PhishingProfile {
            brand: 0,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: layout,
            string_obfuscation: string_obf,
            code_obfuscation: code_obf,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        }
    }

    #[test]
    fn layout_distance_grows_with_intensity() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let close = pages::phishing_page(brand, &profile(0, false, false), "h.com", 1);
        let far = pages::phishing_page(brand, &profile(3, false, false), "h.com", 1);
        let d_close = measure(&analyzer, &close, &brand_page, "paypal").layout_distance;
        let d_far = measure(&analyzer, &far, &brand_page, "paypal").layout_distance;
        assert!(
            d_far > d_close,
            "intensity 3 ({d_far}) should be farther than 0 ({d_close})"
        );
        // The brand page was analyzed once and served from cache after.
        let m = analyzer.metrics();
        assert_eq!(m.pages, 4);
        assert_eq!(m.cache_misses, 3);
        assert_eq!(m.cache_hits, 1);
    }

    #[test]
    fn string_obfuscation_detected() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let plain = pages::phishing_page(brand, &profile(1, false, false), "h.com", 2);
        let obf = pages::phishing_page(brand, &profile(1, true, false), "h.com", 2);
        assert!(!measure(&analyzer, &plain, &brand_page, "paypal").string_obfuscated);
        assert!(measure(&analyzer, &obf, &brand_page, "paypal").string_obfuscated);
    }

    #[test]
    fn code_obfuscation_detected() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let obf = pages::phishing_page(brand, &profile(1, false, true), "h.com", 2);
        assert!(measure(&analyzer, &obf, &brand_page, "paypal").code_obfuscated);
    }

    #[test]
    fn summary_statistics() {
        let ms = vec![
            EvasionMeasurement {
                layout_distance: 10,
                string_obfuscated: true,
                code_obfuscated: false,
            },
            EvasionMeasurement {
                layout_distance: 30,
                string_obfuscated: false,
                code_obfuscated: true,
            },
        ];
        let s = EvasionSummary::from_measurements(&ms);
        assert_eq!(s.layout_mean, 20.0);
        assert_eq!(s.layout_std, 10.0);
        assert_eq!(s.string_rate, 0.5);
        assert_eq!(s.code_rate, 0.5);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(
            EvasionSummary::from_measurements(&[]),
            EvasionSummary::default()
        );
    }

    #[test]
    fn artifact_path_matches_html_path() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("facebook").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let page = pages::phishing_page(brand, &profile(2, false, false), "faceb00k.pw", 5);
        let via_html = measure(&analyzer, &page, &brand_page, "facebook");
        let via_artifacts = measure_artifacts(
            &analyzer.analyze(&page),
            &analyzer.analyze(&brand_page),
            "facebook",
        );
        assert_eq!(via_html, via_artifacts);
    }
}
