//! Evasion characterization (paper §4.2, Figures 8-9, Tables 6 and 11).
//!
//! All measurements are artifact-based: page and brand HTML go through
//! the shared [`PageAnalyzer`], so bulk callers (the experiment tables
//! measure hundreds of pages against a handful of brand pages) hit the
//! content-addressed cache instead of re-rendering the brand page per
//! comparison — the old `brand_hash` / `layout_distance` helpers existed
//! only to hand-roll that amortization and are gone.

use crate::artifact::{PageAnalyzer, PageArtifact};
use squatphi_imghash::{index, ImageHash};

/// Per-page evasion measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EvasionMeasurement {
    /// pHash Hamming distance between this page and the brand's real page.
    pub layout_distance: u32,
    /// Brand name absent from the HTML-level text (string obfuscation).
    pub string_obfuscated: bool,
    /// Obfuscation indicators present in the page's JavaScript.
    pub code_obfuscated: bool,
}

/// Measures one page against its target brand, analyzing both through
/// `analyzer` (cache hits when either page was already seen).
///
/// * layout — render both pages, hash, Hamming distance (§4.2 "Layout
///   Obfuscation"),
/// * string — extract all HTML text; the page is string-obfuscated when
///   the brand label does not appear (§4.2 "String Obfuscation"),
/// * code — FrameHanger-style indicator scan (§4.2 "Code Obfuscation").
pub fn measure(
    analyzer: &PageAnalyzer,
    page_html: &str,
    brand_html: &str,
    brand_label: &str,
) -> EvasionMeasurement {
    measure_artifacts(
        &analyzer.analyze(page_html),
        &analyzer.analyze(brand_html),
        brand_label,
    )
}

/// Measures already-analyzed artifacts — the zero-recompute path when
/// the caller holds artifacts from the pipeline. Delegates to the corpus
/// path with a one-page corpus, so there is exactly one measurement
/// implementation.
pub fn measure_artifacts(
    page: &PageArtifact,
    brand: &PageArtifact,
    brand_label: &str,
) -> EvasionMeasurement {
    measure_corpus(std::iter::once(page), brand, brand_label, false)
        .pop()
        .expect("one page in, one measurement out")
}

/// Layout distances from `brand_hash` to every page hash, in corpus order.
///
/// `indexed` routes through the Hamming-space [`index::HashIndex`] — one
/// radius-64 query over a corpus index replaces the per-page pairwise
/// loop — while `false` keeps the preserved [`index::linear`] oracle. The
/// two are set-identical by construction (the conformance `phash-index`
/// oracle pins it), so the flag only changes speed and counters.
pub fn layout_distances(
    page_hashes: &[ImageHash],
    brand_hash: ImageHash,
    indexed: bool,
) -> Vec<u32> {
    let neighbors = if indexed {
        index::HashIndex::from_hashes(page_hashes.iter().copied()).within(&brand_hash, 64)
    } else {
        index::linear::within(page_hashes, &brand_hash, 64)
    };
    // Radius 64 covers the whole Hamming cube and both paths emit
    // ascending insertion ids, so this is exactly corpus order.
    debug_assert_eq!(neighbors.len(), page_hashes.len());
    neighbors.into_iter().map(|n| n.distance).collect()
}

/// Measures a whole corpus of pages against one brand page — the bulk
/// path behind Figures 8-9 and Tables 6/11. Layout distances go through
/// [`layout_distances`]; string/code indicators are per-page.
pub fn measure_corpus<'a, I>(
    pages: I,
    brand: &PageArtifact,
    brand_label: &str,
    indexed: bool,
) -> Vec<EvasionMeasurement>
where
    I: IntoIterator<Item = &'a PageArtifact>,
{
    let pages: Vec<&PageArtifact> = pages.into_iter().collect();
    let hashes: Vec<ImageHash> = pages.iter().map(|p| p.image_hash).collect();
    let label_lower = brand_label.to_ascii_lowercase();
    layout_distances(&hashes, brand.image_hash, indexed)
        .into_iter()
        .zip(&pages)
        .map(|(layout_distance, page)| EvasionMeasurement {
            layout_distance,
            string_obfuscated: !page.text_lower.contains(&label_lower),
            code_obfuscated: page.js.is_obfuscated(),
        })
        .collect()
}

/// Aggregate of a set of measurements (one Table 11 row).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvasionSummary {
    /// Mean layout distance.
    pub layout_mean: f64,
    /// Standard deviation of layout distance.
    pub layout_std: f64,
    /// Fraction of string-obfuscated pages.
    pub string_rate: f64,
    /// Fraction of code-obfuscated pages.
    pub code_rate: f64,
    /// Pages measured.
    pub count: usize,
}

impl EvasionSummary {
    /// Summarizes a set of measurements.
    pub fn from_measurements(ms: &[EvasionMeasurement]) -> Self {
        if ms.is_empty() {
            return EvasionSummary::default();
        }
        let n = ms.len() as f64;
        let mean = ms.iter().map(|m| m.layout_distance as f64).sum::<f64>() / n;
        let var = ms
            .iter()
            .map(|m| (m.layout_distance as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        EvasionSummary {
            layout_mean: mean,
            layout_std: var.sqrt(),
            string_rate: ms.iter().filter(|m| m.string_obfuscated).count() as f64 / n,
            code_rate: ms.iter().filter(|m| m.code_obfuscated).count() as f64 / n,
            count: ms.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::BrandRegistry;
    use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
    use squatphi_web::pages;

    fn profile(layout: u8, string_obf: bool, code_obf: bool) -> PhishingProfile {
        PhishingProfile {
            brand: 0,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: layout,
            string_obfuscation: string_obf,
            code_obfuscation: code_obf,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        }
    }

    #[test]
    fn layout_distance_grows_with_intensity() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let close = pages::phishing_page(brand, &profile(0, false, false), "h.com", 1);
        let far = pages::phishing_page(brand, &profile(3, false, false), "h.com", 1);
        let d_close = measure(&analyzer, &close, &brand_page, "paypal").layout_distance;
        let d_far = measure(&analyzer, &far, &brand_page, "paypal").layout_distance;
        assert!(
            d_far > d_close,
            "intensity 3 ({d_far}) should be farther than 0 ({d_close})"
        );
        // The brand page was analyzed once and served from cache after.
        let m = analyzer.metrics();
        assert_eq!(m.pages, 4);
        assert_eq!(m.cache_misses, 3);
        assert_eq!(m.cache_hits, 1);
    }

    #[test]
    fn string_obfuscation_detected() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let plain = pages::phishing_page(brand, &profile(1, false, false), "h.com", 2);
        let obf = pages::phishing_page(brand, &profile(1, true, false), "h.com", 2);
        assert!(!measure(&analyzer, &plain, &brand_page, "paypal").string_obfuscated);
        assert!(measure(&analyzer, &obf, &brand_page, "paypal").string_obfuscated);
    }

    #[test]
    fn code_obfuscation_detected() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let obf = pages::phishing_page(brand, &profile(1, false, true), "h.com", 2);
        assert!(measure(&analyzer, &obf, &brand_page, "paypal").code_obfuscated);
    }

    #[test]
    fn summary_statistics() {
        let ms = vec![
            EvasionMeasurement {
                layout_distance: 10,
                string_obfuscated: true,
                code_obfuscated: false,
            },
            EvasionMeasurement {
                layout_distance: 30,
                string_obfuscated: false,
                code_obfuscated: true,
            },
        ];
        let s = EvasionSummary::from_measurements(&ms);
        assert_eq!(s.layout_mean, 20.0);
        assert_eq!(s.layout_std, 10.0);
        assert_eq!(s.string_rate, 0.5);
        assert_eq!(s.code_rate, 0.5);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(
            EvasionSummary::from_measurements(&[]),
            EvasionSummary::default()
        );
    }

    #[test]
    fn corpus_path_matches_pairwise_with_index_on_and_off() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_artifact = analyzer.analyze(&pages::brand_login_page(brand));
        let artifacts: Vec<_> = (0..4u8)
            .map(|i| {
                let p = profile(i % 4, i % 2 == 0, i % 3 == 0);
                analyzer.analyze(&pages::phishing_page(brand, &p, "h.com", i as u64))
            })
            .collect();
        let pairwise: Vec<EvasionMeasurement> = artifacts
            .iter()
            .map(|a| measure_artifacts(a, &brand_artifact, "paypal"))
            .collect();
        for indexed in [false, true] {
            let bulk = measure_corpus(
                artifacts.iter().map(|a| a.as_ref()),
                &brand_artifact,
                "paypal",
                indexed,
            );
            assert_eq!(bulk, pairwise, "indexed = {indexed}");
        }
    }

    #[test]
    fn layout_distances_index_matches_linear() {
        let hashes: Vec<ImageHash> = [0u64, 1, 0xFF, u64::MAX, 0x5555_5555_5555_5555]
            .iter()
            .copied()
            .map(ImageHash)
            .collect();
        let query = ImageHash(0b1010);
        assert_eq!(
            layout_distances(&hashes, query, true),
            layout_distances(&hashes, query, false),
        );
    }

    #[test]
    fn artifact_path_matches_html_path() {
        let analyzer = PageAnalyzer::new();
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("facebook").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let page = pages::phishing_page(brand, &profile(2, false, false), "faceb00k.pw", 5);
        let via_html = measure(&analyzer, &page, &brand_page, "facebook");
        let via_artifacts = measure_artifacts(
            &analyzer.analyze(&page),
            &analyzer.analyze(&brand_page),
            "facebook",
        );
        assert_eq!(via_html, via_artifacts);
    }
}
