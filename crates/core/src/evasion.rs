//! Evasion characterization (paper §4.2, Figures 8-9, Tables 6 and 11).

use squatphi_html::{extract, js, parse};
use squatphi_imghash::{perceptual_hash, ImageHash};
use squatphi_render::{render_page, RenderOptions};

/// Per-page evasion measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EvasionMeasurement {
    /// pHash Hamming distance between this page and the brand's real page.
    pub layout_distance: u32,
    /// Brand name absent from the HTML-level text (string obfuscation).
    pub string_obfuscated: bool,
    /// Obfuscation indicators present in the page's JavaScript.
    pub code_obfuscated: bool,
}

/// Measures one page against its target brand.
///
/// * layout — render both pages, hash, Hamming distance (§4.2 "Layout
///   Obfuscation"),
/// * string — extract all HTML text; the page is string-obfuscated when
///   the brand label does not appear (§4.2 "String Obfuscation"),
/// * code — FrameHanger-style indicator scan (§4.2 "Code Obfuscation").
pub fn measure(page_html: &str, brand_html: &str, brand_label: &str) -> EvasionMeasurement {
    let page_doc = parse(page_html);
    let brand_doc = parse(brand_html);
    let opts = RenderOptions::default();
    let page_hash = perceptual_hash(&render_page(&page_doc, &opts));
    let brand_hash = perceptual_hash(&render_page(&brand_doc, &opts));

    let text = extract::extract_text(&page_doc).joined_lower();
    let string_obfuscated = !text.contains(&brand_label.to_ascii_lowercase());

    let code_obfuscated = js::scan_document(&page_doc).is_obfuscated();

    EvasionMeasurement {
        layout_distance: page_hash.distance(&brand_hash),
        string_obfuscated,
        code_obfuscated,
    }
}

/// Precomputed brand-page hash for bulk measurement.
pub fn brand_hash(brand_html: &str) -> ImageHash {
    perceptual_hash(&render_page(&parse(brand_html), &RenderOptions::default()))
}

/// Layout distance of a page against a precomputed brand hash.
pub fn layout_distance(page_html: &str, brand: &ImageHash) -> u32 {
    let h = perceptual_hash(&render_page(&parse(page_html), &RenderOptions::default()));
    h.distance(brand)
}

/// Aggregate of a set of measurements (one Table 11 row).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvasionSummary {
    /// Mean layout distance.
    pub layout_mean: f64,
    /// Standard deviation of layout distance.
    pub layout_std: f64,
    /// Fraction of string-obfuscated pages.
    pub string_rate: f64,
    /// Fraction of code-obfuscated pages.
    pub code_rate: f64,
    /// Pages measured.
    pub count: usize,
}

impl EvasionSummary {
    /// Summarizes a set of measurements.
    pub fn from_measurements(ms: &[EvasionMeasurement]) -> Self {
        if ms.is_empty() {
            return EvasionSummary::default();
        }
        let n = ms.len() as f64;
        let mean = ms.iter().map(|m| m.layout_distance as f64).sum::<f64>() / n;
        let var = ms
            .iter()
            .map(|m| (m.layout_distance as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        EvasionSummary {
            layout_mean: mean,
            layout_std: var.sqrt(),
            string_rate: ms.iter().filter(|m| m.string_obfuscated).count() as f64 / n,
            code_rate: ms.iter().filter(|m| m.code_obfuscated).count() as f64 / n,
            count: ms.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::BrandRegistry;
    use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
    use squatphi_web::pages;

    fn profile(layout: u8, string_obf: bool, code_obf: bool) -> PhishingProfile {
        PhishingProfile {
            brand: 0,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: layout,
            string_obfuscation: string_obf,
            code_obfuscation: code_obf,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        }
    }

    #[test]
    fn layout_distance_grows_with_intensity() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let close = pages::phishing_page(brand, &profile(0, false, false), "h.com", 1);
        let far = pages::phishing_page(brand, &profile(3, false, false), "h.com", 1);
        let d_close = measure(&close, &brand_page, "paypal").layout_distance;
        let d_far = measure(&far, &brand_page, "paypal").layout_distance;
        assert!(
            d_far > d_close,
            "intensity 3 ({d_far}) should be farther than 0 ({d_close})"
        );
    }

    #[test]
    fn string_obfuscation_detected() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let plain = pages::phishing_page(brand, &profile(1, false, false), "h.com", 2);
        let obf = pages::phishing_page(brand, &profile(1, true, false), "h.com", 2);
        assert!(!measure(&plain, &brand_page, "paypal").string_obfuscated);
        assert!(measure(&obf, &brand_page, "paypal").string_obfuscated);
    }

    #[test]
    fn code_obfuscation_detected() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let obf = pages::phishing_page(brand, &profile(1, false, true), "h.com", 2);
        assert!(measure(&obf, &brand_page, "paypal").code_obfuscated);
    }

    #[test]
    fn summary_statistics() {
        let ms = vec![
            EvasionMeasurement {
                layout_distance: 10,
                string_obfuscated: true,
                code_obfuscated: false,
            },
            EvasionMeasurement {
                layout_distance: 30,
                string_obfuscated: false,
                code_obfuscated: true,
            },
        ];
        let s = EvasionSummary::from_measurements(&ms);
        assert_eq!(s.layout_mean, 20.0);
        assert_eq!(s.layout_std, 10.0);
        assert_eq!(s.string_rate, 0.5);
        assert_eq!(s.code_rate, 0.5);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(
            EvasionSummary::from_measurements(&[]),
            EvasionSummary::default()
        );
    }

    #[test]
    fn bulk_hash_path_matches_measure() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("facebook").unwrap();
        let brand_page = pages::brand_login_page(brand);
        let page = pages::phishing_page(brand, &profile(2, false, false), "faceb00k.pw", 5);
        let via_measure = measure(&page, &brand_page, "facebook").layout_distance;
        let via_bulk = layout_distance(&page, &brand_hash(&brand_page));
        assert_eq!(via_measure, via_bulk);
    }
}
