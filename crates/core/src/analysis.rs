//! The §6 analyses: everything the evaluation figures and tables report
//! about the detected squatting phishing population.

use crate::pipeline::{Detection, PipelineResult};
use squatphi_feeds::{Blacklists, PhishKind};
use squatphi_squat::SquatType;
use squatphi_web::whois::{country_of, registration_year};
use squatphi_web::{Device, ServeResult, SiteBehavior};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Accumulated-share curve: element `i` is the share owned by the top
/// `i + 1` items (Figures 3, 5).
pub fn accumulated_share(counts_per_item: &[usize]) -> Vec<f64> {
    let mut sorted: Vec<usize> = counts_per_item.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = sorted.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0usize;
    sorted
        .iter()
        .map(|&c| {
            acc += c;
            acc as f64 / total as f64
        })
        .collect()
}

/// Per-brand counts of confirmed phishing domains (Figures 11, 13).
pub fn confirmed_per_brand(result: &PipelineResult) -> Vec<(String, usize, usize)> {
    let mut web: HashMap<usize, HashSet<&str>> = HashMap::new();
    let mut mobile: HashMap<usize, HashSet<&str>> = HashMap::new();
    for d in result.confirmed(Device::Web) {
        web.entry(d.brand).or_default().insert(&d.domain);
    }
    for d in result.confirmed(Device::Mobile) {
        mobile.entry(d.brand).or_default().insert(&d.domain);
    }
    let mut out: Vec<(String, usize, usize)> = result
        .registry
        .brands()
        .iter()
        .map(|b| {
            (
                b.label.clone(),
                web.get(&b.id).map(HashSet::len).unwrap_or(0),
                mobile.get(&b.id).map(HashSet::len).unwrap_or(0),
            )
        })
        .filter(|(_, w, m)| *w + *m > 0)
        .collect();
    out.sort_by_key(|x| std::cmp::Reverse(x.1 + x.2));
    out
}

/// Confirmed phishing domains per squatting type per device (Figure 12).
pub fn confirmed_per_type(result: &PipelineResult) -> [(usize, usize); 5] {
    let mut out = [(0usize, 0usize); 5];
    let idx = |t: SquatType| match t {
        SquatType::Homograph => 0,
        SquatType::Bits => 1,
        SquatType::Typo => 2,
        SquatType::Combo => 3,
        SquatType::WrongTld => 4,
    };
    let mut web_seen: HashSet<&str> = HashSet::new();
    for d in result.confirmed(Device::Web) {
        if web_seen.insert(&d.domain) {
            out[idx(d.squat_type)].0 += 1;
        }
    }
    let mut mob_seen: HashSet<&str> = HashSet::new();
    for d in result.confirmed(Device::Mobile) {
        if mob_seen.insert(&d.domain) {
            out[idx(d.squat_type)].1 += 1;
        }
    }
    out
}

/// Cloaking split (§6.1): (both, mobile-only, web-only) confirmed
/// phishing domains.
pub fn cloaking_split(result: &PipelineResult) -> (usize, usize, usize) {
    let web: HashSet<&str> = result
        .confirmed(Device::Web)
        .iter()
        .map(|d| d.domain.as_str())
        .collect();
    let mobile: HashSet<&str> = result
        .confirmed(Device::Mobile)
        .iter()
        .map(|d| d.domain.as_str())
        .collect();
    let both = web.intersection(&mobile).count();
    (both, mobile.len() - both, web.len() - both)
}

/// Country histogram of confirmed phishing domains (Figure 15).
pub fn geo_distribution(result: &PipelineResult) -> Vec<(&'static str, usize)> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for d in result.confirmed_domains() {
        *counts.entry(country_of(d)).or_default() += 1;
    }
    let mut out: Vec<(&'static str, usize)> = counts.into_iter().collect();
    out.sort_by_key(|x| std::cmp::Reverse(x.1));
    out
}

/// Registration-year histogram of confirmed phishing domains (Figure 16).
pub fn registration_histogram(result: &PipelineResult) -> BTreeMap<u16, usize> {
    let mut out = BTreeMap::new();
    for d in result.confirmed_domains() {
        *out.entry(registration_year(d)).or_default() += 1;
    }
    out
}

/// Liveness of confirmed phishing pages across the four snapshots
/// (Figure 17): how many still serve a phishing page at each snapshot,
/// per device.
pub fn snapshot_liveness(result: &PipelineResult) -> [(usize, usize); 4] {
    let mut out = [(0usize, 0usize); 4];
    for domain in result.confirmed_domains() {
        let Some(site) = result.world.site(domain) else {
            continue;
        };
        let SiteBehavior::Phishing(p) = &site.behavior else {
            continue;
        };
        for (s, slot) in out.iter_mut().enumerate() {
            if p.lifetime.phishing_live(s as u8) {
                match p.cloaking {
                    squatphi_web::Cloaking::MobileOnly => slot.1 += 1,
                    squatphi_web::Cloaking::WebOnly => slot.0 += 1,
                    squatphi_web::Cloaking::None => {
                        slot.0 += 1;
                        slot.1 += 1;
                    }
                }
            }
        }
    }
    out
}

/// Per-snapshot liveness trace of one domain (Table 13 rows): "Live",
/// "Benign" or "-" per snapshot. Both device profiles are probed — a
/// cloaked page that only answers one profile still counts as live,
/// mirroring how the paper re-crawled with both agents.
pub fn liveness_trace(result: &PipelineResult, domain: &str) -> [&'static str; 4] {
    let mut out = ["-"; 4];
    for (s, slot) in out.iter_mut().enumerate() {
        let mut state = "-";
        for device in [Device::Web, Device::Mobile] {
            match result.world.serve(domain, device, s as u8) {
                ServeResult::Page(html) if html.contains("<form") => {
                    state = "Live";
                    break;
                }
                ServeResult::Page(_) | ServeResult::Redirect(_) => {
                    if state == "-" {
                        state = "Benign";
                    }
                }
                ServeResult::Unreachable => {}
            }
        }
        *slot = state;
    }
    out
}

/// Blacklist coverage of the confirmed squatting phishing set one month
/// in (Table 12): (phishtank, virustotal, ecrimex, undetected).
pub fn blacklist_coverage(result: &PipelineResult) -> (usize, usize, usize, usize) {
    let bl = Blacklists::new();
    let (mut pt, mut vt, mut ecx, mut none) = (0usize, 0usize, 0usize, 0usize);
    for d in result.confirmed_domains() {
        let r = bl.check(d, PhishKind::Squatting, 30);
        if r.phishtank {
            pt += 1;
        }
        if r.virustotal_engines > 0 {
            vt += 1;
        }
        if r.ecrimex {
            ecx += 1;
        }
        if !r.detected() {
            none += 1;
        }
    }
    (pt, vt, ecx, none)
}

/// Redirect league table (Tables 3-4): per brand, (domains with
/// redirects, to-original, to-market, to-other), web profile.
pub fn redirect_league(result: &PipelineResult) -> Vec<(String, usize, usize, usize, usize)> {
    use squatphi_crawler::RedirectClass;
    let mut per_brand: HashMap<usize, (usize, usize, usize, usize)> = HashMap::new();
    for r in &result.crawl {
        if r.web.is_none() {
            continue;
        }
        let e = per_brand.entry(r.brand).or_default();
        match r.web_redirect {
            RedirectClass::None => {}
            RedirectClass::Original => {
                e.0 += 1;
                e.1 += 1;
            }
            RedirectClass::Market => {
                e.0 += 1;
                e.2 += 1;
            }
            RedirectClass::Other => {
                e.0 += 1;
                e.3 += 1;
            }
        }
    }
    let mut out: Vec<(String, usize, usize, usize, usize)> = per_brand
        .into_iter()
        .filter(|(_, (total, ..))| *total > 0)
        .map(|(b, (t, o, m, x))| {
            (
                result
                    .registry
                    .get(b)
                    .map(|br| br.label.clone())
                    .unwrap_or_default(),
                t,
                o,
                m,
                x,
            )
        })
        .collect();
    out.sort_by_key(|x| std::cmp::Reverse(x.1));
    out
}

/// The per-detection list of example phishing domains per brand
/// (Tables 9-10 input).
pub fn examples_per_brand<'a>(
    result: &'a PipelineResult,
    label: &str,
    limit: usize,
) -> Vec<&'a Detection> {
    let Some(brand) = result.registry.by_label(label) else {
        return Vec::new();
    };
    let mut seen = HashSet::new();
    result
        .web_detections
        .iter()
        .chain(&result.mobile_detections)
        .filter(|d| d.brand == brand.id && d.confirmed && seen.insert(d.domain.as_str()))
        .take(limit)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulated_share_shapes() {
        let shares = accumulated_share(&[50, 30, 10, 10]);
        assert_eq!(shares.len(), 4);
        assert!((shares[0] - 0.5).abs() < 1e-12);
        assert!((shares[3] - 1.0).abs() < 1e-12);
        assert!(shares.windows(2).all(|w| w[1] >= w[0]));
        assert!(accumulated_share(&[]).is_empty());
        assert!(accumulated_share(&[0, 0]).is_empty());
    }

    // The pipeline-dependent analyses are covered by the workspace-level
    // integration suite (tests/end_to_end.rs) which shares one run.
}
