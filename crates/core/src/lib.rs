//! `squatphi` — the paper's primary contribution: an end-to-end system
//! that searches for and detects *squatting phishing* domains.
//!
//! The pipeline mirrors the paper's architecture exactly:
//!
//! 1. **Squatting detection** (§3.1) — scan a DNS snapshot for domains
//!    squatting on 702 monitored brands ([`pipeline`] stage 1, built on
//!    `squatphi-dnsdb` / `squatphi-squat`),
//! 2. **Crawling** (§3.2) — fetch web + mobile pages of every squatting
//!    domain (stage 2, built on `squatphi-crawler` / `squatphi-web`),
//! 3. **Evasion characterization** (§4) — [`evasion`]: layout (image
//!    hash), string (brand-in-text), and code (JS indicator) obfuscation
//!    measurements on ground-truth phishing,
//! 4. **Classification** (§5) — [`features`] (OCR + lexical + form
//!    features) and [`train`] (NB / KNN / RF with 10-fold CV),
//! 5. **In-the-wild detection** (§6) — stage 3: classify every crawled
//!    page, simulate manual verification, and run all the §6 analyses
//!    ([`analysis`]),
//! 6. **Streaming watch** — [`stream`]: the `squatphi watch` daemon
//!    consumes a seeded registration feed continuously through bounded
//!    ingest → detect → crawl stages with watermark checkpoints
//!    ([`SquatPhi::try_watch`](pipeline::SquatPhi::try_watch)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod artifact;
pub mod checkpoint;
pub mod config;
pub mod evasion;
pub mod fault;
pub mod features;
pub mod pipeline;
pub mod reinforce;
pub mod snapshots;
pub mod stream;
pub mod supervise;
pub mod train;

pub use artifact::{AnalysisCache, AnalysisSnapshot, PageAnalyzer, PageArtifact};
pub use checkpoint::CheckpointError;
pub use config::SimConfig;
pub use fault::{FaultCounts, PipelineFaultPlan};
pub use features::FeatureExtractor;
pub use pipeline::{Detection, PipelineResult, SquatPhi, StageTimings};
pub use squatphi_durability::{DiskFaultPlan, DurabilityStats};
pub use stream::{
    WatchConfig, WatchConfigBuilder, WatchConfigError, WatchCounters, WatchError, WatchMetrics,
    WatchOptions, WatchSummary,
};
pub use supervise::{
    PipelineError, PipelineErrorKind, PipelineStage, QuarantineEntry, RunOptions, SupervisionReport,
};
pub use train::{train_and_evaluate, EvalReport, ModelEval};
