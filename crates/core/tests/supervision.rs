//! Integration tests for the supervised pipeline runner: quarantine
//! determinism, fault-plan reconciliation, and checkpoint/resume
//! byte-equality (asserted via [`PipelineResult::fingerprint`]).

use squatphi::pipeline::{PipelineResult, SquatPhi};
use squatphi::{PipelineErrorKind, PipelineFaultPlan, PipelineStage, RunOptions, SimConfig};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("squatphi-supervision-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn no_tmp_leftovers(dir: &PathBuf) -> bool {
    std::fs::read_dir(dir)
        .map(|mut entries| {
            entries.all(|e| !e.unwrap().file_name().to_string_lossy().ends_with(".tmp"))
        })
        .unwrap_or(true)
}

/// The fault matrix used across these tests: persistent panics on 6% of
/// pages, flaky (recoverable) panics on 4%, poisoned HTML on 5%, and
/// truncated crawl records on 3%.
fn storm() -> PipelineFaultPlan {
    PipelineFaultPlan::parse(
        "panic-permille-60,flaky-permille-40,poison-permille-50,truncate-permille-30",
    )
    .unwrap()
    .with_seed(77)
}

fn faulted(config: &SimConfig, threads: usize) -> PipelineResult {
    let mut config = config.clone();
    config.threads = threads;
    let opts = RunOptions {
        faults: storm(),
        ..RunOptions::default()
    };
    match SquatPhi::try_run(&config, &opts) {
        Ok(r) => r,
        Err(e) => panic!("faulted run must degrade, not fail: {e}"),
    }
}

#[test]
fn fault_storm_completes_and_reconciles() {
    let r = faulted(&SimConfig::micro(), 2);
    let s = &r.supervision;
    assert!(s.reconciles(), "unreconciled report: {}", s.report_line());
    assert!(
        s.injected.analyzer_panics > 0,
        "the storm planted no panics"
    );
    assert!(s.injected.poisoned_pages > 0, "the storm poisoned no pages");
    assert!(
        s.injected.truncated_records > 0,
        "the storm truncated no records"
    );
    assert!(
        !s.quarantined.is_empty(),
        "persistent panics must quarantine records"
    );
    assert!(s.recovered > 0, "flaky panics must recover within budget");
    assert!(
        s.degraded >= s.injected.poisoned_pages,
        "poisoned pages must degrade, not drop"
    );
    // Quarantined training pages are excluded from the split, which must
    // still match what training saw.
    assert_eq!(r.train_split, r.eval.train_shape);
    // Injected quarantines carry their stage and the planted cause.
    assert!(s
        .quarantined
        .iter()
        .filter(|q| q.injected)
        .all(|q| q.cause.contains("injected")));
}

#[test]
fn quarantine_is_deterministic_across_thread_counts() {
    let base = faulted(&SimConfig::micro(), 1);
    for threads in [4, 8] {
        let other = faulted(&SimConfig::micro(), threads);
        assert_eq!(
            base.supervision, other.supervision,
            "supervision diverged between 1 and {threads} threads"
        );
        assert_eq!(
            base.fingerprint(),
            other.fingerprint(),
            "pipeline output diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn resume_after_crawl_checkpoint_is_byte_identical() {
    let dir = tmpdir("resume");
    let config = SimConfig::micro();
    // "Kill" the run right after the crawl checkpoint lands.
    let interrupted = SquatPhi::try_run(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: Some(PipelineStage::Crawl),
            ..RunOptions::default()
        },
    );
    let Err(e) = interrupted else {
        panic!("stop_after crawl did not interrupt");
    };
    assert!(e.is_interrupted());
    assert_eq!(e.completed, vec![PipelineStage::Scan, PipelineStage::Crawl]);
    assert!(no_tmp_leftovers(&dir), "partial checkpoint write leaked");

    let resumed = SquatPhi::try_run(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("resume failed: {e}"));
    assert_eq!(
        resumed.supervision.resumed_stages,
        vec!["scan", "crawl"],
        "resume must replay exactly the checkpointed stages"
    );

    let direct = match SquatPhi::try_run(&config, &RunOptions::default()) {
        Ok(r) => r,
        Err(e) => panic!("direct run failed: {e}"),
    };
    assert_eq!(
        resumed.fingerprint(),
        direct.fingerprint(),
        "resumed output differs from an uninterrupted run"
    );
    assert!(no_tmp_leftovers(&dir));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_replays_fault_accounting() {
    let dir = tmpdir("faulted-resume");
    let config = SimConfig::micro();
    let opts = |resume: bool, stop: Option<PipelineStage>| RunOptions {
        checkpoint_dir: Some(dir.clone()),
        resume,
        stop_after: stop,
        faults: storm(),
        ..RunOptions::default()
    };
    let Err(e) = SquatPhi::try_run(&config, &opts(false, Some(PipelineStage::Crawl))) else {
        panic!("stop_after crawl did not interrupt");
    };
    assert!(e.is_interrupted());
    let resumed = SquatPhi::try_run(&config, &opts(true, None))
        .unwrap_or_else(|e| panic!("faulted resume failed: {e}"));
    let direct = faulted(&config, 2);
    // The crawl checkpoint replays its truncation count, so even the
    // fault accounting matches the uninterrupted run.
    assert_eq!(resumed.supervision.truncated, direct.supervision.truncated);
    assert!(resumed.supervision.reconciles());
    assert_eq!(resumed.fingerprint(), direct.fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_change_invalidates_checkpoints() {
    let dir = tmpdir("invalidate");
    let config = SimConfig::micro();
    let Err(e) = SquatPhi::try_run(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            stop_after: Some(PipelineStage::Crawl),
            ..RunOptions::default()
        },
    ) else {
        panic!("stop_after crawl did not interrupt");
    };
    assert!(e.is_interrupted());

    let mut changed = config.clone();
    changed.seed = config.seed + 1;
    let resumed = SquatPhi::try_run(
        &changed,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("resume under changed config failed: {e}"));
    // The stale checkpoints are detected, recorded, and recomputed —
    // never silently replayed into the wrong run.
    assert!(resumed.supervision.resumed_stages.is_empty());
    assert!(resumed
        .supervision
        .invalidated_checkpoints
        .contains(&"scan"));
    let direct = match SquatPhi::try_run(&changed, &RunOptions::default()) {
        Ok(r) => r,
        Err(e) => panic!("direct run failed: {e}"),
    };
    assert_eq!(resumed.fingerprint(), direct.fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fail_fast_surfaces_the_first_panic() {
    let opts = RunOptions {
        faults: PipelineFaultPlan::parse("panic-permille-200")
            .unwrap()
            .with_seed(3),
        fail_fast: true,
        ..RunOptions::default()
    };
    let Err(e) = SquatPhi::try_run(&SimConfig::micro(), &opts) else {
        panic!("fail_fast under a 20% panic storm must abort");
    };
    match &e.kind {
        PipelineErrorKind::StagePanic { key, cause } => {
            assert!(!key.is_empty());
            assert!(cause.contains("injected"));
        }
        other => panic!("expected StagePanic, got {other:?}"),
    }
    assert!(
        e.completed.contains(&PipelineStage::Crawl),
        "panic must carry partial progress (completed: {:?})",
        e.completed
    );
}
