//! Cache transparency: a pipeline run with the content-addressed
//! analysis cache enabled must be byte-identical to a run with it
//! disabled — the cache may only change speed and the hit/miss counters,
//! never a feature vector, a score bit, a detection, or an image hash.

use squatphi::evasion;
use squatphi::pipeline::PipelineResult;
use squatphi::{RunOptions, SimConfig, SquatPhi};
use squatphi_dnsdb::SnapshotConfig;
use squatphi_feeds::FeedConfig;
use squatphi_web::WorldConfig;

/// Smaller than `SimConfig::tiny()` — this test runs the pipeline twice.
fn micro(analysis_cache: bool) -> SimConfig {
    SimConfig {
        snapshot: SnapshotConfig {
            benign_records: 600,
            squatting_records: 250,
            subdomain_fraction: 0.2,
            seed: 11,
        },
        world: WorldConfig {
            phishing_domains: 40,
            seed: 12,
            ..WorldConfig::default()
        },
        feed: FeedConfig {
            total_urls: 250,
            seed: 13,
        },
        brands: 30,
        threads: 4,
        sampled_benign: 60,
        cv_folds: 3,
        analysis_cache,
        phash_index: true,
        seed: 14,
    }
}

/// Every observable output of a run, with floats as bit patterns so the
/// comparison is byte-exact rather than epsilon-close.
fn fingerprint(r: &PipelineResult) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "scan {} matches, {} scanned",
        r.scan.total_matches(),
        r.scan.scanned
    ));
    out.push(format!("train_split {:?}", r.train_split));
    for m in &r.eval.models {
        out.push(format!(
            "model {} fpr={:016x} fnr={:016x} auc={:016x} acc={:016x}",
            m.name,
            m.metrics.fpr.to_bits(),
            m.metrics.fnr.to_bits(),
            m.metrics.auc.to_bits(),
            m.metrics.accuracy.to_bits(),
        ));
    }
    for d in r.web_detections.iter().chain(&r.mobile_detections) {
        out.push(format!(
            "det {} brand={} type={} dev={:?} score={:016x} confirmed={}",
            d.domain,
            d.brand,
            d.squat_type,
            d.device,
            d.score.to_bits(),
            d.confirmed,
        ));
    }
    out.push(format!("confirmed {:?}", r.confirmed_domains()));
    out
}

#[test]
fn cache_is_invisible_in_every_pipeline_output() {
    let with_cache = SquatPhi::try_run(&micro(true), &RunOptions::default())
        .expect("cache-on pipeline runs clean");
    let without_cache = SquatPhi::try_run(&micro(false), &RunOptions::default())
        .expect("cache-off pipeline runs clean");

    assert_eq!(
        fingerprint(&with_cache),
        fingerprint(&without_cache),
        "cache-on and cache-off runs diverged"
    );

    // Evasion measurements (the Fig 8/9 and Table 6/11 substrate) agree
    // artifact-for-artifact across both analyzers.
    let brand = with_cache
        .registry
        .brands()
        .first()
        .expect("registry non-empty");
    let brand_page = with_cache
        .world
        .brand_page(brand.id)
        .expect("brand page exists");
    for e in with_cache.feed.entries.iter().take(20) {
        let a = evasion::measure(
            with_cache.extractor.analyzer(),
            &e.html,
            brand_page,
            &brand.label,
        );
        let b = evasion::measure(
            without_cache.extractor.analyzer(),
            &e.html,
            brand_page,
            &brand.label,
        );
        assert_eq!(a, b, "evasion measurement diverged for {}", e.host);
    }

    // Image hashes agree bit-for-bit.
    for e in with_cache.feed.entries.iter().take(20) {
        assert_eq!(
            with_cache.extractor.analyzer().analyze(&e.html).image_hash,
            without_cache
                .extractor
                .analyzer()
                .analyze(&e.html)
                .image_hash,
        );
    }

    // Metrics shape: the cached run reconciles with real hits (the two
    // device passes share template captures); the uncached run counts
    // every page as a miss.
    let on = &with_cache.analysis;
    let off = &without_cache.analysis;
    assert!(on.reconciles() && off.reconciles());
    assert!(on.cache_hits > 0, "cached run never hit");
    assert_eq!(off.cache_hits, 0, "uncached run claims hits");
    assert_eq!(off.pages, off.cache_misses);
    assert_eq!(
        on.pages, off.pages,
        "both runs must analyze the same page stream"
    );
    assert!(
        on.cache_misses < off.cache_misses,
        "cache saved no derivations"
    );
}
