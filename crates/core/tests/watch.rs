//! Tier-1 gates for the streaming watch daemon: seeded determinism,
//! watermark resume equality across kill points, and bounded-queue
//! backpressure reconciliation at several worker-thread counts.

use squatphi::{SquatPhi, WatchConfig, WatchOptions};
use std::path::PathBuf;

fn watch_config(threads: usize) -> WatchConfig {
    WatchConfig::builder()
        .brands(16)
        .seed(20180401)
        .events(400)
        .ingest_capacity(32)
        .candidate_capacity(8)
        .detect_batch(8)
        .crawl_cadence(3)
        .crawl_batch(6)
        .threads(threads)
        .checkpoint_every(48)
        .build()
        .expect("watch config is valid")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("squatphi-watch-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn watch_is_seeded_deterministic() {
    let config = watch_config(4);
    let a = SquatPhi::try_watch(&config, &WatchOptions::default()).expect("run a");
    let b = SquatPhi::try_watch(&config, &WatchOptions::default()).expect("run b");
    assert_eq!(a.to_json(), b.to_json(), "two identical runs diverged");
    assert_eq!(a.state_fingerprint, b.state_fingerprint);
    assert!(
        a.reconciles(),
        "counters do not reconcile: {:?}",
        a.counters
    );

    // A different seed must actually change the run.
    let other = WatchConfig::builder()
        .brands(16)
        .seed(20180402)
        .events(400)
        .ingest_capacity(32)
        .candidate_capacity(8)
        .detect_batch(8)
        .crawl_cadence(3)
        .crawl_batch(6)
        .threads(4)
        .checkpoint_every(48)
        .build()
        .expect("other config");
    let c = SquatPhi::try_watch(&other, &WatchOptions::default()).expect("run c");
    assert_ne!(
        a.state_fingerprint, c.state_fingerprint,
        "seed had no effect"
    );
}

#[test]
fn resume_reproduces_the_uninterrupted_fingerprint_at_any_kill_point() {
    let config = watch_config(4);
    let full = SquatPhi::try_watch(&config, &WatchOptions::default()).expect("uninterrupted run");
    assert!(!full.interrupted);

    for kill_at in [40u64, 130, 250, 390] {
        let dir = temp_dir(&format!("kill{kill_at}"));
        let stopped = SquatPhi::try_watch(
            &config,
            &WatchOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: false,
                stop_after: Some(kill_at),
                ..WatchOptions::default()
            },
        )
        .expect("interrupted run");
        assert!(stopped.interrupted, "kill at {kill_at} did not interrupt");
        assert!(stopped.watermark >= kill_at);

        let resumed = SquatPhi::try_watch(
            &config,
            &WatchOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                stop_after: None,
                ..WatchOptions::default()
            },
        )
        .expect("resumed run");
        assert!(!resumed.interrupted);
        assert_eq!(
            resumed.state_fingerprint, full.state_fingerprint,
            "kill at {kill_at}: resumed fingerprint diverged"
        );
        assert_eq!(
            resumed.to_json(),
            full.to_json(),
            "kill at {kill_at}: resumed summary diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn backpressure_reconciles_exactly_at_every_thread_count() {
    // Tight queues force both failure modes: ingest drops and detect
    // stalls. Whatever the thread count, the accounting identities and
    // the final state must be identical.
    let mut fingerprints = Vec::new();
    for threads in [1usize, 4, 8] {
        let config = WatchConfig::builder()
            .brands(16)
            .seed(99)
            .events(600)
            .ingest_capacity(4)
            .candidate_capacity(2)
            .detect_batch(3)
            .crawl_cadence(5)
            .crawl_batch(4)
            .threads(threads)
            .checkpoint_every(64)
            .build()
            .expect("tight config");
        let summary = SquatPhi::try_watch(&config, &WatchOptions::default()).expect("tight run");
        assert!(
            summary.reconciles(),
            "threads={threads}: counters do not reconcile: {:?}",
            summary.counters
        );
        assert!(
            summary.counters.dropped() > 0,
            "threads={threads}: tight queues produced no drops"
        );
        assert!(
            summary.counters.detect_stalls > 0,
            "threads={threads}: tight candidate queue produced no stalls"
        );
        // Backpressure must never lose events silently: injected events
        // all land in exactly one counter.
        assert_eq!(
            summary.counters.injected,
            summary.counters.accepted + summary.counters.dropped()
        );
        fingerprints.push((summary.state_fingerprint, summary.to_json()));
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "1 vs 4 threads changed the run"
    );
    assert_eq!(
        fingerprints[1], fingerprints[2],
        "4 vs 8 threads changed the run"
    );
}

#[test]
fn watch_metrics_history_is_monotone() {
    let config = watch_config(2);
    let summary = SquatPhi::try_watch(&config, &WatchOptions::default()).expect("run");
    assert!(!summary.metrics.is_empty(), "no metrics snapshots emitted");
    for pair in summary.metrics.windows(2) {
        assert!(pair[0].tick < pair[1].tick, "ticks not increasing");
        assert!(pair[0].injected <= pair[1].injected);
        assert!(pair[0].processed <= pair[1].processed);
        assert!(pair[0].detected <= pair[1].detected);
        assert!(pair[0].blacklisted <= pair[1].blacklisted);
    }
    let last = summary.metrics.last().expect("nonempty");
    assert_eq!(last.injected, summary.counters.injected);
}
