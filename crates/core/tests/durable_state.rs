//! Crash-point recovery matrix (in-process half; `ci/crash_matrix.sh`
//! sweeps the same plans across real process boundaries).
//!
//! Contracts:
//!
//! * crashing at *every* durable write index `K` of a checkpointed run —
//!   pipeline and watch alike — and then resuming without faults
//!   reproduces the uninterrupted run byte-for-byte (summary JSON and
//!   state fingerprint),
//! * the `durability.*` telemetry is a pure function of the seeded plan:
//!   identical across two runs and across worker-thread counts 1/4/8,
//!   and it always satisfies the read-accounting invariant,
//! * a store whose every generation is damaged fails a `--resume` with a
//!   structured unrecoverable error instead of silently recomputing.

use squatphi::{
    DiskFaultPlan, PipelineErrorKind, RunOptions, SimConfig, SquatPhi, WatchConfig, WatchOptions,
};
use squatphi_durability::{install_crash_hook, RealVfs, Vfs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;

/// Panic payload marker of the in-process crash hook.
const CRASH_MARKER: &str = "simulated-disk-crash";

static HOOKS: Once = Once::new();

/// Routes simulated `crash-at-write-K` aborts into catchable panics and
/// silences their (expected, repeated) panic-hook output.
fn install_hooks() {
    HOOKS.call_once(|| {
        install_crash_hook(Box::new(|context| {
            panic!("{CRASH_MARKER}: {context}");
        }));
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let simulated = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(CRASH_MARKER));
            if !simulated {
                default(info);
            }
        }));
    });
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "squatphi-durable-state-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn watch_config(threads: usize) -> WatchConfig {
    WatchConfig::builder()
        .brands(16)
        .seed(20180401)
        .events(400)
        .ingest_capacity(32)
        .candidate_capacity(8)
        .detect_batch(8)
        .crawl_cadence(3)
        .crawl_batch(6)
        .threads(threads)
        .checkpoint_every(48)
        .build()
        .expect("watch config is valid")
}

fn crash_plan(k: u64) -> DiskFaultPlan {
    DiskFaultPlan::parse(&format!("crash-at-write-{k}"))
        .expect("valid crash plan")
        .with_seed(k)
}

#[test]
fn watch_crash_at_every_write_resumes_byte_identically() {
    install_hooks();
    let config = watch_config(4);
    let baseline = SquatPhi::try_watch(&config, &WatchOptions::default()).expect("baseline run");

    // Count the durable writes of a full checkpointed run; the crash
    // sweep below covers every one of them.
    let count_dir = temp_dir("watch-count");
    let counted = SquatPhi::try_watch(
        &config,
        &WatchOptions {
            checkpoint_dir: Some(count_dir.clone()),
            ..WatchOptions::default()
        },
    )
    .expect("counting run");
    let writes = counted.durability.writes;
    assert!(writes >= 3, "too few durable writes to sweep: {writes}");
    assert_eq!(
        counted.to_json(),
        baseline.to_json(),
        "checkpointing must not change the summary"
    );
    let _ = std::fs::remove_dir_all(&count_dir);

    for k in 1..=writes {
        let dir = temp_dir(&format!("watch-crash-{k}"));
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            SquatPhi::try_watch(
                &config,
                &WatchOptions {
                    checkpoint_dir: Some(dir.clone()),
                    disk_faults: crash_plan(k),
                    ..WatchOptions::default()
                },
            )
        }));
        let payload = crashed.expect_err("crash-at-write-{k} did not fire");
        let text = payload
            .downcast_ref::<String>()
            .expect("crash hook panics with a String payload");
        assert!(text.contains(CRASH_MARKER), "unexpected panic: {text}");

        // Restart against whatever the crash left on disk — no faults now.
        let resumed = SquatPhi::try_watch(
            &config,
            &WatchOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..WatchOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("resume after crash at write {k} failed: {e}"));
        assert_eq!(
            resumed.state_fingerprint, baseline.state_fingerprint,
            "crash at write {k}: fingerprint diverged"
        );
        assert_eq!(
            resumed.to_json(),
            baseline.to_json(),
            "crash at write {k}: summary diverged"
        );
        assert!(
            resumed.durability.reconciles(),
            "crash at write {k}: durability ledger does not reconcile: {:?}",
            resumed.durability
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn pipeline_crash_at_every_write_resumes_to_the_same_fingerprint() {
    install_hooks();
    let config = SimConfig::micro();
    let baseline = SquatPhi::try_run(&config, &RunOptions::default()).expect("baseline run");

    let count_dir = temp_dir("pipeline-count");
    let counted = SquatPhi::try_run(
        &config,
        &RunOptions {
            checkpoint_dir: Some(count_dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("counting run");
    let writes = counted.durability.writes;
    assert!(writes >= 3, "too few durable writes to sweep: {writes}");
    assert_eq!(counted.fingerprint(), baseline.fingerprint());
    let _ = std::fs::remove_dir_all(&count_dir);

    for k in 1..=writes {
        let dir = temp_dir(&format!("pipeline-crash-{k}"));
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            SquatPhi::try_run(
                &config,
                &RunOptions {
                    checkpoint_dir: Some(dir.clone()),
                    disk_faults: crash_plan(k),
                    ..RunOptions::default()
                },
            )
        }));
        assert!(crashed.is_err(), "crash at write {k} did not fire");

        let resumed = SquatPhi::try_run(
            &config,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..RunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("resume after crash at write {k} failed: {e}"));
        assert_eq!(
            resumed.fingerprint(),
            baseline.fingerprint(),
            "crash at write {k}: resumed fingerprint diverged"
        );
        assert!(
            resumed.durability.reconciles(),
            "crash at write {k}: durability ledger does not reconcile: {:?}",
            resumed.durability
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn durability_telemetry_is_deterministic_across_runs_and_threads() {
    install_hooks();
    // Bit rot on roughly a quarter of the durable writes: some checkpoint
    // generations are silently damaged, so the resumed load exercises the
    // recovery classifier — deterministically, whatever the thread count.
    let plan = DiskFaultPlan::parse("bitflip-permille-250")
        .expect("valid plan")
        .with_seed(20180401);
    let mut by_threads = Vec::new();
    for threads in [1usize, 4, 8] {
        let config = watch_config(threads);
        let mut per_run = Vec::new();
        for run in 0..2 {
            let dir = temp_dir(&format!("telemetry-t{threads}-r{run}"));
            let stopped = SquatPhi::try_watch(
                &config,
                &WatchOptions {
                    checkpoint_dir: Some(dir.clone()),
                    stop_after: Some(120),
                    disk_faults: plan,
                    ..WatchOptions::default()
                },
            )
            .expect("interrupted run under bit rot");
            let resumed = SquatPhi::try_watch(
                &config,
                &WatchOptions {
                    checkpoint_dir: Some(dir.clone()),
                    resume: true,
                    disk_faults: plan,
                    ..WatchOptions::default()
                },
            )
            .expect("resumed run under bit rot");
            // The durability scope must satisfy the read-accounting
            // invariant in the exported registry, not just the struct.
            let snap = resumed.telemetry().snapshot();
            if let Err(violations) =
                squatphi_telemetry::invariants::durability_invariants().check_all(&snap)
            {
                panic!("threads={threads} run={run}: {violations:?}");
            }
            per_run.push((stopped.durability, resumed.durability, resumed.to_json()));
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(
            per_run[0], per_run[1],
            "threads={threads}: two identical runs diverged in durability telemetry"
        );
        by_threads.push(per_run.remove(0));
    }
    assert_eq!(
        by_threads[0], by_threads[1],
        "1 vs 4 threads changed durability telemetry"
    );
    assert_eq!(
        by_threads[1], by_threads[2],
        "4 vs 8 threads changed durability telemetry"
    );
}

#[test]
fn pipeline_resume_against_a_fully_damaged_store_is_a_structured_error() {
    install_hooks();
    let config = SimConfig::micro();
    let dir = temp_dir("pipeline-unrecoverable");
    let full = SquatPhi::try_run(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("checkpointed run");
    assert!(full.durability.writes >= 1);

    // Damage every on-disk generation of the scan checkpoint.
    let mut damaged = 0;
    for name in RealVfs.list(&dir).expect("list checkpoint dir") {
        if name.starts_with("scan.g") {
            RealVfs
                .write(&dir.join(&name), b"{\"version\": 1, tru")
                .expect("damage generation");
            damaged += 1;
        }
    }
    assert!(damaged >= 1, "no scan generations found to damage");

    let Err(err) = SquatPhi::try_run(
        &config,
        &RunOptions {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..RunOptions::default()
        },
    ) else {
        panic!("resume against a damaged store must fail");
    };
    match &err.kind {
        PipelineErrorKind::Checkpoint(squatphi::CheckpointError::Unrecoverable {
            name, ..
        }) => assert_eq!(*name, "scan"),
        other => panic!("expected a structured unrecoverable error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
