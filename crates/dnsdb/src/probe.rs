//! The active-probing path: how ActiveDNS-style records come to exist.
//!
//! An authoritative UDP server answers A queries out of the snapshot index,
//! and a concurrent prober re-validates candidate domains against it over
//! real sockets. The pipeline uses the offline [`mod@crate::scan`] for bulk
//! work; the prober exists because the paper's dataset is *produced* by
//! active probing, and re-validation of scan hits is part of a production
//! deployment (§7 "monitoring newly registered domain names").
//!
//! Networking follows the tokio idioms from the session guides: one task
//! per in-flight query bounded by a semaphore, graceful shutdown via a
//! watch channel, and no blocking calls on the runtime.

use squatphi_dnswire::{Message, RData, Rcode, RecordType, ResourceRecord};
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::{watch, Semaphore};
use tokio::time::{timeout, Duration};

/// Handle to a running authoritative server.
pub struct AuthServer {
    addr: SocketAddr,
    shutdown: watch::Sender<bool>,
    task: tokio::task::JoinHandle<()>,
}

impl AuthServer {
    /// Spawns an authoritative server on an ephemeral localhost port,
    /// serving A records from `zone`.
    pub async fn spawn(zone: HashMap<String, Ipv4Addr>) -> std::io::Result<AuthServer> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).await?;
        let addr = socket.local_addr()?;
        let (tx, mut rx) = watch::channel(false);
        let zone = Arc::new(zone);
        let task = tokio::spawn(async move {
            let mut buf = vec![0u8; 1500];
            loop {
                tokio::select! {
                    _ = rx.changed() => break,
                    r = socket.recv_from(&mut buf) => {
                        let Ok((n, peer)) = r else { continue };
                        if let Some(reply) = answer(&zone, &buf[..n]) {
                            let _ = socket.send_to(&reply, peer).await;
                        }
                    }
                }
            }
        });
        Ok(AuthServer {
            addr,
            shutdown: tx,
            task,
        })
    }

    /// The server's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and waits for the task to finish.
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.task.await;
    }
}

/// Builds the wire reply for one query packet, or `None` for junk input
/// (an authoritative server stays silent rather than amplifying garbage).
fn answer(zone: &HashMap<String, Ipv4Addr>, packet: &[u8]) -> Option<Vec<u8>> {
    let query = Message::decode(packet).ok()?;
    let q = query.questions.first()?;
    let mut resp = match (q.rtype, zone.get(&q.name.to_ascii_lowercase())) {
        (RecordType::A, Some(&ip)) => {
            let mut m = Message::response_to(&query, Rcode::NoError);
            m.answers.push(ResourceRecord {
                name: q.name.clone(),
                ttl: 300,
                rdata: RData::A(ip),
            });
            m
        }
        _ => Message::response_to(&query, Rcode::NxDomain),
    };
    resp.header.flags.recursion_available = false;
    resp.encode().ok()
}

/// Result of probing one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeResult {
    /// Resolved to an address.
    Resolved(Ipv4Addr),
    /// Authoritative NXDOMAIN.
    NxDomain,
    /// No reply within the per-query timeout (after retries).
    TimedOut,
}

/// Configuration for the prober.
#[derive(Debug, Clone)]
pub struct ProberConfig {
    /// Maximum in-flight queries.
    pub concurrency: usize,
    /// Per-attempt timeout.
    pub timeout: Duration,
    /// Attempts per domain (1 = no retry).
    pub attempts: usize,
}

impl Default for ProberConfig {
    fn default() -> Self {
        ProberConfig {
            concurrency: 64,
            timeout: Duration::from_millis(500),
            attempts: 2,
        }
    }
}

/// Probes `domains` against the authoritative server at `server`.
/// Returns one result per input domain, order-preserving.
pub async fn probe_all(
    server: SocketAddr,
    domains: &[String],
    config: &ProberConfig,
) -> std::io::Result<Vec<ProbeResult>> {
    let sem = Arc::new(Semaphore::new(config.concurrency.max(1)));
    let mut handles = Vec::with_capacity(domains.len());
    for (i, d) in domains.iter().enumerate() {
        let sem = sem.clone();
        let d = d.clone();
        let cfg = config.clone();
        handles.push(tokio::spawn(async move {
            let _permit = sem.acquire().await.expect("semaphore closed");
            probe_one(server, &d, i as u16, &cfg).await
        }));
    }
    let mut out = Vec::with_capacity(domains.len());
    for h in handles {
        out.push(h.await.expect("probe task panicked")?);
    }
    Ok(out)
}

async fn probe_one(
    server: SocketAddr,
    domain: &str,
    id: u16,
    config: &ProberConfig,
) -> std::io::Result<ProbeResult> {
    let socket = UdpSocket::bind(("127.0.0.1", 0)).await?;
    socket.connect(server).await?;
    let query = Message::query(id, domain, RecordType::A)
        .encode()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let mut buf = vec![0u8; 1500];
    for _ in 0..config.attempts.max(1) {
        socket.send(&query).await?;
        match timeout(config.timeout, socket.recv(&mut buf)).await {
            Ok(Ok(n)) => {
                let Ok(msg) = Message::decode(&buf[..n]) else {
                    continue;
                };
                if msg.header.id != id || !msg.header.flags.response {
                    continue;
                }
                for rr in &msg.answers {
                    if let RData::A(ip) = rr.rdata {
                        return Ok(ProbeResult::Resolved(ip));
                    }
                }
                return Ok(match msg.rcode() {
                    Rcode::NxDomain => ProbeResult::NxDomain,
                    _ => ProbeResult::TimedOut,
                });
            }
            // recv errors (e.g. ICMP port-unreachable surfacing as
            // ConnectionRefused on a connected UDP socket) count as a failed
            // attempt, same as silence.
            Ok(Err(_)) => continue,
            Err(_elapsed) => continue,
        }
    }
    Ok(ProbeResult::TimedOut)
}

/// Re-validates scan hits over the wire: serves the snapshot zone from an
/// authoritative server and probes every matched domain, returning
/// `(resolved, nxdomain, timed_out)` counts. A production deployment runs
/// this between the offline scan and the crawl so the crawler only visits
/// domains that still resolve.
pub async fn validate_scan(
    store: &crate::store::RecordStore,
    matches: &[crate::scan::SquatRecord],
    config: &ProberConfig,
) -> std::io::Result<(usize, usize, usize)> {
    let server = AuthServer::spawn(store.index()).await?;
    let domains: Vec<String> = matches
        .iter()
        .map(|m| m.domain.as_str().to_string())
        .collect();
    let results = probe_all(server.addr(), &domains, config).await?;
    server.shutdown().await;
    let mut counts = (0usize, 0usize, 0usize);
    for r in &results {
        match r {
            ProbeResult::Resolved(_) => counts.0 += 1,
            ProbeResult::NxDomain => counts.1 += 1,
            ProbeResult::TimedOut => counts.2 += 1,
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> HashMap<String, Ipv4Addr> {
        let mut z = HashMap::new();
        z.insert("faceb00k.pw".to_string(), Ipv4Addr::new(203, 0, 113, 1));
        z.insert("goofle.com.ua".to_string(), Ipv4Addr::new(203, 0, 113, 2));
        z.insert("paypal-cash.com".to_string(), Ipv4Addr::new(203, 0, 113, 3));
        z
    }

    #[tokio::test]
    async fn resolves_known_names() {
        let server = AuthServer::spawn(zone()).await.unwrap();
        let domains = vec!["faceb00k.pw".to_string(), "goofle.com.ua".to_string()];
        let res = probe_all(server.addr(), &domains, &ProberConfig::default())
            .await
            .unwrap();
        assert_eq!(res[0], ProbeResult::Resolved(Ipv4Addr::new(203, 0, 113, 1)));
        assert_eq!(res[1], ProbeResult::Resolved(Ipv4Addr::new(203, 0, 113, 2)));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn nxdomain_for_unknown_names() {
        let server = AuthServer::spawn(zone()).await.unwrap();
        let domains = vec!["not-in-zone.example".to_string()];
        let res = probe_all(server.addr(), &domains, &ProberConfig::default())
            .await
            .unwrap();
        assert_eq!(res[0], ProbeResult::NxDomain);
        server.shutdown().await;
    }

    #[tokio::test]
    async fn bulk_probe_with_bounded_concurrency() {
        let server = AuthServer::spawn(zone()).await.unwrap();
        let mut domains: Vec<String> = Vec::new();
        for i in 0..200 {
            domains.push(if i % 3 == 0 {
                "paypal-cash.com".to_string()
            } else {
                format!("missing{i}.example")
            });
        }
        let cfg = ProberConfig {
            concurrency: 16,
            ..ProberConfig::default()
        };
        let res = probe_all(server.addr(), &domains, &cfg).await.unwrap();
        assert_eq!(res.len(), 200);
        for (i, r) in res.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*r, ProbeResult::Resolved(Ipv4Addr::new(203, 0, 113, 3)));
            } else {
                assert_eq!(*r, ProbeResult::NxDomain);
            }
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn timeout_when_no_server() {
        // Bind a socket and drop it so nothing listens on the port.
        let sock = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        let dead = sock.local_addr().unwrap();
        drop(sock);
        let cfg = ProberConfig {
            concurrency: 1,
            timeout: Duration::from_millis(50),
            attempts: 1,
        };
        let res = probe_all(dead, &["x.com".to_string()], &cfg).await.unwrap();
        assert_eq!(res[0], ProbeResult::TimedOut);
    }

    #[tokio::test]
    async fn server_ignores_garbage_packets() {
        let server = AuthServer::spawn(zone()).await.unwrap();
        let sock = UdpSocket::bind(("127.0.0.1", 0)).await.unwrap();
        sock.connect(server.addr()).await.unwrap();
        sock.send(b"\x00\x01garbage").await.unwrap();
        // Then a real query still works.
        let res = probe_all(
            server.addr(),
            &["faceb00k.pw".to_string()],
            &ProberConfig::default(),
        )
        .await
        .unwrap();
        assert!(matches!(res[0], ProbeResult::Resolved(_)));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn validate_scan_round_trips_the_snapshot() {
        use crate::synth::{generate, SnapshotConfig};
        use squatphi_squat::{BrandRegistry, SquatDetector};
        let registry = BrandRegistry::with_size(15);
        let cfg = SnapshotConfig {
            benign_records: 300,
            squatting_records: 80,
            subdomain_fraction: 0.0,
            seed: 4,
        };
        let (store, _) = generate(&cfg, &registry);
        let detector = SquatDetector::new(&registry);
        let outcome = crate::scan(&store, &registry, &detector, 2);
        assert!(outcome.total_matches() > 0);
        let (resolved, nx, timeout) =
            validate_scan(&store, &outcome.matches, &ProberConfig::default())
                .await
                .expect("probe");
        // Every scan match came out of the snapshot, so everything must
        // re-resolve against the same zone.
        assert_eq!(
            resolved,
            outcome.total_matches(),
            "nx={nx} timeout={timeout}"
        );
    }

    #[tokio::test]
    async fn case_insensitive_lookup() {
        let server = AuthServer::spawn(zone()).await.unwrap();
        let res = probe_all(
            server.addr(),
            &["FaCeB00k.PW".to_string()],
            &ProberConfig::default(),
        )
        .await
        .unwrap();
        assert!(matches!(res[0], ProbeResult::Resolved(_)));
        server.shutdown().await;
    }
}
