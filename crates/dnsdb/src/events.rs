//! Seeded registration event stream — the live-feed counterpart of
//! [`synth`](crate::synth) (paper §7 "discussion": elite squatters
//! register continuously; a deployed detector must watch the feed, not a
//! frozen snapshot).
//!
//! The stream is *random access*: every event is a pure function of
//! `(config, index)`, so a watch daemon can resume from any watermark in
//! O(1) without replaying RNG state. Timestamps are virtual nanoseconds
//! (fed to a [`squatphi_crawler`-style] virtual clock by the consumer)
//! and arrive in bursts — `burst` registrations packed at the head of
//! each `period_nanos` window — so bounded ingest queues actually see
//! backpressure.
//!
//! [`squatphi_crawler`-style]: crate::synth

use squatphi_squat::gen::{self, GenBudget};
use squatphi_squat::words::BENIGN_WORDS;
use squatphi_squat::{BrandRegistry, SquatType};
use std::net::Ipv4Addr;

/// One observed change in the registration feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A newly-registered domain appeared in the feed.
    Registration {
        /// Registered host name.
        domain: String,
        /// Its A record.
        ip: Ipv4Addr,
    },
    /// A previously-seen domain dropped out of the zone (churn /
    /// takedown / expiry).
    Deregistration {
        /// The dropped domain.
        domain: String,
    },
    /// An external feed (blacklist, CT log, abuse report) mentioned a
    /// domain we may or may not be tracking.
    FeedUpdate {
        /// The reported domain.
        domain: String,
    },
}

impl StreamEvent {
    /// Short kind label for counters and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            StreamEvent::Registration { .. } => "registration",
            StreamEvent::Deregistration { .. } => "deregistration",
            StreamEvent::FeedUpdate { .. } => "feed",
        }
    }
}

/// An event plus its position on the stream's virtual timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Zero-based stream index (the resume watermark unit).
    pub seq: u64,
    /// Virtual arrival time in nanoseconds since the stream epoch.
    /// Monotone non-decreasing in `seq`.
    pub at_nanos: u64,
    /// The event payload.
    pub event: StreamEvent,
}

/// Shape knobs for the event stream. All draws derive from `seed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventStreamConfig {
    /// RNG seed; the whole stream is a pure function of it.
    pub seed: u64,
    /// Per-mille of registrations that are squatting domains.
    pub squat_permille: u16,
    /// Per-mille of events that are deregistrations.
    pub churn_permille: u16,
    /// Per-mille of events that are external feed updates.
    pub feed_permille: u16,
    /// Events per burst window.
    pub burst: u64,
    /// Length of one burst window in virtual nanoseconds.
    pub period_nanos: u64,
    /// Spacing between events inside a burst (clamped so a full burst
    /// fits in its window).
    pub intra_nanos: u64,
}

impl Default for EventStreamConfig {
    fn default() -> Self {
        EventStreamConfig {
            seed: 20180401,
            squat_permille: 300,
            churn_permille: 100,
            feed_permille: 50,
            burst: 5,
            period_nanos: 1_000_000,
            intra_nanos: 150_000,
        }
    }
}

/// Per-brand squat-candidate pool sizes (kept small: the stream needs
/// variety, not the full snapshot-scale pools).
const POOL_BUDGET: GenBudget = GenBudget {
    homograph: 60,
    bits: 40,
    typo: 120,
    combo: 200,
    wrong_tld: 10,
};

/// Hash-salt constants separating independent per-event draws.
const SALT_KIND: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_DOMAIN: u64 = 0xc2b2_ae3d_27d4_eb4f;
const SALT_TARGET: u64 = 0x1656_67b1_9e37_79f9;
const SALT_JITTER: u64 = 0x2545_f491_4f6c_dd1d;
const SALT_IP: u64 = 0x27d4_eb2f_1656_67c5;

/// The seeded event-stream generator.
///
/// ```
/// use squatphi_dnsdb::{EventStream, EventStreamConfig};
/// use squatphi_squat::BrandRegistry;
///
/// let registry = BrandRegistry::with_size(20);
/// let stream = EventStream::new(&EventStreamConfig::default(), &registry);
/// let first = stream.event(0);
/// assert_eq!(first.seq, 0);
/// // Random access: the same index always yields the same event.
/// assert_eq!(stream.event(41), stream.event(41));
/// ```
#[derive(Debug)]
pub struct EventStream {
    config: EventStreamConfig,
    /// Flattened squat candidates: `(brand, type, domain)` in brand
    /// order, weighted by replication so heavy brands dominate draws.
    squat_pool: Vec<(usize, SquatType, String)>,
    intra: u64,
}

impl EventStream {
    /// Builds the stream over `registry`'s brands. Pool construction is
    /// the only non-O(1) work; events themselves are O(1) lookups.
    pub fn new(config: &EventStreamConfig, registry: &BrandRegistry) -> Self {
        let mut squat_pool = Vec::new();
        for brand in registry.brands() {
            // Heavier weight for short/generic labels, echoing the
            // snapshot generator's brand skew.
            let weight = 1 + 8 / brand.label.len().max(1);
            for c in gen::generate_all(brand, POOL_BUDGET) {
                for _ in 0..weight {
                    squat_pool.push((brand.id, c.squat_type, c.domain.as_str().to_string()));
                }
            }
        }
        let burst = config.burst.max(1);
        let intra = config
            .intra_nanos
            .max(1)
            .min(config.period_nanos.max(burst) / burst);
        EventStream {
            config: config.clone(),
            squat_pool,
            intra,
        }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &EventStreamConfig {
        &self.config
    }

    /// The event at stream index `seq`.
    pub fn event(&self, seq: u64) -> TimedEvent {
        let event = self.payload(seq);
        TimedEvent {
            seq,
            at_nanos: self.arrival(seq),
            event,
        }
    }

    /// Virtual arrival time of event `seq`: bursts of
    /// `config.burst` events at the head of each window, with a small
    /// deterministic jitter that preserves monotonicity.
    fn arrival(&self, seq: u64) -> u64 {
        let burst = self.config.burst.max(1);
        let group = seq / burst;
        let slot = seq % burst;
        let jitter = mix(self.config.seed, seq, SALT_JITTER) % self.intra.max(1);
        group * self.config.period_nanos + slot * self.intra + jitter
    }

    fn payload(&self, seq: u64) -> StreamEvent {
        let kind_draw = (mix(self.config.seed, seq, SALT_KIND) % 1000) as u16;
        let churn = self.config.churn_permille;
        let feed = self.config.feed_permille;
        // The first event has no predecessor to churn or report on.
        if seq > 0 && kind_draw < churn {
            let target = mix(self.config.seed, seq, SALT_TARGET) % seq;
            return StreamEvent::Deregistration {
                domain: self.registration_domain(target),
            };
        }
        if seq > 0 && kind_draw < churn + feed {
            let target = mix(self.config.seed, seq, SALT_TARGET) % seq;
            return StreamEvent::FeedUpdate {
                domain: self.registration_domain(target),
            };
        }
        let h = mix(self.config.seed, seq, SALT_IP);
        StreamEvent::Registration {
            domain: self.registration_domain(seq),
            ip: public_ip(h),
        }
    }

    /// The domain *as if* index `seq` were a registration — the pure
    /// anchor churn and feed events point back at, independent of what
    /// kind index `seq` actually resolved to.
    fn registration_domain(&self, seq: u64) -> String {
        let h = mix(self.config.seed, seq, SALT_DOMAIN);
        let squatty =
            !self.squat_pool.is_empty() && (h % 1000) < u64::from(self.config.squat_permille);
        if squatty {
            let (_, _, domain) = &self.squat_pool[(h >> 10) as usize % self.squat_pool.len()];
            domain.clone()
        } else {
            benign_domain(h)
        }
    }
}

/// SplitMix64-style avalanche over `(seed, index, salt)`.
fn mix(seed: u64, index: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index)
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A public-looking unicast IPv4 address derived from `h`.
fn public_ip(h: u64) -> Ipv4Addr {
    let mut a = (1 + h % 223) as u8;
    if a == 10 {
        a = 11;
    }
    if a == 127 {
        a = 128;
    }
    Ipv4Addr::new(a, (h >> 8) as u8, (h >> 16) as u8, (h >> 24) as u8)
}

/// A benign dictionary-material domain derived from `h`.
fn benign_domain(h: u64) -> String {
    let tlds = [
        "com", "com", "com", "net", "org", "de", "ru", "co", "io", "info",
    ];
    let w1 = BENIGN_WORDS[(h >> 3) as usize % BENIGN_WORDS.len()];
    let w2 = BENIGN_WORDS[(h >> 19) as usize % BENIGN_WORDS.len()];
    let tld = tlds[(h >> 35) as usize % tlds.len()];
    match h % 4 {
        0 => format!("{w1}.{tld}"),
        1 => format!("{w1}{}.{tld}", h % 997),
        2 => format!("{w1}{w2}.{tld}"),
        _ => format!("{w1}-{w2}.{tld}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> EventStream {
        let registry = BrandRegistry::with_size(20);
        let config = EventStreamConfig {
            seed,
            ..EventStreamConfig::default()
        };
        EventStream::new(&config, &registry)
    }

    #[test]
    fn deterministic_across_instances() {
        let a = stream(7);
        let b = stream(7);
        for i in 0..500 {
            assert_eq!(a.event(i), b.event(i), "event {i} diverged");
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = stream(7);
        let b = stream(8);
        let differing = (0..200).filter(|&i| a.event(i) != b.event(i)).count();
        assert!(differing > 100, "only {differing}/200 events differ");
    }

    #[test]
    fn timestamps_monotone() {
        let s = stream(1);
        let mut last = 0u64;
        for i in 0..2000 {
            let t = s.event(i).at_nanos;
            assert!(t >= last, "event {i} went back in time: {t} < {last}");
            last = t;
        }
    }

    #[test]
    fn bursts_fit_their_window() {
        let s = stream(3);
        let cfg = s.config().clone();
        for i in 0..1000 {
            let t = s.event(i).at_nanos;
            let window = i / cfg.burst;
            assert!(t >= window * cfg.period_nanos);
            assert!(t < (window + 1) * cfg.period_nanos, "event {i} overflows");
        }
    }

    #[test]
    fn all_kinds_appear_with_expected_mix() {
        let s = stream(11);
        let (mut reg, mut de, mut feed) = (0u32, 0u32, 0u32);
        for i in 0..2000 {
            match s.event(i).event {
                StreamEvent::Registration { .. } => reg += 1,
                StreamEvent::Deregistration { .. } => de += 1,
                StreamEvent::FeedUpdate { .. } => feed += 1,
            }
        }
        assert!(reg > 1500, "registrations {reg}");
        assert!(de > 100, "deregistrations {de}");
        assert!(feed > 40, "feed updates {feed}");
    }

    #[test]
    fn churn_targets_are_prior_registration_anchors() {
        let s = stream(5);
        for i in 1..1000 {
            if let StreamEvent::Deregistration { domain } = s.event(i).event {
                let found = (0..i).any(|j| s.registration_domain(j) == domain);
                assert!(found, "event {i} churns a domain no anchor produced");
            }
        }
    }

    #[test]
    fn squatting_domains_present() {
        let registry = BrandRegistry::with_size(20);
        let s = stream(2);
        let detector = squatphi_squat::SquatDetector::new(&registry);
        let mut hits = 0u32;
        for i in 0..1000 {
            if let StreamEvent::Registration { domain, .. } = s.event(i).event {
                if let Ok(d) = squatphi_domain::DomainName::parse(&domain) {
                    if detector.classify(&d).is_some() {
                        hits += 1;
                    }
                }
            }
        }
        assert!(hits > 100, "only {hits} squatting registrations in 1000");
    }

    #[test]
    fn ips_look_public() {
        let s = stream(9);
        for i in 0..500 {
            if let StreamEvent::Registration { ip, .. } = s.event(i).event {
                let o = ip.octets();
                assert!(o[0] >= 1 && o[0] <= 223 && o[0] != 10 && o[0] != 127);
            }
        }
    }

    #[test]
    fn event_kinds_label() {
        let s = stream(4);
        let k = s.event(0).event.kind();
        assert_eq!(k, "registration");
    }
}
