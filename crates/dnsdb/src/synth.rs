//! Deterministic synthetic snapshot generator.
//!
//! Reproduces the statistical structure the paper measured (§3.1):
//!
//! * squatting types split roughly as combo 56% / typo 25% / bits 7% /
//!   wrongTLD 6% / homograph 5% (Figure 2),
//! * brand skew: the top-20 brands own >30% of squatting domains and the
//!   top brand ~6% (Figures 3-4), driven by short/generic labels,
//! * the rest of the haystack is benign dictionary-material domains.

use crate::store::RecordStore;
use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_domain::idna;
use squatphi_squat::gen::{self, GenBudget};
use squatphi_squat::words::BENIGN_WORDS;
use squatphi_squat::{BrandRegistry, SquatType};
use std::net::Ipv4Addr;

/// Scale knobs for the synthetic snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Number of benign (non-squatting) haystack records.
    pub benign_records: usize,
    /// Number of planted squatting records.
    pub squatting_records: usize,
    /// Fraction of records that carry a subdomain label (ActiveDNS seeds
    /// include host names, not only registrable domains).
    pub subdomain_fraction: f64,
    /// RNG seed; every draw derives from it.
    pub seed: u64,
}

impl SnapshotConfig {
    /// Paper scale divided by `divisor` (224.8M records / 657,663 squats).
    pub fn paper_scale(divisor: usize) -> Self {
        let d = divisor.max(1);
        SnapshotConfig {
            benign_records: (224_810_532usize - 657_663) / d,
            squatting_records: 657_663 / d,
            subdomain_fraction: 0.25,
            seed: 20180906,
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        SnapshotConfig {
            benign_records: 2_000,
            squatting_records: 600,
            subdomain_fraction: 0.2,
            seed: 7,
        }
    }
}

/// What was actually planted (ground truth for scan-recall checks).
#[derive(Debug, Clone, Default)]
pub struct SnapshotStats {
    /// Planted squatting domains per type, paper order
    /// (homograph, bits, typo, combo, wrongTLD).
    pub planted_by_type: [usize; 5],
    /// Planted squatting domains per brand id.
    pub planted_by_brand: Vec<usize>,
    /// Total records in the snapshot.
    pub total_records: usize,
}

/// Paper type mix (Figure 2): homograph, bits, typo, combo, wrongTLD.
const TYPE_MIX: [(SquatType, f64); 5] = [
    (SquatType::Homograph, 32_646.0 / 657_663.0),
    (SquatType::Bits, 48_097.0 / 657_663.0),
    (SquatType::Typo, 166_152.0 / 657_663.0),
    (SquatType::Combo, 371_354.0 / 657_663.0),
    (SquatType::WrongTld, 39_414.0 / 657_663.0),
];

/// Generates the snapshot. Returns the record store and planting stats.
///
/// Deterministic: identical `(config, registry)` inputs produce an
/// identical snapshot.
pub fn generate(config: &SnapshotConfig, registry: &BrandRegistry) -> (RecordStore, SnapshotStats) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut store = RecordStore::with_capacity(config.benign_records + config.squatting_records);
    let mut stats = SnapshotStats {
        planted_by_brand: vec![0; registry.len()],
        ..SnapshotStats::default()
    };

    plant_squats(config, registry, &mut rng, &mut store, &mut stats);
    plant_benign(config, &mut rng, &mut store);

    stats.total_records = store.len();
    (store, stats)
}

/// Brand weights reproducing the paper's skew: a handful of short/generic
/// labels (vice, porn, bt, apple, ford) dominate, the tail is zipfian.
fn brand_weights(registry: &BrandRegistry) -> Vec<f64> {
    registry
        .brands()
        .iter()
        .map(|b| {
            let boost = match b.label.as_str() {
                "vice" => 75.0,  // 5.98% in Figure 4
                "porn" => 35.0,  // 2.76%
                "bt" => 31.0,    // 2.46%
                "apple" => 26.0, // 2.05%
                "ford" => 23.0,  // 1.85%
                "amazon" => 20.0,
                "google" => 30.0,
                "paypal" => 10.0,
                "facebook" => 15.0,
                "uber" => 20.0,
                "citi" => 15.0,
                _ => 0.0,
            };
            // Zipf-flavored tail on rank, plus shorter labels attract more
            // squatters (cheaper to imitate).
            let zipf = 10.0 / (b.id as f64 + 2.0).powf(0.6);
            let short = 8.0 / b.label.len() as f64;
            boost + zipf + short
        })
        .collect()
}

fn plant_squats(
    config: &SnapshotConfig,
    registry: &BrandRegistry,
    rng: &mut StdRng,
    store: &mut RecordStore,
    stats: &mut SnapshotStats,
) {
    let weights = brand_weights(registry);
    let total_w: f64 = weights.iter().sum();
    // Pre-generate candidate pools lazily per brand (the budget bounds the
    // memory; combo is effectively unbounded so it back-fills any deficit).
    let mut pools: Vec<Option<[Vec<String>; 5]>> = vec![None; registry.len()];
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut planted = 0usize;
    let mut brand_order: Vec<usize> = (0..registry.len()).collect();
    brand_order.shuffle(rng);

    // Allocate counts per brand proportional to weight.
    let mut alloc: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total_w) * config.squatting_records as f64).floor() as usize)
        .collect();
    let mut deficit =
        config.squatting_records - alloc.iter().sum::<usize>().min(config.squatting_records);
    // Give the remainder to the heaviest brands.
    let mut heavy: Vec<usize> = (0..registry.len()).collect();
    heavy.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
    for &b in heavy.iter().cycle().take(registry.len() * 4) {
        if deficit == 0 {
            break;
        }
        alloc[b] += 1;
        deficit -= 1;
    }

    // Global per-type quotas (largest remainder over the whole plant),
    // so the Figure 2 mix survives even when most brands plant only one
    // or two squats.
    let mut quota: [usize; 5] = [0; 5];
    {
        let total = config.squatting_records;
        let mut assigned = 0usize;
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(5);
        for (i, (_, frac)) in TYPE_MIX.iter().enumerate() {
            let exact = total as f64 * frac;
            quota[i] = exact.floor() as usize;
            assigned += quota[i];
            fracs.push((i, exact - exact.floor()));
        }
        fracs.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (i, _) in fracs.into_iter().take(total - assigned) {
            quota[i] += 1;
        }
    }
    let targets = quota;

    for &bid in &brand_order {
        let want = alloc[bid];
        if want == 0 {
            continue;
        }
        let brand = registry.get(bid).expect("brand id");
        let pool = pools[bid].get_or_insert_with(|| build_pool(brand));
        let mut pool_pos = [0usize; 5];
        let mut backfill = 0usize;
        for _ in 0..want {
            if planted >= config.squatting_records {
                return;
            }
            // Pick the type with the largest *relative* remaining quota
            // (proportional-fair depletion), skipping types whose pool
            // for this brand is exhausted.
            let mut order: Vec<usize> = (0..5).collect();
            order.sort_by(|&a, &b| {
                let ra = quota[a] as f64 / targets[a].max(1) as f64;
                let rb = quota[b] as f64 / targets[b].max(1) as f64;
                // total_cmp: a degenerate weight config (zero totals, NaN
                // ratios) must skew the ordering, not panic the synth.
                rb.total_cmp(&ra)
            });
            let mut placed = false;
            for ti in order {
                if quota[ti] == 0 {
                    continue;
                }
                // Advance past already-used candidates.
                while pool_pos[ti] < pool[ti].len() && seen.contains(&pool[ti][pool_pos[ti]]) {
                    pool_pos[ti] += 1;
                }
                if pool_pos[ti] >= pool[ti].len() {
                    continue; // pool dry for this brand
                }
                let dom = pool[ti][pool_pos[ti]].clone();
                pool_pos[ti] += 1;
                seen.insert(dom.clone());
                push_record(&dom, config, rng, store);
                stats.planted_by_type[ti] += 1;
                stats.planted_by_brand[bid] += 1;
                quota[ti] -= 1;
                planted += 1;
                placed = true;
                break;
            }
            if !placed {
                // Every in-quota pool is dry: numbered combo back-fill.
                let dom = format!(
                    "{}-{}{}.{}",
                    brand.label,
                    ["promo", "news", "team", "app", "cloud"][backfill % 5],
                    backfill / 5,
                    ["com", "net", "org", "xyz", "online"][backfill % 5]
                );
                backfill += 1;
                if seen.insert(dom.clone()) {
                    push_record(&dom, config, rng, store);
                    stats.planted_by_type[3] += 1;
                    stats.planted_by_brand[bid] += 1;
                    quota[3] = quota[3].saturating_sub(1);
                    planted += 1;
                }
            }
        }
    }
}

/// Builds per-type candidate pools for one brand, paper type order.
fn build_pool(brand: &squatphi_squat::Brand) -> [Vec<String>; 5] {
    let budget = GenBudget {
        homograph: 400,
        bits: 200,
        typo: 600,
        combo: 800,
        wrong_tld: 25,
    };
    let mut pool: [Vec<String>; 5] = Default::default();
    for c in gen::generate_all(brand, budget) {
        let idx = match c.squat_type {
            SquatType::Homograph => 0,
            SquatType::Bits => 1,
            SquatType::Typo => 2,
            SquatType::Combo => 3,
            SquatType::WrongTld => 4,
        };
        pool[idx].push(c.domain.as_str().to_string());
    }
    pool
}

fn push_record(domain: &str, config: &SnapshotConfig, rng: &mut StdRng, store: &mut RecordStore) {
    let full = if rng.gen_bool(config.subdomain_fraction) {
        let sub = ["www", "mail", "m", "login", "app"][rng.gen_range(0..5)];
        format!("{sub}.{domain}")
    } else {
        domain.to_string()
    };
    store.push(full, random_ip(rng));
}

fn random_ip(rng: &mut StdRng) -> Ipv4Addr {
    // Public-looking unicast space, avoiding 0/10/127/169.254/224+.
    loop {
        let a = rng.gen_range(1..=223u8);
        if a == 10 || a == 127 {
            continue;
        }
        return Ipv4Addr::new(a, rng.gen(), rng.gen(), rng.gen());
    }
}

fn plant_benign(config: &SnapshotConfig, rng: &mut StdRng, store: &mut RecordStore) {
    let tlds = [
        "com", "com", "com", "net", "org", "de", "ru", "co", "io", "info", "fr", "nl", "it", "pl",
        "br",
    ];
    for i in 0..config.benign_records {
        let w1 = BENIGN_WORDS[rng.gen_range(0..BENIGN_WORDS.len())];
        let label = match i % 5 {
            0 => w1.to_string(),
            1 => format!("{w1}{}", rng.gen_range(1..999u32)),
            2 => format!("{w1}{}", BENIGN_WORDS[rng.gen_range(0..BENIGN_WORDS.len())]),
            3 => format!(
                "{w1}-{}",
                BENIGN_WORDS[rng.gen_range(0..BENIGN_WORDS.len())]
            ),
            _ => format!("{}{w1}", BENIGN_WORDS[rng.gen_range(0..BENIGN_WORDS.len())]),
        };
        let tld = tlds[rng.gen_range(0..tlds.len())];
        push_record(&format!("{label}.{tld}"), config, rng, store);
    }
}

/// Returns the Unicode display form of a snapshot domain (IDN-aware);
/// convenience for reports.
pub fn display_domain(domain: &str) -> String {
    idna::to_unicode(domain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (RecordStore, SnapshotStats, BrandRegistry) {
        let reg = BrandRegistry::with_size(40);
        let cfg = SnapshotConfig::tiny();
        let (store, stats) = generate(&cfg, &reg);
        (store, stats, reg)
    }

    #[test]
    fn generates_requested_volume() {
        let (store, stats, _) = small();
        let cfg = SnapshotConfig::tiny();
        assert_eq!(store.len(), stats.total_records);
        // Planting may fall slightly short if pools dedupe, never over.
        let squats: usize = stats.planted_by_type.iter().sum();
        assert!(squats <= cfg.squatting_records);
        assert!(
            squats as f64 >= cfg.squatting_records as f64 * 0.9,
            "planted only {squats}"
        );
        assert!(store.len() >= cfg.benign_records);
    }

    #[test]
    fn deterministic() {
        let reg = BrandRegistry::with_size(20);
        let cfg = SnapshotConfig::tiny();
        let (a, _) = generate(&cfg, &reg);
        let (b, _) = generate(&cfg, &reg);
        assert_eq!(a.records().len(), b.records().len());
        assert_eq!(a.records()[0], b.records()[0]);
        assert_eq!(a.records()[a.len() - 1], b.records()[b.len() - 1]);
    }

    #[test]
    fn combo_dominates_type_mix() {
        let (_, stats, _) = small();
        let combo = stats.planted_by_type[3];
        let total: usize = stats.planted_by_type.iter().sum();
        let frac = combo as f64 / total as f64;
        assert!(
            frac > 0.4 && frac < 0.7,
            "combo fraction {frac} out of band"
        );
    }

    #[test]
    fn all_five_types_planted() {
        let (_, stats, _) = small();
        for (i, n) in stats.planted_by_type.iter().enumerate() {
            assert!(*n > 0, "type index {i} not planted");
        }
    }

    #[test]
    fn brand_skew_present() {
        let (_, stats, reg) = small();
        // vice must be among the heaviest brands.
        let vice = reg.by_label("vice").expect("vice in first 40").id;
        let max = stats.planted_by_brand.iter().max().copied().unwrap_or(0);
        assert!(stats.planted_by_brand[vice] as f64 >= max as f64 * 0.5);
    }

    #[test]
    fn ips_look_public() {
        let (store, _, _) = small();
        for r in store.records().iter().take(500) {
            let o = r.ip.octets();
            assert!(o[0] >= 1 && o[0] <= 223 && o[0] != 10 && o[0] != 127);
        }
    }
}
