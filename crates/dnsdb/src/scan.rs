//! Multi-threaded squatting scan over the record store (Figure 2 path).
//!
//! # Scheduling
//!
//! Workers do not own fixed contiguous chunks. The store is cut into
//! small **blocks** and every worker pulls the next unclaimed block index
//! from a shared atomic cursor (the `FeatureExtractor::analyze_batch`
//! pattern), so a run of expensive records on one thread never stalls the
//! others and the work stays balanced regardless of how matches cluster
//! in the snapshot. The block size adapts to the input: at least four
//! blocks per requested worker (so tiny stores still fan out — the old
//! `div_ceil` chunking spawned 5 workers for 9 records × 8 threads),
//! capped at [`MAX_BLOCK`] records so huge stores rebalance often.
//!
//! # Determinism
//!
//! Results are merged **in block order**, which is store order, so the
//! first-record-wins dedupe produces byte-identical `matches`, `by_type`
//! and `by_brand` for every thread count (see
//! `scan_is_deterministic_across_thread_counts`).
//!
//! # Failure
//!
//! A panic inside a worker no longer takes the process down with a bare
//! `join().expect(..)`: each block runs under `catch_unwind`, remaining
//! workers drain, and [`try_scan_with_metrics`] returns a structured
//! [`ScanError`] naming the failing shard so the supervision layer can
//! surface it as a `StagePanic` and retry or checkpoint around it.

use crate::store::RecordStore;
use squatphi_domain::DomainName;
use squatphi_squat::{BrandId, BrandRegistry, ClassifyStats, SquatDetector, SquatMatch, SquatType};
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Upper bound on records per scheduler block. Small enough that even a
/// snapshot-sized store produces hundreds of blocks for the cursor to
/// balance, large enough that the per-block bookkeeping (one atomic
/// fetch-add, one `Vec` push) is noise against classifying the records.
const MAX_BLOCK: usize = 8192;

/// One detected squatting record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquatRecord {
    /// The squatting domain (validated, registrable-label aware).
    pub domain: DomainName,
    /// The raw record's IP.
    pub ip: Ipv4Addr,
    /// The impersonated brand.
    pub brand: BrandId,
    /// The detected squatting type.
    pub squat_type: SquatType,
}

/// Aggregate result of a snapshot scan.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Every unique registrable squatting domain found.
    pub matches: Vec<SquatRecord>,
    /// Counts per type, paper order (homograph, bits, typo, combo, wrongTLD).
    pub by_type: [usize; 5],
    /// Counts per brand id.
    pub by_brand: Vec<usize>,
    /// Records scanned.
    pub scanned: usize,
    /// Records that failed domain validation (skipped).
    pub invalid: usize,
}

/// Telemetry leaf names for [`ScanOutcome::by_type`], paper order.
const TYPE_NAMES: [&str; 5] = ["homograph", "bits", "typo", "combo", "wrong_tld"];

impl ScanOutcome {
    /// Total squatting domains found.
    pub fn total_matches(&self) -> usize {
        self.matches.len()
    }

    /// Count for one squatting type.
    pub fn count(&self, ty: SquatType) -> usize {
        self.by_type[type_index(ty)]
    }

    /// Publishes the outcome into a telemetry scope (canonically `scan`).
    /// Everything exported here is deterministic and thread-count
    /// invariant; execution-shape data lives in [`ScanMetrics::export`]'s
    /// `exec.` subscope.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        scope.set_u64("scanned", self.scanned as u64);
        scope.set_u64("invalid", self.invalid as u64);
        scope.set_u64("matches", self.matches.len() as u64);
        let by_type = scope.scope("by_type");
        for (name, count) in TYPE_NAMES.iter().zip(self.by_type.iter()) {
            by_type.set_u64(name, *count as u64);
        }
        scope.set_u64(
            "by_brand_total",
            self.by_brand.iter().map(|c| *c as u64).sum(),
        );
    }
}

/// A scan worker panicked. The scan is abandoned (remaining workers
/// drain without starting new blocks) and no partial outcome is exposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError {
    /// Index of the scheduler block (shard) whose records were being
    /// classified when the panic fired; the smallest failing index when
    /// several workers trip concurrently.
    pub shard: usize,
    /// The panic payload, stringified.
    pub cause: String,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scan worker panicked on shard {}: {}",
            self.shard, self.cause
        )
    }
}

impl std::error::Error for ScanError {}

/// Counters one scan worker reports for the blocks it claimed.
#[derive(Debug, Clone, Default)]
pub struct WorkerMetrics {
    /// Records this worker classified (valid or not).
    pub records: usize,
    /// Records that failed domain validation.
    pub invalid: usize,
    /// Scheduler blocks this worker claimed from the cursor.
    pub blocks: usize,
    /// Detector probes performed across the claimed blocks (fingerprint
    /// tests; each corresponds to one legacy hash probe).
    pub probes: u64,
    /// Probes that passed the fingerprint bit filter and consulted the
    /// backing map (see `squatphi_squat::ClassifyStats::deep_probes`).
    pub deep_probes: u64,
    /// Heap allocations the detector's stack buffers avoided
    /// (see `squatphi_squat::ClassifyStats`).
    pub allocations_avoided: u64,
    /// Wall-clock time the worker spent, spawn to drain.
    pub elapsed: Duration,
}

impl WorkerMetrics {
    /// Records classified per second by this worker.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.records as f64 / secs
        } else {
            0.0
        }
    }
}

/// Instrumentation for one [`scan`] call: per-worker counters plus the
/// merge-phase dedupe statistics and the end-to-end wall clock.
#[derive(Debug, Clone, Default)]
pub struct ScanMetrics {
    /// One entry per spawned worker thread, in spawn order.
    pub workers: Vec<WorkerMetrics>,
    /// Worker threads the caller asked for. The scan spawns
    /// `min(requested, blocks)` — fewer only when the store has fewer
    /// records than requested workers — and reports both so silent
    /// under-use of cores (the old `div_ceil` chunking bug) is visible.
    pub requested_workers: usize,
    /// Matches dropped at merge because an earlier block already claimed
    /// the registrable domain (first-record-wins dedupe).
    pub dedupe_collisions: usize,
    /// Wall-clock time of the whole scan, including the merge.
    pub wall: Duration,
}

impl ScanMetrics {
    /// Worker threads actually spawned.
    pub fn actual_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total records classified across all workers.
    pub fn records(&self) -> usize {
        self.workers.iter().map(|w| w.records).sum()
    }

    /// Total invalid records across all workers.
    pub fn invalid(&self) -> usize {
        self.workers.iter().map(|w| w.invalid).sum()
    }

    /// Total detector probes across all workers.
    pub fn probes(&self) -> u64 {
        self.workers.iter().map(|w| w.probes).sum()
    }

    /// Total probes that got past the fingerprint filter.
    pub fn deep_probes(&self) -> u64 {
        self.workers.iter().map(|w| w.deep_probes).sum()
    }

    /// Total heap allocations avoided across all workers.
    pub fn allocations_avoided(&self) -> u64 {
        self.workers.iter().map(|w| w.allocations_avoided).sum()
    }

    /// End-to-end throughput (records per wall-clock second, all workers).
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records() as f64 / secs
        } else {
            0.0
        }
    }

    /// Publishes the instrumentation into the same scope as
    /// [`ScanOutcome::export`]. Aggregates that must reconcile with the
    /// outcome (`exec.records`, `exec.invalid`) and merge statistics land
    /// at the top level; per-run execution shape (worker counts, the
    /// worker duration histogram) goes under `exec.` so invariance tests
    /// can drop it, and wall-clock values use timing-rule names so default
    /// output strips them.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        scope.set_u64("dedupe_collisions", self.dedupe_collisions as u64);
        scope.set_u64(
            "wall_nanos",
            u64::try_from(self.wall.as_nanos()).unwrap_or(u64::MAX),
        );
        scope.set_f64("records_per_sec", self.records_per_sec());
        let exec = scope.scope("exec");
        exec.set_u64("requested_workers", self.requested_workers as u64);
        exec.set_u64("actual_workers", self.actual_workers() as u64);
        exec.set_u64("records", self.records() as u64);
        exec.set_u64("invalid", self.invalid() as u64);
        exec.set_u64("blocks", self.workers.iter().map(|w| w.blocks as u64).sum());
        exec.set_u64("probes", self.probes());
        exec.set_u64("deep_probes", self.deep_probes());
        exec.set_u64("allocations_avoided", self.allocations_avoided());
        let durations = exec.histogram("worker_durations");
        for w in &self.workers {
            durations.record(w.elapsed);
        }
    }

    /// Whether the scan's conservation identities hold for an exported
    /// snapshot — the declarative replacement for the ad-hoc assertions
    /// that used to live in every consumer.
    pub fn reconciles(outcome: &ScanOutcome, metrics: &ScanMetrics) -> bool {
        let reg = squatphi_telemetry::Registry::new();
        let scope = reg.scope("scan");
        outcome.export(&scope);
        metrics.export(&scope);
        squatphi_telemetry::invariants::scan_invariants().all_hold(&reg.snapshot())
    }
}

/// Paper-order index of a type.
pub(crate) fn type_index(ty: SquatType) -> usize {
    match ty {
        SquatType::Homograph => 0,
        SquatType::Bits => 1,
        SquatType::Typo => 2,
        SquatType::Combo => 3,
        SquatType::WrongTld => 4,
    }
}

/// The classification interface the scheduler drives. Sealed to the
/// crate: production always uses [`SquatDetector`]; tests inject failing
/// classifiers to exercise the panic path.
pub(crate) trait Classify: Sync {
    /// Classify one parsed domain, accumulating stats.
    fn classify_record(&self, domain: &DomainName, stats: &mut ClassifyStats)
        -> Option<SquatMatch>;
}

impl Classify for SquatDetector {
    fn classify_record(
        &self,
        domain: &DomainName,
        stats: &mut ClassifyStats,
    ) -> Option<SquatMatch> {
        self.classify_with_stats(domain, stats)
    }
}

/// Scans the snapshot with `threads` worker threads (1 = sequential).
/// Matches are deduplicated on the registrable domain: `www.goofle.com.ua`
/// and `goofle.com.ua` count once, per the paper's handling of subdomains.
///
/// # Panics
/// Re-raises a worker panic as its own; use [`try_scan_with_metrics`] to
/// handle worker failure structurally.
pub fn scan(
    store: &RecordStore,
    registry: &BrandRegistry,
    detector: &SquatDetector,
    threads: usize,
) -> ScanOutcome {
    scan_with_metrics(store, registry, detector, threads).0
}

/// [`scan`], additionally returning per-worker and merge instrumentation.
///
/// # Panics
/// Re-raises a worker panic (with its shard attached); callers that must
/// survive it — the supervised pipeline — use [`try_scan_with_metrics`].
pub fn scan_with_metrics(
    store: &RecordStore,
    registry: &BrandRegistry,
    detector: &SquatDetector,
    threads: usize,
) -> (ScanOutcome, ScanMetrics) {
    match try_scan_with_metrics(store, registry, detector, threads) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`scan_with_metrics`] with structured worker-failure reporting: a
/// panicking worker yields `Err(ScanError)` naming the failing shard
/// instead of poisoning the whole process.
pub fn try_scan_with_metrics(
    store: &RecordStore,
    registry: &BrandRegistry,
    detector: &SquatDetector,
    threads: usize,
) -> Result<(ScanOutcome, ScanMetrics), ScanError> {
    try_scan_impl(store.records(), registry.len(), detector, threads)
}

/// What one scheduler block contributes. Per-type / per-brand counters
/// are derived at merge time from the dedupe-surviving matches, so blocks
/// only carry what the merge actually consumes.
#[derive(Debug, Default)]
struct BlockPartial {
    matches: Vec<SquatRecord>,
    scanned: usize,
    invalid: usize,
}

fn try_scan_impl<C: Classify>(
    records: &[crate::store::DnsRecord],
    brand_count: usize,
    classifier: &C,
    threads: usize,
) -> Result<(ScanOutcome, ScanMetrics), ScanError> {
    let start = Instant::now();
    let requested = threads.max(1);
    let mut out = ScanOutcome {
        by_brand: vec![0; brand_count],
        ..ScanOutcome::default()
    };
    let mut metrics = ScanMetrics {
        requested_workers: requested,
        ..ScanMetrics::default()
    };
    if records.is_empty() {
        metrics.wall = start.elapsed();
        return Ok((out, metrics));
    }

    // ≥4 blocks per requested worker so the cursor has slack to balance,
    // capped so snapshot-sized stores rebalance often.
    let block = records.len().div_ceil(requested * 4).clamp(1, MAX_BLOCK);
    let blocks = records.len().div_ceil(block);
    let workers = requested.min(blocks);

    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // Smallest failing block and its panic payload (deterministic pick
    // when several workers trip at once).
    let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);

    let record_failure = |shard: usize, cause: String| {
        abort.store(true, Ordering::Relaxed);
        let mut slot = failure.lock().expect("failure slot");
        if slot.as_ref().is_none_or(|(s, _)| shard < *s) {
            *slot = Some((shard, cause));
        }
    };

    // One worker loop, shared by the spawned threads and the calling
    // thread: the caller runs a worker itself, so a 1-thread scan spawns
    // nothing and an N-thread scan spawns N − 1. Block-level panics are
    // caught inside the loop; the catch around the loop itself (mirrored
    // by `join` for spawned workers) covers scheduler bookkeeping.
    let worker_loop = || {
        let t0 = Instant::now();
        let mut mine = Vec::new();
        let mut wm = WorkerMetrics::default();
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            let lo = b * block;
            if lo >= records.len() {
                break;
            }
            let hi = (lo + block).min(records.len());
            let run = catch_unwind(AssertUnwindSafe(|| {
                scan_block(&records[lo..hi], classifier)
            }));
            match run {
                Ok((partial, stats)) => {
                    wm.records += partial.scanned;
                    wm.invalid += partial.invalid;
                    wm.blocks += 1;
                    wm.probes += stats.probes;
                    wm.deep_probes += stats.deep_probes;
                    wm.allocations_avoided += stats.allocations_avoided;
                    mine.push((b, partial));
                }
                Err(payload) => {
                    record_failure(b, panic_message(payload.as_ref()));
                    break;
                }
            }
        }
        wm.elapsed = t0.elapsed();
        (mine, wm)
    };

    let results: Vec<(Vec<(usize, BlockPartial)>, WorkerMetrics)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (1..workers).map(|_| s.spawn(|_| worker_loop())).collect();
        let inline = match catch_unwind(AssertUnwindSafe(&worker_loop)) {
            Ok(r) => r,
            Err(payload) => {
                record_failure(usize::MAX, panic_message(payload.as_ref()));
                (Vec::new(), WorkerMetrics::default())
            }
        };
        let mut results = vec![inline];
        results.extend(handles.into_iter().map(|h| match h.join() {
            Ok(r) => r,
            Err(payload) => {
                // A panic outside catch_unwind (scheduler bookkeeping
                // itself) — attribute it to the whole scan.
                record_failure(usize::MAX, panic_message(payload.as_ref()));
                (Vec::new(), WorkerMetrics::default())
            }
        }));
        results
    })
    .expect("crossbeam scope itself never panics: workers are caught above");

    if let Some((shard, cause)) = failure.into_inner().expect("failure slot") {
        return Err(ScanError { shard, cause });
    }

    // Merge in block order == store order, so first-record-wins dedupe is
    // deterministic for every thread count.
    let mut slots: Vec<Option<BlockPartial>> = Vec::with_capacity(blocks);
    slots.resize_with(blocks, || None);
    for (mine, wm) in results {
        for (b, partial) in mine {
            debug_assert!(slots[b].is_none(), "cursor hands out each block once");
            slots[b] = Some(partial);
        }
        metrics.workers.push(wm);
    }
    let mut seen = std::collections::HashSet::new();
    for slot in slots {
        let p = slot.expect("no failure recorded, so every block completed");
        out.scanned += p.scanned;
        out.invalid += p.invalid;
        for m in p.matches {
            if seen.insert(m.domain.registrable()) {
                out.by_type[type_index(m.squat_type)] += 1;
                out.by_brand[m.brand] += 1;
                out.matches.push(m);
            } else {
                metrics.dedupe_collisions += 1;
            }
        }
    }
    metrics.wall = start.elapsed();
    Ok((out, metrics))
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn scan_block<C: Classify>(
    records: &[crate::store::DnsRecord],
    classifier: &C,
) -> (BlockPartial, ClassifyStats) {
    let mut out = BlockPartial::default();
    let mut stats = ClassifyStats::default();
    // One string buffer cycles through every non-matching record of the
    // block (parse → classify → recover), so the common miss performs no
    // heap allocation at all.
    let mut buf = String::new();
    for r in records {
        out.scanned += 1;
        let domain = match DomainName::parse_reuse(&r.domain, std::mem::take(&mut buf)) {
            Ok(d) => d,
            Err(_) => {
                out.invalid += 1;
                continue;
            }
        };
        match classifier.classify_record(&domain, &mut stats) {
            Some(m) => out.matches.push(SquatRecord {
                domain,
                ip: r.ip,
                brand: m.brand,
                squat_type: m.squat_type,
            }),
            None => buf = domain.into_string(),
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SnapshotConfig};

    #[test]
    fn scan_recovers_planted_squats() {
        let reg = BrandRegistry::with_size(40);
        let cfg = SnapshotConfig::tiny();
        let (store, stats) = generate(&cfg, &reg);
        let det = SquatDetector::new(&reg);
        let out = scan(&store, &reg, &det, 4);
        let planted: usize = stats.planted_by_type.iter().sum();
        let found = out.total_matches();
        assert!(out.scanned == store.len());
        // Recall must be high; some benign haystack hits may add a little.
        assert!(
            found as f64 >= planted as f64 * 0.9,
            "found {found} of {planted} planted"
        );
        assert!(
            found as f64 <= planted as f64 * 1.2,
            "too many false hits: {found} vs {planted}"
        );
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let reg = BrandRegistry::with_size(20);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let a = scan(&store, &reg, &det, 1);
        let b = scan(&store, &reg, &det, 8);
        assert_eq!(a.total_matches(), b.total_matches());
        assert_eq!(a.by_type, b.by_type);
        assert_eq!(a.by_brand, b.by_brand);
        // Not just the counts: the exact match records (domain, IP, brand,
        // type) and their order must be thread-count invariant.
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn scan_is_deterministic_across_thread_counts() {
        // The scheduler contract: matches, counters and order are
        // identical for 1, 4 and 8 workers.
        let reg = BrandRegistry::with_size(25);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let base = scan(&store, &reg, &det, 1);
        for threads in [4, 8] {
            let out = scan(&store, &reg, &det, threads);
            assert_eq!(base.matches, out.matches, "threads={threads}");
            assert_eq!(base.by_type, out.by_type, "threads={threads}");
            assert_eq!(base.by_brand, out.by_brand, "threads={threads}");
            assert_eq!(base.scanned, out.scanned, "threads={threads}");
            assert_eq!(base.invalid, out.invalid, "threads={threads}");
        }
    }

    #[test]
    fn dedupe_is_first_record_wins_for_any_thread_count() {
        // Three records share a registrable domain but carry different IPs;
        // the record earliest in the store must win regardless of how the
        // store is divided across workers.
        let reg = BrandRegistry::with_size(10);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("mail.goofle.com".into(), Ipv4Addr::new(9, 9, 9, 9));
        for i in 0..40u8 {
            store.push(
                format!("filler-{i}.example.com"),
                Ipv4Addr::new(10, 0, 0, i),
            );
        }
        store.push("goofle.com".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("www.goofle.com".into(), Ipv4Addr::new(2, 2, 2, 2));
        for threads in [1, 2, 3, 7, 16] {
            let (out, metrics) = scan_with_metrics(&store, &reg, &det, threads);
            assert_eq!(out.total_matches(), 1, "threads={threads}");
            assert_eq!(
                out.matches[0].ip,
                Ipv4Addr::new(9, 9, 9, 9),
                "first record must win (threads={threads})"
            );
            assert_eq!(metrics.dedupe_collisions, 2, "threads={threads}");
        }
    }

    #[test]
    fn metrics_account_for_every_record() {
        let reg = BrandRegistry::with_size(20);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let threads = 4;
        let (out, metrics) = scan_with_metrics(&store, &reg, &det, threads);
        assert_eq!(metrics.requested_workers, threads);
        assert_eq!(metrics.actual_workers(), threads);
        assert_eq!(metrics.records(), store.len());
        assert_eq!(metrics.records(), out.scanned);
        assert_eq!(metrics.invalid(), out.invalid);
        // Every block was claimed by exactly one worker.
        let blocks: usize = metrics.workers.iter().map(|w| w.blocks).sum();
        assert!(blocks >= threads, "expected ≥1 block per worker slack");
        // The detector probes at least once per valid record, the filter
        // rejects most probes, and the ASCII fast paths must be reporting
        // avoided allocations.
        assert!(metrics.probes() >= (store.len() - out.invalid) as u64);
        assert!(metrics.deep_probes() < metrics.probes());
        assert!(metrics.allocations_avoided() > 0);
        assert!(metrics.records_per_sec() > 0.0);
    }

    #[test]
    fn small_store_spawns_all_requested_workers() {
        // The old `div_ceil` chunking spawned only 5 workers for 9 records
        // × 8 threads; the block scheduler fans out all 8.
        let reg = BrandRegistry::with_size(5);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        for i in 0..9u8 {
            store.push(
                format!("record-{i}.example.com"),
                Ipv4Addr::new(10, 0, 0, i),
            );
        }
        let (out, metrics) = scan_with_metrics(&store, &reg, &det, 8);
        assert_eq!(metrics.requested_workers, 8);
        assert_eq!(metrics.actual_workers(), 8);
        assert_eq!(metrics.records(), 9);
        assert_eq!(out.scanned, 9);

        // Fewer records than workers: spawning beyond the block count
        // would idle threads, so actual < requested — and is reported.
        let mut tiny = RecordStore::new();
        tiny.push("one.example.com".into(), Ipv4Addr::new(1, 1, 1, 1));
        tiny.push("two.example.com".into(), Ipv4Addr::new(1, 1, 1, 2));
        let (_, metrics) = scan_with_metrics(&tiny, &reg, &det, 8);
        assert_eq!(metrics.requested_workers, 8);
        assert_eq!(metrics.actual_workers(), 2);
    }

    #[test]
    fn empty_store_scans_cleanly() {
        let reg = BrandRegistry::with_size(5);
        let det = SquatDetector::new(&reg);
        let store = RecordStore::new();
        let (out, metrics) = scan_with_metrics(&store, &reg, &det, 4);
        assert_eq!(out.scanned, 0);
        assert_eq!(out.total_matches(), 0);
        assert_eq!(metrics.requested_workers, 4);
        assert_eq!(metrics.actual_workers(), 0);
    }

    #[test]
    fn worker_panic_is_reported_as_scan_error() {
        // A classifier that panics on one specific domain: the scan must
        // return a structured error naming the failing shard, not abort.
        struct Trap;
        impl Classify for Trap {
            fn classify_record(
                &self,
                domain: &DomainName,
                _stats: &mut ClassifyStats,
            ) -> Option<SquatMatch> {
                assert!(
                    !domain.core_label().starts_with("poison"),
                    "injected classifier fault"
                );
                None
            }
        }
        let mut records = Vec::new();
        for i in 0..100u8 {
            records.push(crate::store::DnsRecord {
                domain: format!("fine-{i}.example.com"),
                ip: Ipv4Addr::new(10, 0, 0, i),
            });
        }
        records.push(crate::store::DnsRecord {
            domain: "poisoned-record.com".into(),
            ip: Ipv4Addr::new(9, 9, 9, 9),
        });
        // Silence the default panic hook's backtrace spam for the
        // intentional panic (other tests run in other processes only for
        // integration tests, but hooks are global — restore after).
        // Silence the default panic hook's backtrace spam for the
        // intentional worker panic; restore it before asserting.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = try_scan_impl(&records, 5, &Trap, 4);
        std::panic::set_hook(prev);
        let err = result.unwrap_err();
        assert!(err.cause.contains("injected classifier fault"), "{err}");
        // 101 records × 4 threads → block size 7; the poisoned record is
        // the last one, in the final block.
        assert_eq!(err.shard, 14, "{err}");
        assert!(err.to_string().contains("shard 14"));
    }

    #[test]
    fn subdomain_records_dedupe_to_registrable() {
        let reg = BrandRegistry::with_size(10);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("goofle.com".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("www.goofle.com".into(), Ipv4Addr::new(2, 2, 2, 2));
        store.push("mail.goofle.com".into(), Ipv4Addr::new(3, 3, 3, 3));
        let out = scan(&store, &reg, &det, 2);
        assert_eq!(out.total_matches(), 1);
        assert_eq!(out.count(SquatType::Bits), 1);
    }

    #[test]
    fn invalid_records_are_counted_not_fatal() {
        let reg = BrandRegistry::with_size(5);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("not a domain".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("paypal-login.com".into(), Ipv4Addr::new(1, 1, 1, 2));
        let out = scan(&store, &reg, &det, 1);
        assert_eq!(out.invalid, 1);
        assert_eq!(out.total_matches(), 1);
    }

    #[test]
    fn exported_telemetry_reconciles_and_is_thread_invariant() {
        let reg = BrandRegistry::with_size(20);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let mut renders = Vec::new();
        for threads in [1, 4, 8] {
            let (out, metrics) = scan_with_metrics(&store, &reg, &det, threads);
            assert!(ScanMetrics::reconciles(&out, &metrics), "threads={threads}");
            let telemetry = squatphi_telemetry::Registry::new();
            let scope = telemetry.scope("scan");
            out.export(&scope);
            metrics.export(&scope);
            let mut snap = telemetry.snapshot();
            snap.strip_timings();
            // Execution shape (worker counts, block tallies) legitimately
            // varies with the thread count; everything else must not.
            renders.push(snap.retain(|n| !n.starts_with("scan.exec.")).render());
        }
        assert_eq!(renders[0], renders[1]);
        assert_eq!(renders[0], renders[2]);
    }

    #[test]
    fn type_counts_sum_to_matches() {
        let reg = BrandRegistry::with_size(30);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let out = scan(&store, &reg, &det, 3);
        assert_eq!(out.by_type.iter().sum::<usize>(), out.total_matches());
        assert_eq!(out.by_brand.iter().sum::<usize>(), out.total_matches());
    }
}
