//! Multi-threaded squatting scan over the record store (Figure 2 path).

use crate::store::RecordStore;
use squatphi_domain::DomainName;
use squatphi_squat::{BrandId, BrandRegistry, ClassifyStats, SquatDetector, SquatType};
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// One detected squatting record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquatRecord {
    /// The squatting domain (validated, registrable-label aware).
    pub domain: DomainName,
    /// The raw record's IP.
    pub ip: Ipv4Addr,
    /// The impersonated brand.
    pub brand: BrandId,
    /// The detected squatting type.
    pub squat_type: SquatType,
}

/// Aggregate result of a snapshot scan.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Every unique registrable squatting domain found.
    pub matches: Vec<SquatRecord>,
    /// Counts per type, paper order (homograph, bits, typo, combo, wrongTLD).
    pub by_type: [usize; 5],
    /// Counts per brand id.
    pub by_brand: Vec<usize>,
    /// Records scanned.
    pub scanned: usize,
    /// Records that failed domain validation (skipped).
    pub invalid: usize,
}

impl ScanOutcome {
    /// Total squatting domains found.
    pub fn total_matches(&self) -> usize {
        self.matches.len()
    }

    /// Count for one squatting type.
    pub fn count(&self, ty: SquatType) -> usize {
        self.by_type[type_index(ty)]
    }
}

/// Counters one scan worker reports for its chunk of the snapshot.
#[derive(Debug, Clone, Default)]
pub struct WorkerMetrics {
    /// Records this worker classified (valid or not).
    pub records: usize,
    /// Records that failed domain validation.
    pub invalid: usize,
    /// Detector hash probes performed across the chunk.
    pub probes: u64,
    /// Heap allocations the detector's stack buffers avoided
    /// (see `squatphi_squat::ClassifyStats`).
    pub allocations_avoided: u64,
    /// Wall-clock time the worker spent on its chunk.
    pub elapsed: Duration,
}

impl WorkerMetrics {
    /// Records classified per second by this worker.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.records as f64 / secs
        } else {
            0.0
        }
    }
}

/// Instrumentation for one [`scan`] call: per-worker counters plus the
/// merge-phase dedupe statistics and the end-to-end wall clock.
#[derive(Debug, Clone, Default)]
pub struct ScanMetrics {
    /// One entry per worker thread, in chunk order.
    pub workers: Vec<WorkerMetrics>,
    /// Matches dropped at merge because another chunk already claimed the
    /// registrable domain (first-record-wins dedupe).
    pub dedupe_collisions: usize,
    /// Wall-clock time of the whole scan, including the merge.
    pub wall: Duration,
}

impl ScanMetrics {
    /// Total records classified across all workers.
    pub fn records(&self) -> usize {
        self.workers.iter().map(|w| w.records).sum()
    }

    /// Total invalid records across all workers.
    pub fn invalid(&self) -> usize {
        self.workers.iter().map(|w| w.invalid).sum()
    }

    /// Total detector hash probes across all workers.
    pub fn probes(&self) -> u64 {
        self.workers.iter().map(|w| w.probes).sum()
    }

    /// Total heap allocations avoided across all workers.
    pub fn allocations_avoided(&self) -> u64 {
        self.workers.iter().map(|w| w.allocations_avoided).sum()
    }

    /// End-to-end throughput (records per wall-clock second, all workers).
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Paper-order index of a type.
pub(crate) fn type_index(ty: SquatType) -> usize {
    match ty {
        SquatType::Homograph => 0,
        SquatType::Bits => 1,
        SquatType::Typo => 2,
        SquatType::Combo => 3,
        SquatType::WrongTld => 4,
    }
}

/// Scans the snapshot with `threads` worker threads (1 = sequential).
/// Matches are deduplicated on the registrable domain: `www.goofle.com.ua`
/// and `goofle.com.ua` count once, per the paper's handling of subdomains.
pub fn scan(
    store: &RecordStore,
    registry: &BrandRegistry,
    detector: &SquatDetector,
    threads: usize,
) -> ScanOutcome {
    scan_with_metrics(store, registry, detector, threads).0
}

/// [`scan`], additionally returning per-worker and merge instrumentation.
///
/// Chunks are contiguous ordered slices of the store and partials are
/// merged in chunk order, so the first-record-wins dedupe is deterministic
/// for any thread count (see `sequential_and_parallel_agree`).
pub fn scan_with_metrics(
    store: &RecordStore,
    registry: &BrandRegistry,
    detector: &SquatDetector,
    threads: usize,
) -> (ScanOutcome, ScanMetrics) {
    let start = Instant::now();
    let records = store.records();
    let threads = threads.max(1).min(records.len().max(1));
    let chunk = records.len().div_ceil(threads);

    let partials: Vec<(ScanOutcome, WorkerMetrics)> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for part in records.chunks(chunk.max(1)) {
            handles.push(s.spawn(move |_| scan_chunk(part, registry, detector)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    })
    .expect("scan scope");

    // Merge and dedupe (first record wins, in chunk order).
    let mut out = ScanOutcome {
        by_brand: vec![0; registry.len()],
        ..ScanOutcome::default()
    };
    let mut metrics = ScanMetrics::default();
    let mut seen = std::collections::HashSet::new();
    for (p, w) in partials {
        out.scanned += p.scanned;
        out.invalid += p.invalid;
        for m in p.matches {
            if seen.insert(m.domain.registrable()) {
                out.by_type[type_index(m.squat_type)] += 1;
                out.by_brand[m.brand] += 1;
                out.matches.push(m);
            } else {
                metrics.dedupe_collisions += 1;
            }
        }
        metrics.workers.push(w);
    }
    metrics.wall = start.elapsed();
    (out, metrics)
}

fn scan_chunk(
    records: &[crate::store::DnsRecord],
    registry: &BrandRegistry,
    detector: &SquatDetector,
) -> (ScanOutcome, WorkerMetrics) {
    let start = Instant::now();
    let mut out = ScanOutcome {
        by_brand: vec![0; registry.len()],
        ..ScanOutcome::default()
    };
    let mut stats = ClassifyStats::default();
    for r in records {
        out.scanned += 1;
        let domain = match DomainName::parse(&r.domain) {
            Ok(d) => d,
            Err(_) => {
                out.invalid += 1;
                continue;
            }
        };
        if let Some(m) = detector.classify_with_stats(&domain, &mut stats) {
            out.by_type[type_index(m.squat_type)] += 1;
            out.by_brand[m.brand] += 1;
            out.matches.push(SquatRecord {
                domain,
                ip: r.ip,
                brand: m.brand,
                squat_type: m.squat_type,
            });
        }
    }
    let metrics = WorkerMetrics {
        records: out.scanned,
        invalid: out.invalid,
        probes: stats.probes,
        allocations_avoided: stats.allocations_avoided,
        elapsed: start.elapsed(),
    };
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SnapshotConfig};

    #[test]
    fn scan_recovers_planted_squats() {
        let reg = BrandRegistry::with_size(40);
        let cfg = SnapshotConfig::tiny();
        let (store, stats) = generate(&cfg, &reg);
        let det = SquatDetector::new(&reg);
        let out = scan(&store, &reg, &det, 4);
        let planted: usize = stats.planted_by_type.iter().sum();
        let found = out.total_matches();
        assert!(out.scanned == store.len());
        // Recall must be high; some benign haystack hits may add a little.
        assert!(
            found as f64 >= planted as f64 * 0.9,
            "found {found} of {planted} planted"
        );
        assert!(
            found as f64 <= planted as f64 * 1.2,
            "too many false hits: {found} vs {planted}"
        );
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let reg = BrandRegistry::with_size(20);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let a = scan(&store, &reg, &det, 1);
        let b = scan(&store, &reg, &det, 8);
        assert_eq!(a.total_matches(), b.total_matches());
        assert_eq!(a.by_type, b.by_type);
        assert_eq!(a.by_brand, b.by_brand);
        // Not just the counts: the exact match records (domain, IP, brand,
        // type) and their order must be thread-count invariant.
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn dedupe_is_first_record_wins_for_any_thread_count() {
        // Three records share a registrable domain but carry different IPs;
        // the record earliest in the store must win regardless of how the
        // store is chunked across workers.
        let reg = BrandRegistry::with_size(10);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("mail.goofle.com".into(), Ipv4Addr::new(9, 9, 9, 9));
        for i in 0..40u8 {
            store.push(
                format!("filler-{i}.example.com"),
                Ipv4Addr::new(10, 0, 0, i),
            );
        }
        store.push("goofle.com".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("www.goofle.com".into(), Ipv4Addr::new(2, 2, 2, 2));
        for threads in [1, 2, 3, 7, 16] {
            let (out, metrics) = scan_with_metrics(&store, &reg, &det, threads);
            assert_eq!(out.total_matches(), 1, "threads={threads}");
            assert_eq!(
                out.matches[0].ip,
                Ipv4Addr::new(9, 9, 9, 9),
                "first record must win (threads={threads})"
            );
            assert_eq!(metrics.dedupe_collisions, 2, "threads={threads}");
        }
    }

    #[test]
    fn metrics_account_for_every_record() {
        let reg = BrandRegistry::with_size(20);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let threads = 4;
        let (out, metrics) = scan_with_metrics(&store, &reg, &det, threads);
        assert_eq!(metrics.workers.len(), threads);
        assert_eq!(metrics.records(), store.len());
        assert_eq!(metrics.records(), out.scanned);
        assert_eq!(metrics.invalid(), out.invalid);
        // The detector probes at least once per valid record and the
        // ASCII fast paths must be reporting avoided allocations.
        assert!(metrics.probes() >= (store.len() - out.invalid) as u64);
        assert!(metrics.allocations_avoided() > 0);
        assert!(metrics.records_per_sec() > 0.0);
        for w in &metrics.workers {
            assert!(w.records > 0);
        }
    }

    #[test]
    fn subdomain_records_dedupe_to_registrable() {
        let reg = BrandRegistry::with_size(10);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("goofle.com".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("www.goofle.com".into(), Ipv4Addr::new(2, 2, 2, 2));
        store.push("mail.goofle.com".into(), Ipv4Addr::new(3, 3, 3, 3));
        let out = scan(&store, &reg, &det, 2);
        assert_eq!(out.total_matches(), 1);
        assert_eq!(out.count(SquatType::Bits), 1);
    }

    #[test]
    fn invalid_records_are_counted_not_fatal() {
        let reg = BrandRegistry::with_size(5);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("not a domain".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("paypal-login.com".into(), Ipv4Addr::new(1, 1, 1, 2));
        let out = scan(&store, &reg, &det, 1);
        assert_eq!(out.invalid, 1);
        assert_eq!(out.total_matches(), 1);
    }

    #[test]
    fn type_counts_sum_to_matches() {
        let reg = BrandRegistry::with_size(30);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let out = scan(&store, &reg, &det, 3);
        assert_eq!(out.by_type.iter().sum::<usize>(), out.total_matches());
        assert_eq!(out.by_brand.iter().sum::<usize>(), out.total_matches());
    }
}
