//! Multi-threaded squatting scan over the record store (Figure 2 path).

use crate::store::RecordStore;
use squatphi_domain::DomainName;
use squatphi_squat::{BrandId, BrandRegistry, SquatDetector, SquatType};
use std::net::Ipv4Addr;

/// One detected squatting record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquatRecord {
    /// The squatting domain (validated, registrable-label aware).
    pub domain: DomainName,
    /// The raw record's IP.
    pub ip: Ipv4Addr,
    /// The impersonated brand.
    pub brand: BrandId,
    /// The detected squatting type.
    pub squat_type: SquatType,
}

/// Aggregate result of a snapshot scan.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Every unique registrable squatting domain found.
    pub matches: Vec<SquatRecord>,
    /// Counts per type, paper order (homograph, bits, typo, combo, wrongTLD).
    pub by_type: [usize; 5],
    /// Counts per brand id.
    pub by_brand: Vec<usize>,
    /// Records scanned.
    pub scanned: usize,
    /// Records that failed domain validation (skipped).
    pub invalid: usize,
}

impl ScanOutcome {
    /// Total squatting domains found.
    pub fn total_matches(&self) -> usize {
        self.matches.len()
    }

    /// Count for one squatting type.
    pub fn count(&self, ty: SquatType) -> usize {
        self.by_type[type_index(ty)]
    }
}

/// Paper-order index of a type.
pub(crate) fn type_index(ty: SquatType) -> usize {
    match ty {
        SquatType::Homograph => 0,
        SquatType::Bits => 1,
        SquatType::Typo => 2,
        SquatType::Combo => 3,
        SquatType::WrongTld => 4,
    }
}

/// Scans the snapshot with `threads` worker threads (1 = sequential).
/// Matches are deduplicated on the registrable domain: `www.goofle.com.ua`
/// and `goofle.com.ua` count once, per the paper's handling of subdomains.
pub fn scan(
    store: &RecordStore,
    registry: &BrandRegistry,
    detector: &SquatDetector,
    threads: usize,
) -> ScanOutcome {
    let records = store.records();
    let threads = threads.max(1).min(records.len().max(1));
    let chunk = records.len().div_ceil(threads);

    let partials: Vec<ScanOutcome> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for part in records.chunks(chunk.max(1)) {
            handles.push(s.spawn(move |_| scan_chunk(part, registry, detector)));
        }
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
    })
    .expect("scan scope");

    // Merge and dedupe.
    let mut out = ScanOutcome { by_brand: vec![0; registry.len()], ..ScanOutcome::default() };
    let mut seen = std::collections::HashSet::new();
    for p in partials {
        out.scanned += p.scanned;
        out.invalid += p.invalid;
        for m in p.matches {
            if seen.insert(m.domain.registrable()) {
                out.by_type[type_index(m.squat_type)] += 1;
                out.by_brand[m.brand] += 1;
                out.matches.push(m);
            }
        }
    }
    out
}

fn scan_chunk(
    records: &[crate::store::DnsRecord],
    registry: &BrandRegistry,
    detector: &SquatDetector,
) -> ScanOutcome {
    let mut out = ScanOutcome { by_brand: vec![0; registry.len()], ..ScanOutcome::default() };
    for r in records {
        out.scanned += 1;
        let domain = match DomainName::parse(&r.domain) {
            Ok(d) => d,
            Err(_) => {
                out.invalid += 1;
                continue;
            }
        };
        if let Some(m) = detector.classify(&domain) {
            out.by_type[type_index(m.squat_type)] += 1;
            out.by_brand[m.brand] += 1;
            out.matches.push(SquatRecord {
                domain,
                ip: r.ip,
                brand: m.brand,
                squat_type: m.squat_type,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SnapshotConfig};

    #[test]
    fn scan_recovers_planted_squats() {
        let reg = BrandRegistry::with_size(40);
        let cfg = SnapshotConfig::tiny();
        let (store, stats) = generate(&cfg, &reg);
        let det = SquatDetector::new(&reg);
        let out = scan(&store, &reg, &det, 4);
        let planted: usize = stats.planted_by_type.iter().sum();
        let found = out.total_matches();
        assert!(out.scanned == store.len());
        // Recall must be high; some benign haystack hits may add a little.
        assert!(
            found as f64 >= planted as f64 * 0.9,
            "found {found} of {planted} planted"
        );
        assert!(found as f64 <= planted as f64 * 1.2, "too many false hits: {found} vs {planted}");
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let reg = BrandRegistry::with_size(20);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let a = scan(&store, &reg, &det, 1);
        let b = scan(&store, &reg, &det, 8);
        assert_eq!(a.total_matches(), b.total_matches());
        assert_eq!(a.by_type, b.by_type);
        assert_eq!(a.by_brand, b.by_brand);
    }

    #[test]
    fn subdomain_records_dedupe_to_registrable() {
        let reg = BrandRegistry::with_size(10);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("goofle.com".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("www.goofle.com".into(), Ipv4Addr::new(2, 2, 2, 2));
        store.push("mail.goofle.com".into(), Ipv4Addr::new(3, 3, 3, 3));
        let out = scan(&store, &reg, &det, 2);
        assert_eq!(out.total_matches(), 1);
        assert_eq!(out.count(SquatType::Bits), 1);
    }

    #[test]
    fn invalid_records_are_counted_not_fatal() {
        let reg = BrandRegistry::with_size(5);
        let det = SquatDetector::new(&reg);
        let mut store = RecordStore::new();
        store.push("not a domain".into(), Ipv4Addr::new(1, 1, 1, 1));
        store.push("paypal-login.com".into(), Ipv4Addr::new(1, 1, 1, 2));
        let out = scan(&store, &reg, &det, 1);
        assert_eq!(out.invalid, 1);
        assert_eq!(out.total_matches(), 1);
    }

    #[test]
    fn type_counts_sum_to_matches() {
        let reg = BrandRegistry::with_size(30);
        let (store, _) = generate(&SnapshotConfig::tiny(), &reg);
        let det = SquatDetector::new(&reg);
        let out = scan(&store, &reg, &det, 3);
        assert_eq!(out.by_type.iter().sum::<usize>(), out.total_matches());
        assert_eq!(out.by_brand.iter().sum::<usize>(), out.total_matches());
    }
}
