//! The in-memory DNS record store.
//!
//! An ActiveDNS record is essentially `(domain, IP)`; the store keeps the
//! snapshot as a flat vector (the scan is a linear pass) plus an optional
//! hash index for the probe server's point lookups.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One DNS record of the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Fully-qualified ASCII domain (possibly with subdomain labels).
    pub domain: String,
    /// The A record the probe resolved to.
    pub ip: Ipv4Addr,
}

/// The snapshot: a flat, scan-friendly collection of records.
#[derive(Debug, Default, Clone)]
pub struct RecordStore {
    records: Vec<DnsRecord>,
}

impl RecordStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        RecordStore {
            records: Vec::with_capacity(n),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, domain: String, ip: Ipv4Addr) {
        self.records.push(DnsRecord { domain, ip });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[DnsRecord] {
        &self.records
    }

    /// Builds a point-lookup index (domain → IP) for the probe server.
    pub fn index(&self) -> HashMap<String, Ipv4Addr> {
        self.records
            .iter()
            .map(|r| (r.domain.clone(), r.ip))
            .collect()
    }

    /// Exports the snapshot as zone-file text (A records, fixed TTL) —
    /// human-diffable fixtures for tests and offline analysis.
    pub fn to_zone(&self) -> String {
        let records: Vec<squatphi_dnswire::ResourceRecord> = self
            .records
            .iter()
            .map(|r| squatphi_dnswire::ResourceRecord {
                name: r.domain.clone(),
                ttl: 300,
                rdata: squatphi_dnswire::RData::A(r.ip),
            })
            .collect();
        squatphi_dnswire::zone::format_zone(&records)
    }

    /// Imports a snapshot from zone-file text. Non-A records are ignored
    /// (the scan only consumes name/IP pairs).
    pub fn from_zone(text: &str) -> Result<Self, squatphi_dnswire::zone::ZoneError> {
        let mut store = RecordStore::new();
        for rr in squatphi_dnswire::zone::parse_zone(text)? {
            if let squatphi_dnswire::RData::A(ip) = rr.rdata {
                store.push(rr.name, ip);
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut s = RecordStore::new();
        assert!(s.is_empty());
        s.push("a.com".into(), Ipv4Addr::new(1, 2, 3, 4));
        s.push("b.com".into(), Ipv4Addr::new(5, 6, 7, 8));
        assert_eq!(s.len(), 2);
        assert_eq!(s.records()[1].domain, "b.com");
    }

    #[test]
    fn index_maps_domains() {
        let mut s = RecordStore::new();
        s.push("x.org".into(), Ipv4Addr::new(9, 9, 9, 9));
        let idx = s.index();
        assert_eq!(idx.get("x.org"), Some(&Ipv4Addr::new(9, 9, 9, 9)));
        assert_eq!(idx.get("y.org"), None);
    }

    #[test]
    fn zone_round_trip() {
        let mut s = RecordStore::new();
        s.push("faceb00k.pw".into(), Ipv4Addr::new(203, 0, 113, 1));
        s.push("www.goofle.com.ua".into(), Ipv4Addr::new(203, 0, 113, 2));
        let text = s.to_zone();
        assert!(text.contains("faceb00k.pw.\t300\tIN\tA\t203.0.113.1"));
        let back = RecordStore::from_zone(&text).expect("parse own output");
        assert_eq!(back.records(), s.records());
    }

    #[test]
    fn from_zone_skips_non_a_records() {
        let text = "a.com.\t60\tIN\tA\t1.2.3.4\nb.com.\t60\tIN\tCNAME\tc.com.\n";
        let s = RecordStore::from_zone(text).expect("valid zone");
        assert_eq!(s.len(), 1);
        assert_eq!(s.records()[0].domain, "a.com");
    }

    #[test]
    fn from_zone_propagates_errors() {
        assert!(RecordStore::from_zone("broken").is_err());
    }
}
