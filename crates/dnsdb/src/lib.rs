//! ActiveDNS substitute: the DNS-records haystack and the tools that search
//! it (paper §3.1).
//!
//! The paper scans a 224.8M-record ActiveDNS snapshot for squatting
//! domains. That dataset is proprietary, so this crate rebuilds the whole
//! path on synthetic data with the same statistical structure:
//!
//! * [`synth`] — deterministic snapshot generator: a haystack of benign
//!   domains with planted squatting populations drawn with the paper's
//!   brand skew and type mix (combo 56%, typo 25%, …),
//! * [`store`] — the in-memory record store (domain → A record),
//! * [`mod@scan`] — multi-threaded scan engine running the
//!   [`squatphi_squat::SquatDetector`] over every record (Figure 2),
//! * [`probe`] — the active-probing path: an async authoritative UDP
//!   server serving the snapshot zone plus a concurrent probing client,
//!   mirroring how ActiveDNS actually produces its records,
//! * [`events`] — the live-feed counterpart of [`synth`]: a seeded,
//!   random-access stream of registration / churn / feed events on a
//!   virtual timeline, consumed by the `squatphi watch` daemon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod probe;
pub mod scan;
pub mod store;
pub mod synth;

pub use events::{EventStream, EventStreamConfig, StreamEvent, TimedEvent};
pub use scan::{
    scan, scan_with_metrics, try_scan_with_metrics, ScanError, ScanMetrics, ScanOutcome,
    SquatRecord, WorkerMetrics,
};
pub use store::{DnsRecord, RecordStore};
pub use synth::{SnapshotConfig, SnapshotStats};
