//! NLP substrate — the NLTK substitute (paper §5.2).
//!
//! The feature pipeline tokenizes raw text (HTML text, OCR output, form
//! attributes), removes stopwords, spell-corrects OCR typos against a
//! task dictionary (`passwod` → `password`), and embeds keyword
//! frequencies plus numeric features into sparse vectors for the
//! classifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embed;
pub mod spell;
pub mod tfidf;
pub mod tokenize;

pub use embed::{FeatureSpace, SparseVec};
pub use spell::SpellChecker;
pub use tokenize::{remove_stopwords, tokenize, STOPWORDS};
