//! Tokenization and stopword removal.

/// A compact English stopword list (the usual function words NLTK drops;
/// we keep task-relevant words like "please" which carry phishing signal).
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "am", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "below", "between", "both", "but", "by", "can",
    "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from", "further", "had",
    "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if", "in",
    "into", "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor", "not", "now", "of",
    "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over", "own", "same", "she",
    "should", "so", "some", "such", "than", "that", "the", "their", "them", "then", "there",
    "these", "they", "this", "those", "through", "to", "too", "under", "until", "up", "very",
    "was", "we", "were", "what", "when", "where", "which", "while", "who", "whom", "why", "will",
    "with", "you", "your", "yours",
];

/// Splits text into lower-cased alphanumeric tokens. Digits are kept
/// (``faceb00k`` must survive as one token); punctuation splits.
///
/// ```
/// use squatphi_nlp::tokenize;
/// assert_eq!(tokenize("Email, or Phone?"), vec!["email", "or", "phone"]);
/// assert_eq!(tokenize("faceb00k.pw"), vec!["faceb00k", "pw"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Removes stopwords from a token stream.
pub fn remove_stopwords(tokens: Vec<String>) -> Vec<String> {
    tokens
        .into_iter()
        .filter(|t| !STOPWORDS.contains(&t.as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_mixed_text() {
        assert_eq!(
            tokenize("Please enter your Password!"),
            vec!["please", "enter", "your", "password"]
        );
    }

    #[test]
    fn keeps_digits_in_tokens() {
        assert_eq!(tokenize("goog1e faceb00k"), vec!["goog1e", "faceb00k"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!@# $%^").is_empty());
    }

    #[test]
    fn stopwords_removed() {
        let toks = remove_stopwords(tokenize("enter your password to continue"));
        assert_eq!(toks, vec!["enter", "password", "continue"]);
    }

    #[test]
    fn please_is_kept() {
        // "please enter your password" is a phishing-placeholder signature;
        // "please" must survive stopword removal.
        let toks = remove_stopwords(tokenize("please sign in"));
        assert!(toks.contains(&"please".to_string()));
    }

    #[test]
    fn stopword_list_sorted_unique() {
        let mut v = STOPWORDS.to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), STOPWORDS.len());
    }
}
