//! Feature embedding: keyword frequencies + numeric features → sparse
//! vectors (paper §5.2 "Feature Embedding").
//!
//! The paper builds a 987-dimension vector per page from (a) keywords
//! frequent in ground-truth phishing pages, (b) the 766 brand-name
//! keywords, and (c) numeric features like form counts. Vectors are very
//! sparse, so we store index/value pairs and let the ML crate densify
//! when an algorithm needs it.

use std::collections::HashMap;

/// A sparse feature vector: sorted (index, value) pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(usize, f64)>,
}

impl SparseVec {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` at `index` (accumulating duplicates).
    pub fn add(&mut self, index: usize, value: f64) {
        match self.entries.binary_search_by_key(&index, |e| e.0) {
            Ok(pos) => self.entries[pos].1 += value,
            Err(pos) => self.entries.insert(pos, (index, value)),
        }
    }

    /// Value at `index` (0.0 when absent).
    pub fn get(&self, index: usize) -> f64 {
        match self.entries.binary_search_by_key(&index, |e| e.0) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Non-zero entries, index-sorted.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Densifies to length `dim`.
    pub fn to_dense(&self, dim: usize) -> Vec<f64> {
        let mut v = vec![0.0; dim];
        for &(i, val) in &self.entries {
            if i < dim {
                v[i] = val;
            }
        }
        v
    }

    /// Squared Euclidean distance to another sparse vector.
    pub fn sq_distance(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    acc += a[i].1 * a[i].1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += b[j].1 * b[j].1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let d = a[i].1 - b[j].1;
                    acc += d * d;
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(_, v) in &a[i..] {
            acc += v * v;
        }
        for &(_, v) in &b[j..] {
            acc += v * v;
        }
        acc
    }

    /// Cosine similarity to another sparse vector, in `[-1, 1]`.
    /// Zero vectors (no entries, or all-zero values) yield `0.0` rather
    /// than `NaN` so callers can treat "no signal" as "no similarity".
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut dot = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let na: f64 = a.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        // Floating-point rounding can push |dot| a hair past na*nb; clamp
        // so the result is a true cosine.
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// The feature space: a frozen keyword → dimension mapping plus named
/// numeric dimensions appended at the end.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    keyword_index: HashMap<String, usize>,
    numeric_names: Vec<String>,
}

impl FeatureSpace {
    /// Builds a space from keyword and numeric-feature name lists.
    /// Keywords are deduplicated; order fixes dimensions.
    pub fn new<I, S>(keywords: I, numeric: &[&str]) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut keyword_index = HashMap::new();
        for k in keywords {
            let k = k.as_ref().to_ascii_lowercase();
            let next = keyword_index.len();
            keyword_index.entry(k).or_insert(next);
        }
        FeatureSpace {
            keyword_index,
            numeric_names: numeric.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Total dimension (keywords + numeric features).
    pub fn dim(&self) -> usize {
        self.keyword_index.len() + self.numeric_names.len()
    }

    /// Number of keyword dimensions.
    pub fn keyword_dim(&self) -> usize {
        self.keyword_index.len()
    }

    /// Dimension of a keyword, if mapped.
    pub fn keyword(&self, word: &str) -> Option<usize> {
        self.keyword_index.get(word).copied()
    }

    /// Dimension of a numeric feature by name.
    pub fn numeric(&self, name: &str) -> Option<usize> {
        self.numeric_names
            .iter()
            .position(|n| n == name)
            .map(|p| p + self.keyword_index.len())
    }

    /// Embeds a token stream: keyword frequencies land on their dims.
    pub fn embed_tokens<'a, I>(&self, tokens: I) -> SparseVec
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut v = SparseVec::new();
        for t in tokens {
            if let Some(i) = self.keyword(t) {
                v.add(i, 1.0);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> FeatureSpace {
        FeatureSpace::new(
            ["password", "login", "email", "paypal"],
            &["form_count", "password_inputs"],
        )
    }

    #[test]
    fn dimensions_are_stable() {
        let s = space();
        assert_eq!(s.dim(), 6);
        assert_eq!(s.keyword("password"), Some(0));
        assert_eq!(s.keyword("paypal"), Some(3));
        assert_eq!(s.numeric("form_count"), Some(4));
        assert_eq!(s.numeric("password_inputs"), Some(5));
        assert_eq!(s.keyword("unknown"), None);
        assert_eq!(s.numeric("unknown"), None);
    }

    #[test]
    fn duplicate_keywords_collapse() {
        let s = FeatureSpace::new(["a", "b", "a"], &[]);
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn embed_counts_frequencies() {
        let s = space();
        let v = s.embed_tokens(["password", "password", "login", "nothing"]);
        assert_eq!(v.get(0), 2.0);
        assert_eq!(v.get(1), 1.0);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_ops() {
        let mut v = SparseVec::new();
        v.add(5, 1.0);
        v.add(2, 3.0);
        v.add(5, 1.0);
        assert_eq!(v.get(5), 2.0);
        assert_eq!(v.get(2), 3.0);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.entries(), &[(2, 3.0), (5, 2.0)]);
        let dense = v.to_dense(7);
        assert_eq!(dense[2], 3.0);
        assert_eq!(dense[5], 2.0);
    }

    #[test]
    fn sq_distance_matches_dense() {
        let mut a = SparseVec::new();
        a.add(0, 1.0);
        a.add(3, 2.0);
        let mut b = SparseVec::new();
        b.add(3, 1.0);
        b.add(7, 4.0);
        let dim = 8;
        let da = a.to_dense(dim);
        let db = b.to_dense(dim);
        let expect: f64 = da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((a.sq_distance(&b) - expect).abs() < 1e-12);
        assert_eq!(a.sq_distance(&a), 0.0);
    }

    #[test]
    fn embed_is_case_insensitive_on_space_construction() {
        let s = FeatureSpace::new(["PassWord"], &[]);
        assert!(s.keyword("password").is_some());
    }

    #[test]
    fn cosine_known_values() {
        let mut a = SparseVec::new();
        a.add(0, 1.0);
        let mut b = SparseVec::new();
        b.add(0, 2.0);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12, "parallel vectors");
        let mut c = SparseVec::new();
        c.add(1, 3.0);
        assert_eq!(a.cosine(&c), 0.0, "orthogonal vectors");
        let mut d = SparseVec::new();
        d.add(0, -5.0);
        assert!((a.cosine(&d) + 1.0).abs() < 1e-12, "opposite vectors");
        assert_eq!(a.cosine(&SparseVec::new()), 0.0, "zero vector is 0");
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12, "self-similarity");
    }
}
