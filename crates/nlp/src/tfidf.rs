//! TF-IDF re-weighting of keyword-count vectors.
//!
//! The paper embeds raw keyword frequencies (§5.2). A common refinement —
//! and a natural ablation for the classifier — is inverse-document-
//! frequency weighting, which damps ubiquitous words ("account",
//! "email") relative to rare, discriminative ones. This module fits IDF
//! weights on a corpus of sparse vectors and rescales new vectors.

use crate::embed::SparseVec;

/// Fitted inverse-document-frequency weights.
#[derive(Debug, Clone)]
pub struct TfIdf {
    /// Smoothed IDF per dimension (`ln((1+N)/(1+df)) + 1`).
    idf: Vec<f64>,
    documents: usize,
}

impl TfIdf {
    /// Fits IDF weights over a corpus. `dim` bounds the dimensions
    /// considered; entries beyond it keep weight 1.0.
    pub fn fit<'a, I>(corpus: I, dim: usize) -> Self
    where
        I: IntoIterator<Item = &'a SparseVec>,
    {
        let mut df = vec![0usize; dim];
        let mut documents = 0usize;
        for v in corpus {
            documents += 1;
            for &(i, value) in v.entries() {
                if i < dim && value > 0.0 {
                    df[i] += 1;
                }
            }
        }
        let idf = df
            .iter()
            .map(|&d| ((1.0 + documents as f64) / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        TfIdf { idf, documents }
    }

    /// Number of documents the weights were fitted on.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// The IDF weight of one dimension (1.0 when out of range).
    pub fn idf(&self, dim: usize) -> f64 {
        self.idf.get(dim).copied().unwrap_or(1.0)
    }

    /// Re-weights a count vector: each entry becomes `count × idf`.
    pub fn transform(&self, v: &SparseVec) -> SparseVec {
        let mut out = SparseVec::new();
        for &(i, value) in v.entries() {
            out.add(i, value * self.idf(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(entries: &[(usize, f64)]) -> SparseVec {
        let mut v = SparseVec::new();
        for &(i, val) in entries {
            v.add(i, val);
        }
        v
    }

    #[test]
    fn ubiquitous_dims_get_lower_weight() {
        // Dim 0 appears in every document; dim 1 in one.
        let corpus = [
            vec_of(&[(0, 1.0), (1, 1.0)]),
            vec_of(&[(0, 2.0)]),
            vec_of(&[(0, 1.0)]),
            vec_of(&[(0, 3.0)]),
        ];
        let model = TfIdf::fit(corpus.iter(), 2);
        assert_eq!(model.documents(), 4);
        assert!(
            model.idf(1) > model.idf(0),
            "rare dim must outweigh common dim"
        );
    }

    #[test]
    fn transform_scales_counts() {
        let corpus = [vec_of(&[(0, 1.0)]), vec_of(&[(1, 1.0)])];
        let model = TfIdf::fit(corpus.iter(), 2);
        let t = model.transform(&vec_of(&[(0, 2.0), (1, 3.0)]));
        assert!((t.get(0) - 2.0 * model.idf(0)).abs() < 1e-12);
        assert!((t.get(1) - 3.0 * model.idf(1)).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_dims_pass_through() {
        let corpus = [vec_of(&[(0, 1.0)])];
        let model = TfIdf::fit(corpus.iter(), 1);
        let t = model.transform(&vec_of(&[(9, 4.0)]));
        assert_eq!(t.get(9), 4.0);
    }

    #[test]
    fn empty_corpus_is_neutral_enough() {
        let model = TfIdf::fit(std::iter::empty(), 4);
        assert_eq!(model.documents(), 0);
        // ln(1/1) + 1 = 1.0 everywhere.
        for d in 0..4 {
            assert!((model.idf(d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_are_finite_and_positive() {
        let corpus: Vec<SparseVec> = (0..50).map(|i| vec_of(&[(i % 7, 1.0), (3, 1.0)])).collect();
        let model = TfIdf::fit(corpus.iter(), 8);
        for d in 0..8 {
            let w = model.idf(d);
            assert!(w.is_finite() && w > 0.0, "idf({d}) = {w}");
        }
    }
}
