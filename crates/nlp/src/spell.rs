//! Dictionary spell checker for OCR-error correction (paper §5.2:
//! "Tesseract sometimes introduces errors such as passwod, which can be
//! easily corrected to password by a spell checker").

use std::collections::HashMap;

/// The task dictionary: phishing-salient keywords the feature pipeline
/// cares about. Brand names are added per-registry at construction.
pub const BASE_DICTIONARY: &[&str] = &[
    "account",
    "address",
    "agree",
    "bank",
    "billing",
    "card",
    "cash",
    "click",
    "confirm",
    "continue",
    "create",
    "credentials",
    "credit",
    "customer",
    "debit",
    "details",
    "email",
    "enter",
    "forgot",
    "free",
    "help",
    "here",
    "home",
    "identity",
    "invoice",
    "limited",
    "log",
    "login",
    "member",
    "mobile",
    "money",
    "name",
    "number",
    "offer",
    "online",
    "password",
    "pay",
    "payment",
    "phone",
    "please",
    "prize",
    "register",
    "reset",
    "secure",
    "security",
    "sign",
    "signin",
    "submit",
    "support",
    "suspended",
    "transfer",
    "update",
    "upgrade",
    "urgent",
    "username",
    "verify",
    "wallet",
    "welcome",
    "win",
    "your",
];

/// Edit-distance-≤2 spell checker over a fixed dictionary with
/// frequency-free nearest-match semantics (ties break to the shorter,
/// then lexicographically smaller word — deterministic).
#[derive(Debug, Clone)]
pub struct SpellChecker {
    words: Vec<String>,
    exact: HashMap<String, usize>,
    max_distance: usize,
}

impl SpellChecker {
    /// Builds a checker over [`BASE_DICTIONARY`] plus `extra` words
    /// (typically brand labels).
    pub fn new<I, S>(extra: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut words: Vec<String> = BASE_DICTIONARY.iter().map(|w| w.to_string()).collect();
        for w in extra {
            let w = w.as_ref().to_ascii_lowercase();
            if !w.is_empty() {
                words.push(w);
            }
        }
        words.sort();
        words.dedup();
        let exact = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        SpellChecker {
            words,
            exact,
            max_distance: 2,
        }
    }

    /// Number of dictionary words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether `word` is a dictionary word.
    pub fn contains(&self, word: &str) -> bool {
        self.exact.contains_key(word)
    }

    /// Corrects a token: exact dictionary hits and very short tokens pass
    /// through; otherwise the nearest dictionary word within distance 2
    /// (scaled down to 1 for tokens of length ≤ 4) is returned; tokens
    /// with no near word pass through unchanged.
    pub fn correct<'a>(&'a self, word: &'a str) -> &'a str {
        if word.len() <= 2 || self.contains(word) {
            return word;
        }
        let budget = if word.len() <= 4 {
            1
        } else {
            self.max_distance
        };
        let mut best: Option<(&str, usize)> = None;
        for w in &self.words {
            // Cheap length gate.
            if w.len().abs_diff(word.len()) > budget {
                continue;
            }
            let d = bounded_levenshtein(word, w, budget);
            if let Some(d) = d {
                let better = match best {
                    None => true,
                    Some((bw, bd)) => d < bd || (d == bd && (w.len(), w.as_str()) < (bw.len(), bw)),
                };
                if better {
                    best = Some((w, d));
                }
            }
        }
        best.map(|(w, _)| w).unwrap_or(word)
    }

    /// Corrects a whole token stream in place.
    pub fn correct_all(&self, tokens: &[String]) -> Vec<String> {
        tokens.iter().map(|t| self.correct(t).to_string()).collect()
    }
}

/// Levenshtein distance capped at `budget`; `None` when it exceeds it.
fn bounded_levenshtein(a: &str, b: &str, budget: usize) -> Option<usize> {
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    if a.len().abs_diff(b.len()) > budget {
        return None;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > budget {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[b.len()] <= budget).then_some(prev[b.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> SpellChecker {
        SpellChecker::new(["paypal", "facebook", "google"])
    }

    #[test]
    fn paper_example_passwod() {
        assert_eq!(checker().correct("passwod"), "password");
    }

    #[test]
    fn exact_words_pass_through() {
        let c = checker();
        assert_eq!(c.correct("password"), "password");
        assert_eq!(c.correct("paypal"), "paypal");
    }

    #[test]
    fn brand_typos_corrected() {
        let c = checker();
        assert_eq!(c.correct("paypol"), "paypal");
        assert_eq!(c.correct("facebok"), "facebook");
    }

    #[test]
    fn unknown_tokens_unchanged() {
        let c = checker();
        assert_eq!(c.correct("zxqwvk"), "zxqwvk");
        assert_eq!(c.correct("blockchainstuff"), "blockchainstuff");
    }

    #[test]
    fn short_tokens_untouched() {
        let c = checker();
        assert_eq!(c.correct("ok"), "ok");
        assert_eq!(c.correct("a"), "a");
    }

    #[test]
    fn ties_are_deterministic() {
        let c = checker();
        let first = c.correct("sign");
        for _ in 0..5 {
            assert_eq!(c.correct("sign"), first);
        }
    }

    #[test]
    fn correct_all_streams() {
        let c = checker();
        let toks: Vec<String> = ["enter", "yur", "passwod"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let fixed = c.correct_all(&toks);
        assert_eq!(fixed[2], "password");
    }

    #[test]
    fn bounded_levenshtein_honors_budget() {
        assert_eq!(bounded_levenshtein("abc", "abd", 2), Some(1));
        assert_eq!(bounded_levenshtein("abc", "xyz", 2), None);
        assert_eq!(bounded_levenshtein("same", "same", 0), Some(0));
    }

    #[test]
    fn dictionary_dedupes() {
        let c = SpellChecker::new(["password", "password", "login"]);
        let n = c.len();
        assert_eq!(n, BASE_DICTIONARY.len()); // both extras already present
    }
}
