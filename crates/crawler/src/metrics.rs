//! Transport-layer instrumentation, shared across the middleware stack.
//!
//! One [`TransportMetrics`] is threaded (by `Arc`) through every layer of
//! a [`TransportStack`](crate::middleware::TransportStack) and through
//! the crawl engine itself; [`crawl_all`](crate::crawl::crawl_all) folds
//! a [`TransportSnapshot`] of it into [`CrawlStats`](crate::stats::CrawlStats)
//! so the counters surface in the CLI and `repro` reports.
//!
//! Accounting rules (each fault is counted exactly once per counter
//! group):
//!
//! * `attempts` — fetches *issued by the crawl engine* (one per
//!   `Transport::fetch` call from the crawl loop),
//! * `retries` — extra attempts originated by any retry mechanism: the
//!   engine's configured retry budget and
//!   [`RetryTransport`](crate::middleware::RetryTransport) both count
//!   here,
//! * `errors[class]` — faults *consumed* somewhere: a retry layer counts
//!   the errors it absorbs by retrying, the engine counts every error
//!   that surfaces to it. A propagated error is only counted by its
//!   final consumer, so `errors` totals reconcile with `injected`
//!   (plus world-dead refusals, breaker rejections and deadline
//!   timeouts),
//! * `injected[class]` — faults a
//!   [`ChaosTransport`](crate::middleware::ChaosTransport) plan raised,
//! * `breaker_short_circuits` — fetches answered by an open circuit
//!   breaker without reaching the inner transport.

use crate::error::FetchClass;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared atomic counters for one transport stack / crawl.
#[derive(Debug, Default)]
pub struct TransportMetrics {
    attempts: AtomicU64,
    successes: AtomicU64,
    retries: AtomicU64,
    backoff_ns: AtomicU64,
    errors: [AtomicU64; 4],
    injected: [AtomicU64; 4],
    breaker_trips: AtomicU64,
    breaker_short_circuits: AtomicU64,
    fetch_deadline_hits: AtomicU64,
    crawl_deadline_hits: AtomicU64,
}

impl TransportMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        TransportMetrics::default()
    }

    /// One engine-issued fetch.
    pub fn record_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// A fetch that returned `Ok` to the engine.
    pub fn record_success(&self) {
        self.successes.fetch_add(1, Ordering::Relaxed);
    }

    /// One extra attempt after a failure, with the (virtual) backoff
    /// that preceded it (`Duration::ZERO` for the engine's immediate
    /// retries).
    pub fn record_retry(&self, backoff: Duration) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(backoff.as_nanos()).unwrap_or(u64::MAX);
        self.backoff_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A fault consumed at some layer (see module docs for the
    /// exactly-once rule).
    pub fn record_error(&self, class: FetchClass) {
        self.errors[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// A fault injected by a chaos plan.
    pub fn record_injected(&self, class: FetchClass) {
        self.injected[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// A circuit breaker opening.
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// A fetch rejected by an open breaker.
    pub fn record_breaker_short_circuit(&self) {
        self.breaker_short_circuits.fetch_add(1, Ordering::Relaxed);
    }

    /// A per-fetch deadline firing.
    pub fn record_fetch_deadline(&self) {
        self.fetch_deadline_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The whole-crawl budget firing.
    pub fn record_crawl_deadline(&self) {
        self.crawl_deadline_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent copy of all counters.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            attempts: self.attempts.load(Ordering::Relaxed),
            successes: self.successes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            backoff_ns: self.backoff_ns.load(Ordering::Relaxed),
            errors: self.errors.each_ref().map(|c| c.load(Ordering::Relaxed)),
            injected: self.injected.each_ref().map(|c| c.load(Ordering::Relaxed)),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_short_circuits: self.breaker_short_circuits.load(Ordering::Relaxed),
            fetch_deadline_hits: self.fetch_deadline_hits.load(Ordering::Relaxed),
            crawl_deadline_hits: self.crawl_deadline_hits.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`TransportMetrics`], carried on
/// [`CrawlStats`](crate::stats::CrawlStats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Engine-issued fetches.
    pub attempts: u64,
    /// Fetches that returned a serve result to the engine.
    pub successes: u64,
    /// Extra attempts after failures (engine + retry layers).
    pub retries: u64,
    /// Total virtual backoff slept before retries, in nanoseconds.
    pub backoff_ns: u64,
    /// Faults consumed, per [`FetchClass`] index.
    pub errors: [u64; 4],
    /// Faults injected by chaos plans, per [`FetchClass`] index.
    pub injected: [u64; 4],
    /// Circuit-breaker openings.
    pub breaker_trips: u64,
    /// Fetches rejected by an open breaker.
    pub breaker_short_circuits: u64,
    /// Per-fetch deadline hits.
    pub fetch_deadline_hits: u64,
    /// Whole-crawl budget hits.
    pub crawl_deadline_hits: u64,
}

impl TransportSnapshot {
    /// Consumed faults across all classes.
    pub fn errors_total(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// Injected faults across all classes.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Consumed faults of one class.
    pub fn errors_of(&self, class: FetchClass) -> u64 {
        self.errors[class.index()]
    }

    /// Injected faults of one class.
    pub fn injected_of(&self, class: FetchClass) -> u64 {
        self.injected[class.index()]
    }

    /// One-line report (`repro` and the `crawl` CLI command print this).
    pub fn report_line(&self) -> String {
        format!(
            "{} attempts, {} retries ({:.1}ms backoff), {} errors \
             (timeout {}, refused {}, truncated {}, injected {}), \
             {} breaker trips, {} short-circuits, {} fetch / {} crawl deadline hits",
            self.attempts,
            self.retries,
            self.backoff_ns as f64 / 1e6,
            self.errors_total(),
            self.errors[0],
            self.errors[1],
            self.errors[2],
            self.errors[3],
            self.breaker_trips,
            self.breaker_short_circuits,
            self.fetch_deadline_hits,
            self.crawl_deadline_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = TransportMetrics::new();
        m.record_attempt();
        m.record_attempt();
        m.record_success();
        m.record_retry(Duration::from_millis(3));
        m.record_error(FetchClass::Timeout);
        m.record_error(FetchClass::Injected);
        m.record_injected(FetchClass::Injected);
        m.record_breaker_trip();
        m.record_breaker_short_circuit();
        m.record_fetch_deadline();
        m.record_crawl_deadline();
        let s = m.snapshot();
        assert_eq!(s.attempts, 2);
        assert_eq!(s.successes, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.backoff_ns, 3_000_000);
        assert_eq!(s.errors_total(), 2);
        assert_eq!(s.errors_of(FetchClass::Timeout), 1);
        assert_eq!(s.injected_of(FetchClass::Injected), 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_short_circuits, 1);
        assert_eq!(s.fetch_deadline_hits, 1);
        assert_eq!(s.crawl_deadline_hits, 1);
        assert!(s.report_line().contains("2 attempts"));
    }

    #[test]
    fn snapshot_equality_supports_determinism_checks() {
        let a = TransportMetrics::new();
        let b = TransportMetrics::new();
        a.record_error(FetchClass::Truncated);
        b.record_error(FetchClass::Truncated);
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
