//! Transport-layer instrumentation, shared across the middleware stack.
//!
//! One [`TransportMetrics`] is threaded (by `Arc`) through every layer of
//! a [`TransportStack`](crate::middleware::TransportStack) and through
//! the crawl engine itself; [`crawl_all`](crate::crawl::crawl_all) folds
//! a [`TransportSnapshot`] of it into [`CrawlStats`](crate::stats::CrawlStats)
//! so the counters surface in the CLI and `repro` reports.
//!
//! Accounting rules (each fault is counted exactly once per counter
//! group):
//!
//! * `attempts` — fetches *issued by the crawl engine* (one per
//!   `Transport::fetch` call from the crawl loop),
//! * `retries` — extra attempts originated by any retry mechanism: the
//!   engine's configured retry budget and
//!   [`RetryTransport`](crate::middleware::RetryTransport) both count
//!   here,
//! * `errors[class]` — faults *consumed* somewhere: a retry layer counts
//!   the errors it absorbs by retrying, the engine counts every error
//!   that surfaces to it. A propagated error is only counted by its
//!   final consumer, so `errors` totals reconcile with `injected`
//!   (plus world-dead refusals, breaker rejections and deadline
//!   timeouts),
//! * `injected[class]` — faults a
//!   [`ChaosTransport`](crate::middleware::ChaosTransport) plan raised,
//! * `breaker_short_circuits` — fetches answered by an open circuit
//!   breaker without reaching the inner transport.

use crate::error::FetchClass;
use squatphi_telemetry::{Counter, Registry, Scope, Snapshot};
use std::time::Duration;

/// Telemetry leaf names for the four [`FetchClass`] indexes, paper order.
const CLASS_NAMES: [&str; 4] = ["timeout", "refused", "truncated", "injected"];

/// Shared counters for one transport stack / crawl, backed by a
/// [`Registry`] under the `transport.` scope. The record methods are the
/// same lock-free atomic adds as before; what changed is that the cells
/// now live in a telemetry registry, so the same numbers surface in
/// snapshots, JSON reports and invariant checks without copying.
#[derive(Debug)]
pub struct TransportMetrics {
    registry: Registry,
    attempts: Counter,
    successes: Counter,
    retries: Counter,
    backoff_ns: Counter,
    errors: [Counter; 4],
    injected: [Counter; 4],
    breaker_trips: Counter,
    breaker_short_circuits: Counter,
    fetch_deadline_hits: Counter,
    crawl_deadline_hits: Counter,
}

impl Default for TransportMetrics {
    fn default() -> Self {
        TransportMetrics::new()
    }
}

impl TransportMetrics {
    /// Fresh zeroed counters in a private registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let scope = registry.scope("transport");
        let errors_scope = scope.scope("errors");
        let injected_scope = scope.scope("injected");
        TransportMetrics {
            attempts: scope.counter("attempts"),
            successes: scope.counter("successes"),
            retries: scope.counter("retries"),
            backoff_ns: scope.counter("backoff_ns"),
            errors: CLASS_NAMES.map(|name| errors_scope.counter(name)),
            injected: CLASS_NAMES.map(|name| injected_scope.counter(name)),
            breaker_trips: scope.counter("breaker_trips"),
            breaker_short_circuits: scope.counter("breaker_short_circuits"),
            fetch_deadline_hits: scope.counter("fetch_deadline_hits"),
            crawl_deadline_hits: scope.counter("crawl_deadline_hits"),
            registry,
        }
    }

    /// The backing registry (counters live under `transport.`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One engine-issued fetch.
    pub fn record_attempt(&self) {
        self.attempts.inc();
    }

    /// A fetch that returned `Ok` to the engine.
    pub fn record_success(&self) {
        self.successes.inc();
    }

    /// One extra attempt after a failure, with the (virtual) backoff
    /// that preceded it (`Duration::ZERO` for the engine's immediate
    /// retries).
    pub fn record_retry(&self, backoff: Duration) {
        self.retries.inc();
        let ns = u64::try_from(backoff.as_nanos()).unwrap_or(u64::MAX);
        self.backoff_ns.add(ns);
    }

    /// A fault consumed at some layer (see module docs for the
    /// exactly-once rule).
    pub fn record_error(&self, class: FetchClass) {
        self.errors[class.index()].inc();
    }

    /// A fault injected by a chaos plan.
    pub fn record_injected(&self, class: FetchClass) {
        self.injected[class.index()].inc();
    }

    /// A circuit breaker opening.
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.inc();
    }

    /// A fetch rejected by an open breaker.
    pub fn record_breaker_short_circuit(&self) {
        self.breaker_short_circuits.inc();
    }

    /// A per-fetch deadline firing.
    pub fn record_fetch_deadline(&self) {
        self.fetch_deadline_hits.inc();
    }

    /// The whole-crawl budget firing.
    pub fn record_crawl_deadline(&self) {
        self.crawl_deadline_hits.inc();
    }

    /// A consistent copy of all counters.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            attempts: self.attempts.get(),
            successes: self.successes.get(),
            retries: self.retries.get(),
            backoff_ns: self.backoff_ns.get(),
            errors: self.errors.each_ref().map(Counter::get),
            injected: self.injected.each_ref().map(Counter::get),
            breaker_trips: self.breaker_trips.get(),
            breaker_short_circuits: self.breaker_short_circuits.get(),
            fetch_deadline_hits: self.fetch_deadline_hits.get(),
            crawl_deadline_hits: self.crawl_deadline_hits.get(),
        }
    }
}

/// Plain-value copy of [`TransportMetrics`], carried on
/// [`CrawlStats`](crate::stats::CrawlStats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Engine-issued fetches.
    pub attempts: u64,
    /// Fetches that returned a serve result to the engine.
    pub successes: u64,
    /// Extra attempts after failures (engine + retry layers).
    pub retries: u64,
    /// Total virtual backoff slept before retries, in nanoseconds.
    pub backoff_ns: u64,
    /// Faults consumed, per [`FetchClass`] index.
    pub errors: [u64; 4],
    /// Faults injected by chaos plans, per [`FetchClass`] index.
    pub injected: [u64; 4],
    /// Circuit-breaker openings.
    pub breaker_trips: u64,
    /// Fetches rejected by an open breaker.
    pub breaker_short_circuits: u64,
    /// Per-fetch deadline hits.
    pub fetch_deadline_hits: u64,
    /// Whole-crawl budget hits.
    pub crawl_deadline_hits: u64,
}

impl TransportSnapshot {
    /// Consumed faults across all classes.
    pub fn errors_total(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// Injected faults across all classes.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Consumed faults of one class.
    pub fn errors_of(&self, class: FetchClass) -> u64 {
        self.errors[class.index()]
    }

    /// Injected faults of one class.
    pub fn injected_of(&self, class: FetchClass) -> u64 {
        self.injected[class.index()]
    }

    /// Publishes the snapshot into a telemetry scope (canonically
    /// `transport`, or `crawl.transport` / `watch.transport` when nested
    /// under a stage).
    pub fn export(&self, scope: &Scope) {
        scope.set_u64("attempts", self.attempts);
        scope.set_u64("successes", self.successes);
        scope.set_u64("retries", self.retries);
        scope.set_u64("backoff_ns", self.backoff_ns);
        let errors = scope.scope("errors");
        let injected = scope.scope("injected");
        for (i, name) in CLASS_NAMES.iter().enumerate() {
            errors.set_u64(name, self.errors[i]);
            injected.set_u64(name, self.injected[i]);
        }
        scope.set_u64("breaker_trips", self.breaker_trips);
        scope.set_u64("breaker_short_circuits", self.breaker_short_circuits);
        scope.set_u64("fetch_deadline_hits", self.fetch_deadline_hits);
        scope.set_u64("crawl_deadline_hits", self.crawl_deadline_hits);
    }

    /// Reads a snapshot back from an exported scope — the inverse of
    /// [`TransportSnapshot::export`].
    pub fn from_snapshot(snap: &Snapshot, prefix: &str) -> TransportSnapshot {
        let get = |leaf: &str| snap.u64_or_zero(&format!("{prefix}.{leaf}"));
        TransportSnapshot {
            attempts: get("attempts"),
            successes: get("successes"),
            retries: get("retries"),
            backoff_ns: get("backoff_ns"),
            errors: CLASS_NAMES.map(|name| get(&format!("errors.{name}"))),
            injected: CLASS_NAMES.map(|name| get(&format!("injected.{name}"))),
            breaker_trips: get("breaker_trips"),
            breaker_short_circuits: get("breaker_short_circuits"),
            fetch_deadline_hits: get("fetch_deadline_hits"),
            crawl_deadline_hits: get("crawl_deadline_hits"),
        }
    }

    /// One-line report (`repro` and the `crawl` CLI command print this).
    pub fn report_line(&self) -> String {
        format!(
            "{} attempts, {} retries ({:.1}ms backoff), {} errors \
             (timeout {}, refused {}, truncated {}, injected {}), \
             {} breaker trips, {} short-circuits, {} fetch / {} crawl deadline hits",
            self.attempts,
            self.retries,
            self.backoff_ns as f64 / 1e6,
            self.errors_total(),
            self.errors[0],
            self.errors[1],
            self.errors[2],
            self.errors[3],
            self.breaker_trips,
            self.breaker_short_circuits,
            self.fetch_deadline_hits,
            self.crawl_deadline_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = TransportMetrics::new();
        m.record_attempt();
        m.record_attempt();
        m.record_success();
        m.record_retry(Duration::from_millis(3));
        m.record_error(FetchClass::Timeout);
        m.record_error(FetchClass::Injected);
        m.record_injected(FetchClass::Injected);
        m.record_breaker_trip();
        m.record_breaker_short_circuit();
        m.record_fetch_deadline();
        m.record_crawl_deadline();
        let s = m.snapshot();
        assert_eq!(s.attempts, 2);
        assert_eq!(s.successes, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.backoff_ns, 3_000_000);
        assert_eq!(s.errors_total(), 2);
        assert_eq!(s.errors_of(FetchClass::Timeout), 1);
        assert_eq!(s.injected_of(FetchClass::Injected), 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_short_circuits, 1);
        assert_eq!(s.fetch_deadline_hits, 1);
        assert_eq!(s.crawl_deadline_hits, 1);
        assert!(s.report_line().contains("2 attempts"));
    }

    #[test]
    fn export_round_trips_through_a_snapshot() {
        let m = TransportMetrics::new();
        m.record_attempt();
        m.record_retry(Duration::from_millis(1));
        m.record_error(FetchClass::ConnectionRefused);
        m.record_injected(FetchClass::Truncated);
        m.record_crawl_deadline();
        let snap = m.snapshot();
        // The live counters already sit in the backing registry under
        // `transport.`; re-exporting the plain snapshot must agree.
        let live = m.registry().snapshot();
        assert_eq!(live.get_u64("transport.attempts"), Some(1));
        assert_eq!(live.get_u64("transport.errors.refused"), Some(1));
        let reg = Registry::new();
        snap.export(&reg.scope("crawl.transport"));
        let round = TransportSnapshot::from_snapshot(&reg.snapshot(), "crawl.transport");
        assert_eq!(round, snap);
    }

    #[test]
    fn snapshot_equality_supports_determinism_checks() {
        let a = TransportMetrics::new();
        let b = TransportMetrics::new();
        a.record_error(FetchClass::Truncated);
        b.record_error(FetchClass::Truncated);
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
