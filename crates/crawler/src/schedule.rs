//! Deterministic re-crawl scheduling for long-running watch services.
//!
//! The paper re-crawls its candidate set weekly (four April snapshots);
//! a streaming daemon instead keeps a due-queue of live candidates and
//! sweeps whatever is due each cadence. Ordering is fully deterministic:
//! entries pop in `(due_tick, domain)` order regardless of insertion
//! order, so two runs of the same stream schedule identical sweeps.

use std::collections::{BTreeSet, HashMap};

/// A deterministic due-queue of domains awaiting re-crawl.
///
/// ```
/// use squatphi_crawler::RecrawlScheduler;
///
/// let mut s = RecrawlScheduler::new();
/// s.schedule(8, "b.example");
/// s.schedule(4, "a.example");
/// assert_eq!(s.due(4, 10), vec!["a.example".to_string()]);
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct RecrawlScheduler {
    queue: BTreeSet<(u64, String)>,
    by_domain: HashMap<String, u64>,
}

impl RecrawlScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        RecrawlScheduler::default()
    }

    /// Schedules (or reschedules) `domain` for re-crawl at `due_tick`.
    /// A domain has at most one pending slot; scheduling again moves it.
    pub fn schedule(&mut self, due_tick: u64, domain: &str) {
        if let Some(old) = self.by_domain.insert(domain.to_string(), due_tick) {
            self.queue.remove(&(old, domain.to_string()));
        }
        self.queue.insert((due_tick, domain.to_string()));
    }

    /// Drops `domain`'s pending slot (takedown / deregistration).
    /// Returns whether anything was cancelled.
    pub fn cancel(&mut self, domain: &str) -> bool {
        match self.by_domain.remove(domain) {
            Some(due) => self.queue.remove(&(due, domain.to_string())),
            None => false,
        }
    }

    /// Pops up to `limit` domains due at or before `now_tick`, in
    /// `(due_tick, domain)` order.
    pub fn due(&mut self, now_tick: u64, limit: usize) -> Vec<String> {
        let mut out = Vec::new();
        while out.len() < limit {
            let Some(entry) = self.queue.iter().next().cloned() else {
                break;
            };
            if entry.0 > now_tick {
                break;
            }
            self.queue.remove(&entry);
            self.by_domain.remove(&entry.1);
            out.push(entry.1);
        }
        out
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates pending `(due_tick, domain)` pairs in deterministic
    /// order (checkpoint serialization).
    pub fn entries(&self) -> impl Iterator<Item = (u64, &str)> {
        self.queue.iter().map(|(t, d)| (*t, d.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_due_then_domain_order() {
        let mut s = RecrawlScheduler::new();
        s.schedule(5, "c.example");
        s.schedule(3, "b.example");
        s.schedule(3, "a.example");
        assert_eq!(
            s.due(5, 10),
            vec!["a.example", "b.example", "c.example"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
        assert!(s.is_empty());
    }

    #[test]
    fn respects_limit_and_now() {
        let mut s = RecrawlScheduler::new();
        for i in 0..6u64 {
            s.schedule(i, &format!("d{i}.example"));
        }
        assert_eq!(s.due(3, 2).len(), 2);
        assert_eq!(s.due(3, 10).len(), 2); // only ticks 2 and 3 remain due
        assert_eq!(s.len(), 2); // ticks 4 and 5 still pending
    }

    #[test]
    fn reschedule_moves_not_duplicates() {
        let mut s = RecrawlScheduler::new();
        s.schedule(2, "x.example");
        s.schedule(9, "x.example");
        assert_eq!(s.len(), 1);
        assert!(s.due(2, 10).is_empty());
        assert_eq!(s.due(9, 10), vec!["x.example".to_string()]);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut s = RecrawlScheduler::new();
        s.schedule(1, "x.example");
        assert!(s.cancel("x.example"));
        assert!(!s.cancel("x.example"));
        assert!(s.due(1, 10).is_empty());
    }

    #[test]
    fn entries_iterate_sorted() {
        let mut s = RecrawlScheduler::new();
        s.schedule(7, "b.example");
        s.schedule(1, "z.example");
        let e: Vec<(u64, String)> = s.entries().map(|(t, d)| (t, d.to_string())).collect();
        assert_eq!(
            e,
            vec![(1, "z.example".to_string()), (7, "b.example".to_string())]
        );
    }
}
