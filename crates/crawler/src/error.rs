//! The fetch-error taxonomy of the fallible [`Transport`] API.
//!
//! Every way a fetch can fail is one of four coarse classes, chosen to
//! match what a real crawler distinguishes on the wire (and what the
//! paper's crawler had to survive — §3.2 sends "1-2 requests for each
//! scan" and records dead domains gracefully):
//!
//! * [`FetchError::Timeout`] — the fetch exceeded a deadline (per-fetch
//!   or whole-crawl budget),
//! * [`FetchError::ConnectionRefused`] — the host is dead: NXDOMAIN,
//!   RST, or a circuit breaker refusing locally,
//! * [`FetchError::Truncated`] — the connection dropped mid-response,
//! * [`FetchError::Injected`] — a synthetic fault from a
//!   [`ChaosTransport`](crate::middleware::ChaosTransport) plan that
//!   does not model any specific network failure.
//!
//! Each variant carries the host it failed for and the 1-based attempt
//! number at which the failure surfaced (0 when the erroring layer does
//! not track per-host attempts).
//!
//! [`Transport`]: crate::transport::Transport

use std::fmt;

/// The coarse class of a [`FetchError`], used for per-class metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchClass {
    /// Deadline exceeded.
    Timeout,
    /// Host dead or refusing connections (includes breaker rejections).
    ConnectionRefused,
    /// Response cut off mid-transfer.
    Truncated,
    /// Synthetic chaos-plan fault.
    Injected,
}

impl FetchClass {
    /// All classes, in metrics-array order.
    pub const ALL: [FetchClass; 4] = [
        FetchClass::Timeout,
        FetchClass::ConnectionRefused,
        FetchClass::Truncated,
        FetchClass::Injected,
    ];

    /// Stable index into per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            FetchClass::Timeout => 0,
            FetchClass::ConnectionRefused => 1,
            FetchClass::Truncated => 2,
            FetchClass::Injected => 3,
        }
    }

    /// Short lower-case name (CLI flags and reports).
    pub fn name(self) -> &'static str {
        match self {
            FetchClass::Timeout => "timeout",
            FetchClass::ConnectionRefused => "refused",
            FetchClass::Truncated => "truncated",
            FetchClass::Injected => "injected",
        }
    }

    /// Parses the short name produced by [`FetchClass::name`].
    pub fn parse(s: &str) -> Option<FetchClass> {
        FetchClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for FetchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A failed fetch, with host and attempt context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The fetch exceeded its per-fetch or whole-crawl deadline.
    Timeout {
        /// Host being fetched when the deadline hit.
        host: String,
        /// 1-based attempt number (0 = not tracked by the erroring layer).
        attempt: u32,
    },
    /// The host refused the connection (dead host, NXDOMAIN, or a
    /// circuit breaker rejecting locally).
    ConnectionRefused {
        /// Host that refused.
        host: String,
        /// 1-based attempt number (0 = not tracked by the erroring layer).
        attempt: u32,
    },
    /// The response was cut off before completion.
    Truncated {
        /// Host whose response was truncated.
        host: String,
        /// 1-based attempt number (0 = not tracked by the erroring layer).
        attempt: u32,
    },
    /// A synthetic fault injected by a chaos plan.
    Injected {
        /// Host the fault was injected for.
        host: String,
        /// 1-based attempt number (0 = not tracked by the erroring layer).
        attempt: u32,
    },
}

impl FetchError {
    /// Builds an error of the given class.
    pub fn new(class: FetchClass, host: impl Into<String>, attempt: u32) -> Self {
        let host = host.into();
        match class {
            FetchClass::Timeout => FetchError::Timeout { host, attempt },
            FetchClass::ConnectionRefused => FetchError::ConnectionRefused { host, attempt },
            FetchClass::Truncated => FetchError::Truncated { host, attempt },
            FetchClass::Injected => FetchError::Injected { host, attempt },
        }
    }

    /// The coarse class of this error.
    pub fn class(&self) -> FetchClass {
        match self {
            FetchError::Timeout { .. } => FetchClass::Timeout,
            FetchError::ConnectionRefused { .. } => FetchClass::ConnectionRefused,
            FetchError::Truncated { .. } => FetchClass::Truncated,
            FetchError::Injected { .. } => FetchClass::Injected,
        }
    }

    /// The host the fetch failed for.
    pub fn host(&self) -> &str {
        match self {
            FetchError::Timeout { host, .. }
            | FetchError::ConnectionRefused { host, .. }
            | FetchError::Truncated { host, .. }
            | FetchError::Injected { host, .. } => host,
        }
    }

    /// The attempt number the failure surfaced at (0 = untracked).
    pub fn attempt(&self) -> u32 {
        match self {
            FetchError::Timeout { attempt, .. }
            | FetchError::ConnectionRefused { attempt, .. }
            | FetchError::Truncated { attempt, .. }
            | FetchError::Injected { attempt, .. } => *attempt,
        }
    }

    /// Stamps the attempt number — used by layers that track per-host
    /// attempts to enrich errors raised by layers that do not.
    pub fn with_attempt(mut self, n: u32) -> Self {
        match &mut self {
            FetchError::Timeout { attempt, .. }
            | FetchError::ConnectionRefused { attempt, .. }
            | FetchError::Truncated { attempt, .. }
            | FetchError::Injected { attempt, .. } => *attempt = n,
        }
        self
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attempt() == 0 {
            write!(f, "{} fetching {}", self.class(), self.host())
        } else {
            write!(
                f,
                "{} fetching {} (attempt {})",
                self.class(),
                self.host(),
                self.attempt()
            )
        }
    }
}

impl std::error::Error for FetchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_roundtrips_through_name_and_index() {
        for (i, c) in FetchClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(FetchClass::parse(c.name()), Some(c));
        }
        assert_eq!(FetchClass::parse("bogus"), None);
    }

    #[test]
    fn error_carries_context() {
        let e = FetchError::new(FetchClass::Timeout, "a.com", 3);
        assert_eq!(e.class(), FetchClass::Timeout);
        assert_eq!(e.host(), "a.com");
        assert_eq!(e.attempt(), 3);
        assert_eq!(e.to_string(), "timeout fetching a.com (attempt 3)");
        let e = e.with_attempt(0);
        assert_eq!(e.to_string(), "timeout fetching a.com");
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&FetchError::new(FetchClass::Injected, "x", 1));
    }
}
