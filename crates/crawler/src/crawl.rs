//! The crawl loop: work queue, worker pool, redirect following,
//! destination classification.

use crate::metrics::TransportMetrics;
use crate::stats::CrawlStats;
use crate::transport::Transport;
use crossbeam::channel;
use squatphi_domain::url::host_of;
use squatphi_html::parse;
use squatphi_render::{render_page, Bitmap, RenderOptions};
use squatphi_squat::{BrandId, BrandRegistry, SquatType};
use squatphi_web::world::MARKETPLACES;
use squatphi_web::{Device, ServeResult};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Validated crawl parameters; build one with [`CrawlConfig::builder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlConfig {
    workers: usize,
    max_redirects: usize,
    snapshot: u8,
    retries: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            workers: 8,
            max_redirects: 5,
            snapshot: 0,
            retries: 1,
        }
    }
}

impl CrawlConfig {
    /// Starts a builder pre-loaded with the default values.
    pub fn builder() -> CrawlConfigBuilder {
        CrawlConfigBuilder::default()
    }

    /// Worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Redirect budget per page.
    pub fn max_redirects(&self) -> usize {
        self.max_redirects
    }

    /// Snapshot index being crawled.
    pub fn snapshot(&self) -> u8 {
        self.snapshot
    }

    /// Additional engine-level fetch attempts on failure (0 = no retry).
    /// The paper's crawler sends "1-2 requests for each scan" —
    /// transient failures get one more chance before a domain is
    /// recorded dead. Middleware retry budgets
    /// ([`RetryPolicy`](crate::middleware::RetryPolicy)) stack on top.
    pub fn retries(&self) -> usize {
        self.retries
    }
}

/// Validating builder for [`CrawlConfig`].
///
/// ```
/// # use squatphi_crawler::crawl::CrawlConfig;
/// let cfg = CrawlConfig::builder().workers(8).retries(1).build().unwrap();
/// assert_eq!(cfg, CrawlConfig::default());
/// assert!(CrawlConfig::builder().workers(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct CrawlConfigBuilder {
    workers: usize,
    max_redirects: usize,
    snapshot: u8,
    retries: usize,
}

impl Default for CrawlConfigBuilder {
    fn default() -> Self {
        let d = CrawlConfig::default();
        CrawlConfigBuilder {
            workers: d.workers,
            max_redirects: d.max_redirects,
            snapshot: d.snapshot,
            retries: d.retries,
        }
    }
}

impl CrawlConfigBuilder {
    /// Worker threads (must be >= 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Redirect budget per page (must be >= 1).
    pub fn max_redirects(mut self, n: usize) -> Self {
        self.max_redirects = n;
        self
    }

    /// Snapshot index to crawl.
    pub fn snapshot(mut self, s: u8) -> Self {
        self.snapshot = s;
        self
    }

    /// Engine-level retry budget (0 = no retry).
    pub fn retries(mut self, n: usize) -> Self {
        self.retries = n;
        self
    }

    /// Validates and builds the config.
    pub fn build(self) -> Result<CrawlConfig, CrawlConfigError> {
        if self.workers == 0 {
            return Err(CrawlConfigError::ZeroWorkers);
        }
        if self.max_redirects == 0 {
            return Err(CrawlConfigError::ZeroRedirects);
        }
        Ok(CrawlConfig {
            workers: self.workers,
            max_redirects: self.max_redirects,
            snapshot: self.snapshot,
            retries: self.retries,
        })
    }
}

/// Rejected [`CrawlConfigBuilder`] combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlConfigError {
    /// `workers` must be at least 1 — a crawl with no workers hangs.
    ZeroWorkers,
    /// `max_redirects` must be at least 1 — the paper's crawler always
    /// follows at least one hop to classify redirect games.
    ZeroRedirects,
}

impl std::fmt::Display for CrawlConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlConfigError::ZeroWorkers => f.write_str("crawl config: workers must be >= 1"),
            CrawlConfigError::ZeroRedirects => {
                f.write_str("crawl config: max_redirects must be >= 1")
            }
        }
    }
}

impl std::error::Error for CrawlConfigError {}

/// Where a redirect chain ends, classified as in Tables 2-4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectClass {
    /// No redirect at all.
    None,
    /// Ends on the impersonated brand's own domain.
    Original,
    /// Ends on a known domain marketplace.
    Market,
    /// Ends somewhere else.
    Other,
}

/// One captured page (per device profile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageCapture {
    /// Host that finally served the page.
    pub final_host: String,
    /// The HTML body.
    pub html: String,
    /// Redirect hops taken (hosts).
    pub redirects: Vec<String>,
}

impl PageCapture {
    /// Renders the screenshot for this capture (lazily — bitmaps are too
    /// large to keep for a full crawl).
    pub fn render(&self) -> Bitmap {
        render_page(&parse(&self.html), &RenderOptions::default())
    }
}

/// What the crawl concluded about one `(domain, device)` pair — the
/// structured replacement for ad-hoc boolean liveness probing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlOutcome {
    /// A page was captured.
    Live,
    /// Redirect hops were observed but the final host never served a
    /// page (the capture's HTML is empty).
    TruncatedChain,
    /// Nothing came back: the domain is recorded dead.
    Dead,
}

impl std::fmt::Display for CrawlOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CrawlOutcome::Live => "live",
            CrawlOutcome::TruncatedChain => "truncated-chain",
            CrawlOutcome::Dead => "dead",
        })
    }
}

/// Everything the crawler learned about one squatting domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlRecord {
    /// The squatting domain.
    pub domain: String,
    /// Impersonated brand.
    pub brand: BrandId,
    /// Squatting type.
    pub squat_type: SquatType,
    /// Web (desktop) capture, `None` when unreachable.
    pub web: Option<PageCapture>,
    /// Mobile capture.
    pub mobile: Option<PageCapture>,
    /// Redirect classification of the web fetch.
    pub web_redirect: RedirectClass,
    /// Redirect classification of the mobile fetch.
    pub mobile_redirect: RedirectClass,
}

impl CrawlRecord {
    /// The crawl outcome for one device profile.
    pub fn outcome(&self, device: Device) -> CrawlOutcome {
        let capture = match device {
            Device::Web => self.web.as_ref(),
            Device::Mobile => self.mobile.as_ref(),
        };
        match capture {
            None => CrawlOutcome::Dead,
            Some(c) if c.html.is_empty() => CrawlOutcome::TruncatedChain,
            Some(_) => CrawlOutcome::Live,
        }
    }

    /// Whether either profile captured anything (page or truncated
    /// chain).
    pub fn live(&self) -> bool {
        self.outcome(Device::Web) != CrawlOutcome::Dead
            || self.outcome(Device::Mobile) != CrawlOutcome::Dead
    }
}

/// Crawls every `(domain, brand, type)` job with a worker pool over the
/// transport. Returns records in input order plus aggregate stats; if
/// the transport exposes [`TransportMetrics`] (middleware stacks do),
/// the engine records into the same counters and the combined snapshot
/// lands on [`CrawlStats::transport`].
pub fn crawl_all(
    jobs: &[(String, BrandId, SquatType)],
    registry: &BrandRegistry,
    transport: &dyn Transport,
    config: &CrawlConfig,
) -> (Vec<CrawlRecord>, CrawlStats) {
    let brand_domains: HashMap<usize, String> = registry
        .brands()
        .iter()
        .map(|b| (b.id, b.domain.as_str().to_string()))
        .collect();
    let markets: std::collections::HashSet<&str> = MARKETPLACES.iter().copied().collect();
    let metrics = transport
        .metrics()
        .unwrap_or_else(|| Arc::new(TransportMetrics::new()));

    let workers = config.workers.max(1);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for i in 0..jobs.len() {
        // The receiver outlives this loop, so the channel cannot be
        // closed yet; a failed send would be a crossbeam-stub bug.
        job_tx
            .send(i)
            .expect("job queue closed before the crawl started");
    }
    drop(job_tx);

    let records: Vec<CrawlRecord> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let brand_domains = &brand_domains;
            let markets = &markets;
            let metrics = &metrics;
            handles.push(s.spawn(move |_| {
                let mut out = Vec::new();
                while let Ok(i) = job_rx.recv() {
                    let (domain, brand, squat_type) = &jobs[i];
                    let (web, web_redirect) = fetch_one(
                        transport,
                        domain,
                        Device::Web,
                        config,
                        brand_domains.get(brand).map(String::as_str),
                        markets,
                        metrics,
                    );
                    let (mobile, mobile_redirect) = fetch_one(
                        transport,
                        domain,
                        Device::Mobile,
                        config,
                        brand_domains.get(brand).map(String::as_str),
                        markets,
                        metrics,
                    );
                    out.push((
                        i,
                        CrawlRecord {
                            domain: domain.clone(),
                            brand: *brand,
                            squat_type: *squat_type,
                            web,
                            mobile,
                            web_redirect,
                            mobile_redirect,
                        },
                    ));
                }
                out
            }));
        }
        let mut indexed: Vec<(usize, CrawlRecord)> = handles
            .into_iter()
            .flat_map(|h| {
                // A worker panic means a bug below the transport seam
                // (the crawl loop itself never panics on fetch errors);
                // surfacing it beats silently dropping its records.
                h.join()
                    .expect("crawl worker panicked; its records are lost")
            })
            .collect();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    })
    .expect("crawl worker panicked inside the crossbeam scope");

    let mut stats = CrawlStats::from_records(&records);
    stats.transport = metrics.snapshot();
    (records, stats)
}

#[allow(clippy::too_many_arguments)]
fn fetch_one(
    transport: &dyn Transport,
    domain: &str,
    device: Device,
    config: &CrawlConfig,
    brand_domain: Option<&str>,
    markets: &std::collections::HashSet<&str>,
    metrics: &TransportMetrics,
) -> (Option<PageCapture>, RedirectClass) {
    let mut host = domain.to_string();
    let mut redirects: Vec<String> = Vec::new();
    let mut retries_left = config.retries;
    for _ in 0..=(config.max_redirects + config.retries) {
        metrics.record_attempt();
        match transport.fetch(&host, device, config.snapshot) {
            Ok(ServeResult::Page(html)) => {
                metrics.record_success();
                let class = classify_chain(&redirects, &host, domain, brand_domain, markets);
                return (
                    Some(PageCapture {
                        final_host: host,
                        html,
                        redirects,
                    }),
                    class,
                );
            }
            Ok(ServeResult::Redirect(url)) => {
                metrics.record_success();
                let next = host_of(&url).unwrap_or(url);
                redirects.push(next.clone());
                host = next;
            }
            Ok(ServeResult::Unreachable) => {
                // Transports normally map this onto a FetchError; treat
                // a raw Unreachable exactly like one for robustness.
                if !absorb_failure(&mut retries_left, metrics) {
                    return give_up(redirects, host, domain, brand_domain, markets);
                }
            }
            Err(e) => {
                // The engine is the final consumer of every error that
                // surfaces this far (see TransportMetrics docs).
                metrics.record_error(e.class());
                if !absorb_failure(&mut retries_left, metrics) {
                    return give_up(redirects, host, domain, brand_domain, markets);
                }
            }
        }
    }
    (None, RedirectClass::Other) // redirect loop
}

/// Consumes one retry if any are left; returns whether the failure was
/// absorbed.
fn absorb_failure(retries_left: &mut usize, metrics: &TransportMetrics) -> bool {
    if *retries_left > 0 {
        *retries_left -= 1;
        metrics.record_retry(Duration::ZERO);
        true
    } else {
        false
    }
}

/// Records the terminal failure of a fetch chain: dead when nothing was
/// seen, a truncated chain when redirects were already followed.
fn give_up(
    redirects: Vec<String>,
    host: String,
    domain: &str,
    brand_domain: Option<&str>,
    markets: &std::collections::HashSet<&str>,
) -> (Option<PageCapture>, RedirectClass) {
    if redirects.is_empty() {
        return (None, RedirectClass::None);
    }
    let class = classify_chain(&redirects, &host, domain, brand_domain, markets);
    (
        Some(PageCapture {
            final_host: host,
            html: String::new(),
            redirects,
        }),
        class,
    )
}

fn classify_chain(
    redirects: &[String],
    final_host: &str,
    origin: &str,
    brand_domain: Option<&str>,
    markets: &std::collections::HashSet<&str>,
) -> RedirectClass {
    if redirects.is_empty() || final_host == origin {
        return RedirectClass::None;
    }
    if Some(final_host) == brand_domain {
        return RedirectClass::Original;
    }
    if markets.contains(final_host) {
        return RedirectClass::Market;
    }
    RedirectClass::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use squatphi_web::{WebWorld, WorldConfig};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn setup(
        n_brands: usize,
        per_brand: usize,
        phishing: usize,
        seed: u64,
    ) -> (
        Vec<(String, BrandId, SquatType)>,
        BrandRegistry,
        InProcessTransport,
    ) {
        let registry = BrandRegistry::with_size(n_brands);
        let mut squats = Vec::new();
        for (i, b) in registry.brands().iter().enumerate() {
            for j in 0..per_brand {
                squats.push((
                    format!("{}-sq{}.com", b.label, j),
                    i,
                    SquatType::Combo,
                    Ipv4Addr::new(203, 0, (i % 200) as u8, j as u8),
                ));
            }
        }
        let cfg = WorldConfig {
            phishing_domains: phishing,
            seed,
            ..WorldConfig::default()
        };
        let world = Arc::new(WebWorld::build(&squats, &registry, &cfg));
        let jobs: Vec<(String, BrandId, SquatType)> = squats
            .iter()
            .map(|(d, b, t, _)| (d.clone(), *b, *t))
            .collect();
        (jobs, registry, InProcessTransport::new(world))
    }

    fn workers(n: usize) -> CrawlConfig {
        CrawlConfig::builder()
            .workers(n)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn builder_validates_and_default_roundtrips() {
        assert_eq!(
            CrawlConfig::builder().build().expect("default is valid"),
            CrawlConfig::default()
        );
        assert_eq!(
            CrawlConfig::builder().workers(0).build(),
            Err(CrawlConfigError::ZeroWorkers)
        );
        assert_eq!(
            CrawlConfig::builder().max_redirects(0).build(),
            Err(CrawlConfigError::ZeroRedirects)
        );
        assert!(CrawlConfigError::ZeroWorkers
            .to_string()
            .contains("workers"));
        let cfg = CrawlConfig::builder()
            .workers(3)
            .max_redirects(2)
            .snapshot(1)
            .retries(0)
            .build()
            .expect("valid");
        assert_eq!(cfg.workers(), 3);
        assert_eq!(cfg.max_redirects(), 2);
        assert_eq!(cfg.snapshot(), 1);
        assert_eq!(cfg.retries(), 0);
    }

    #[test]
    fn crawl_covers_all_jobs_in_order() {
        let (jobs, registry, transport) = setup(10, 20, 10, 1);
        let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        assert_eq!(records.len(), jobs.len());
        for (r, j) in records.iter().zip(&jobs) {
            assert_eq!(r.domain, j.0);
        }
        assert_eq!(stats.total, jobs.len());
    }

    #[test]
    fn live_fraction_reasonable() {
        let (jobs, registry, transport) = setup(10, 30, 5, 2);
        let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        let live = records.iter().filter(|r| r.live()).count();
        assert!(live > 0 && live < records.len());
        assert!(stats.web_live + stats.mobile_live > 0);
    }

    #[test]
    fn outcomes_match_captures() {
        let (jobs, registry, transport) = setup(10, 30, 5, 2);
        let (records, _) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        let mut seen_live = false;
        let mut seen_dead = false;
        for r in &records {
            match r.outcome(Device::Web) {
                CrawlOutcome::Live => {
                    seen_live = true;
                    assert!(r.web.as_ref().is_some_and(|c| !c.html.is_empty()));
                }
                CrawlOutcome::TruncatedChain => {
                    assert!(r.web.as_ref().is_some_and(|c| c.html.is_empty()));
                }
                CrawlOutcome::Dead => {
                    seen_dead = true;
                    assert!(r.web.is_none());
                }
            }
        }
        assert!(seen_live && seen_dead, "both outcomes present at scale");
    }

    #[test]
    fn engine_metrics_reach_crawl_stats() {
        let (jobs, registry, transport) = setup(5, 10, 3, 2);
        let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        let t = &stats.transport;
        // Every job fetches web + mobile at least once.
        assert!(t.attempts >= 2 * records.len() as u64);
        assert!(t.successes > 0);
        // Dead hosts fail, get the configured single retry, then fail
        // again: errors and retries are both populated.
        assert!(t.errors_total() > 0);
        assert!(t.retries > 0);
        assert_eq!(t.injected_total(), 0, "no chaos layer in this crawl");
    }

    #[test]
    fn redirects_classified() {
        let (jobs, registry, transport) = setup(20, 40, 5, 3);
        let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        // With 800 domains the original/market/other buckets should all
        // be populated (1.7% / 3% / 8% of live).
        assert!(stats.web_redirect_market > 0, "no marketplace redirects");
        assert!(stats.web_redirect_other > 0, "no other redirects");
        let any_original = records
            .iter()
            .any(|r| r.web_redirect == RedirectClass::Original);
        assert!(any_original, "no original redirects");
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let (jobs, registry, transport) = setup(5, 10, 3, 4);
        let (a, _) = crawl_all(&jobs, &registry, &transport, &workers(1));
        let (b, _) = crawl_all(&jobs, &registry, &transport, &workers(8));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.web.is_some(), y.web.is_some());
            assert_eq!(x.web_redirect, y.web_redirect);
        }
    }

    #[test]
    fn retries_absorb_transient_failures() {
        use crate::middleware::{ChaosTransport, FaultPlan};
        let (jobs, registry, transport) = setup(5, 10, 3, 9);
        // Baseline without flakiness.
        let (clean, _) = crawl_all(
            &jobs,
            &registry,
            &transport,
            &CrawlConfig::builder()
                .workers(1)
                .retries(0)
                .build()
                .expect("valid"),
        );
        // Every host fails its first attempt; one retry must recover the
        // same liveness picture (each domain is fetched twice — web and
        // mobile — so the first device's retry absorbs the failure).
        let flaky = ChaosTransport::new(
            transport,
            FaultPlan::fail_first(1),
            Arc::new(TransportMetrics::new()),
        );
        let (retried, stats) = crawl_all(
            &jobs,
            &registry,
            &flaky,
            &CrawlConfig::builder()
                .workers(1)
                .retries(1)
                .build()
                .expect("valid"),
        );
        for (a, b) in clean.iter().zip(&retried) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(
                a.web.is_some(),
                b.web.is_some(),
                "{} liveness changed",
                a.domain
            );
        }
        assert!(stats.transport.retries >= jobs.len() as u64);
    }

    #[test]
    fn without_retries_flaky_hosts_look_dead() {
        use crate::middleware::{ChaosTransport, FaultPlan};
        let (jobs, registry, transport) = setup(5, 10, 3, 9);
        let flaky = ChaosTransport::new(
            transport,
            FaultPlan::fail_first(99),
            Arc::new(TransportMetrics::new()),
        );
        let (records, stats) = crawl_all(
            &jobs,
            &registry,
            &flaky,
            &CrawlConfig::builder()
                .workers(2)
                .retries(0)
                .build()
                .expect("valid"),
        );
        assert_eq!(stats.web_live, 0);
        assert!(records.iter().all(|r| !r.live()));
        assert!(records
            .iter()
            .all(|r| r.outcome(Device::Web) == CrawlOutcome::Dead));
    }

    #[test]
    fn captures_render_lazily() {
        let (jobs, registry, transport) = setup(5, 5, 3, 5);
        let (records, _) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        let live = records
            .iter()
            .find(|r| r.web.is_some())
            .expect("at least one live page at this scale");
        let bmp = live
            .web
            .as_ref()
            .expect("filtered on web capture above")
            .render();
        assert!(bmp.width() > 0);
    }
}
